//! The cycle orchestrator and module registry.
//!
//! [`KnowledgeCycle`] wires registered phase modules into the iterative
//! workflow of Fig. 2: generate → extract → persist → analyze → use, then
//! either terminate or feed the usage phase's new benchmark commands back
//! into generation. The registry realises the modular architecture of
//! Fig. 4 — modules are added independently through one
//! [`KnowledgeCycle::register`] entry point, can be listed, and a missing
//! phase simply short-circuits (e.g. a cycle without analyzers still
//! persists knowledge).
//!
//! Failures degrade rather than abort: every module invocation runs under
//! the registered [`ResilienceConfig`] — transient errors are retried with
//! deterministic backoff, repeatedly failing analyzers and usage modules
//! are quarantined, and only *critical* failures (a generator that never
//! produces, the primary persister refusing writes) end the iteration
//! with an error. The report records attempts, degradations and
//! quarantines so nothing fails silently.
//!
//! Every run is instrumented through the cycle's [`Observability`]: one
//! span per cycle, per phase, and per module invocation, stamped from the
//! recorder's (wall or virtual) clock, plus counters and latency
//! histograms in its metrics registry. The default observability drops
//! events and times on the wall clock — cheap enough to be always-on.

use crate::ctx::{Observability, PhaseCtx};
use crate::model::KnowledgeItem;
use crate::phases::{
    Analyzer, Artifact, CycleError, Extractor, Finding, Generator, Persister, PhaseKind,
    UsageModule, UsageOutcome,
};
use crate::resilience::{
    retryable, AttemptOutcome, AttemptRecord, QuarantineBook, ResilienceConfig,
};
use iokc_obs::{CancelToken, Recorder, SpanId, SpanStatus};
use std::sync::Arc;

/// What happened in one iteration of the cycle.
#[derive(Debug, Default)]
pub struct CycleReport {
    /// Artifacts produced by generation.
    pub artifacts: usize,
    /// Knowledge items extracted.
    pub extracted: usize,
    /// Ids assigned by persistence (one per extracted item).
    pub persisted_ids: Vec<u64>,
    /// Findings from analysis.
    pub findings: Vec<Finding>,
    /// Combined usage outcome.
    pub usage: UsageOutcome,
    /// Per-phase module names that ran (execution trace, useful for
    /// reproducibility reports).
    pub trace: Vec<(PhaseKind, String)>,
    /// Retry record per module invocation (attempt counts, virtual
    /// backoff, final outcome).
    pub attempts: Vec<AttemptRecord>,
    /// Non-critical failures the cycle continued past, attributed to the
    /// phase they occurred in.
    pub degradations: Vec<(PhaseKind, String)>,
    /// Modules skipped this iteration because they are quarantined.
    pub quarantined: Vec<(PhaseKind, String)>,
}

impl CycleReport {
    /// Serialize the report as JSON — the reproducibility trace of one
    /// cycle iteration.
    ///
    /// The document is versioned: `"schema": 1`. Schema 1 nests
    /// everything resilience-related under its phase — each entry of
    /// `"phases"` carries the modules that ran, their attempt records,
    /// the degradations and the quarantine skips for that phase — so
    /// consumers (`iokc trace`, external dashboards) can rely on stable
    /// field names. The full layout is documented in DESIGN.md.
    #[must_use]
    pub fn to_json(&self) -> iokc_util::json::Json {
        use iokc_util::json::Json;
        let phases = PhaseKind::ALL
            .iter()
            .map(|&phase| {
                Json::obj(vec![
                    ("phase", Json::from(phase.as_str())),
                    (
                        "modules",
                        Json::Arr(
                            self.trace
                                .iter()
                                .filter(|(p, _)| *p == phase)
                                .map(|(_, m)| Json::from(m.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "attempts",
                        Json::Arr(
                            self.attempts
                                .iter()
                                .filter(|a| a.phase == phase)
                                .map(|a| {
                                    Json::obj(vec![
                                        ("module", Json::from(a.module.as_str())),
                                        ("attempts", Json::from(u64::from(a.attempts))),
                                        ("backoff_ms", Json::from(a.backoff_ms)),
                                        ("outcome", Json::from(a.outcome.as_str())),
                                        (
                                            "last_error",
                                            a.last_error
                                                .as_deref()
                                                .map(Json::from)
                                                .unwrap_or(Json::Null),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "degradations",
                        Json::Arr(
                            self.degradations
                                .iter()
                                .filter(|(p, _)| *p == phase)
                                .map(|(_, d)| Json::from(d.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "quarantined",
                        Json::Arr(
                            self.quarantined
                                .iter()
                                .filter(|(p, _)| *p == phase)
                                .map(|(_, m)| Json::from(m.as_str()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::from(1u64)),
            ("artifacts", Json::from(self.artifacts)),
            ("extracted", Json::from(self.extracted)),
            (
                "persisted_ids",
                Json::Arr(self.persisted_ids.iter().map(|i| Json::from(*i)).collect()),
            ),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("tag", Json::from(f.tag.as_str())),
                                (
                                    "knowledge_id",
                                    f.knowledge_id.map(Json::from).unwrap_or(Json::Null),
                                ),
                                ("message", Json::from(f.message.as_str())),
                                (
                                    "values",
                                    Json::Arr(f.values.iter().map(|v| Json::from(*v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "usage",
                Json::obj(vec![
                    (
                        "new_commands",
                        Json::Arr(
                            self.usage
                                .new_commands
                                .iter()
                                .map(|c| Json::from(c.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "recommendations",
                        Json::Arr(
                            self.usage
                                .recommendations
                                .iter()
                                .map(|c| Json::from(c.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "notes",
                        Json::Arr(
                            self.usage
                                .notes
                                .iter()
                                .map(|c| Json::from(c.as_str()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("phases", Json::Arr(phases)),
        ])
    }

    /// Did this iteration complete without any degradation or skip?
    #[must_use]
    pub fn fully_healthy(&self) -> bool {
        self.degradations.is_empty() && self.quarantined.is_empty()
    }
}

/// One registered phase module: the five trait objects under a single
/// registration type, so [`KnowledgeCycle::register`] and
/// [`KnowledgeCycle::registry`] share one path.
pub enum ModuleBox {
    /// A generation module.
    Generator(Box<dyn Generator>),
    /// An extraction module.
    Extractor(Box<dyn Extractor>),
    /// A persistence module.
    Persister(Box<dyn Persister>),
    /// An analysis module.
    Analyzer(Box<dyn Analyzer>),
    /// A usage module.
    Usage(Box<dyn UsageModule>),
}

impl ModuleBox {
    /// Wrap a generation module.
    #[must_use]
    pub fn generator(module: impl Generator + 'static) -> ModuleBox {
        ModuleBox::Generator(Box::new(module))
    }

    /// Wrap an extraction module.
    #[must_use]
    pub fn extractor(module: impl Extractor + 'static) -> ModuleBox {
        ModuleBox::Extractor(Box::new(module))
    }

    /// Wrap a persistence module.
    #[must_use]
    pub fn persister(module: impl Persister + 'static) -> ModuleBox {
        ModuleBox::Persister(Box::new(module))
    }

    /// Wrap an analysis module.
    #[must_use]
    pub fn analyzer(module: impl Analyzer + 'static) -> ModuleBox {
        ModuleBox::Analyzer(Box::new(module))
    }

    /// Wrap a usage module.
    #[must_use]
    pub fn usage(module: impl UsageModule + 'static) -> ModuleBox {
        ModuleBox::Usage(Box::new(module))
    }

    /// The module's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            ModuleBox::Generator(m) => m.name(),
            ModuleBox::Extractor(m) => m.name(),
            ModuleBox::Persister(m) => m.name(),
            ModuleBox::Analyzer(m) => m.name(),
            ModuleBox::Usage(m) => m.name(),
        }
    }

    /// The phase the module belongs to.
    #[must_use]
    pub fn phase(&self) -> PhaseKind {
        match self {
            ModuleBox::Generator(_) => PhaseKind::Generation,
            ModuleBox::Extractor(_) => PhaseKind::Extraction,
            ModuleBox::Persister(_) => PhaseKind::Persistence,
            ModuleBox::Analyzer(_) => PhaseKind::Analysis,
            ModuleBox::Usage(_) => PhaseKind::Usage,
        }
    }
}

impl std::fmt::Debug for ModuleBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModuleBox::{:?}({})", self.phase(), self.name())
    }
}

/// Anything [`KnowledgeCycle::register`] accepts. Implemented by
/// [`ModuleBox`]; build one with the `ModuleBox::generator(…)` family of
/// constructors.
pub trait PhaseModule {
    /// Convert into the registration representation.
    fn into_module(self) -> ModuleBox;
}

impl PhaseModule for ModuleBox {
    fn into_module(self) -> ModuleBox {
        self
    }
}

/// The knowledge cycle engine.
#[derive(Default)]
pub struct KnowledgeCycle {
    modules: Vec<ModuleBox>,
    resilience: ResilienceConfig,
    quarantine: QuarantineBook,
    obs: Observability,
}

impl KnowledgeCycle {
    /// An empty cycle with no modules.
    #[must_use]
    pub fn new() -> KnowledgeCycle {
        KnowledgeCycle::default()
    }

    /// Replace the resilience configuration (retries, deadlines,
    /// quarantine). The default retries nothing and quarantines after 3
    /// consecutive failures.
    pub fn set_resilience(&mut self, config: ResilienceConfig) -> &mut Self {
        self.resilience = config;
        self
    }

    /// The active resilience configuration.
    #[must_use]
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Replace the observability wiring (recorder clock, event sink,
    /// metrics registry, cancel token). The default drops events and
    /// times on the wall clock.
    pub fn set_observability(&mut self, obs: Observability) -> &mut Self {
        self.obs = obs;
        self
    }

    /// The cycle's observability handle.
    #[must_use]
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// The quarantine ledger (state persists across iterations).
    #[must_use]
    pub fn quarantine(&self) -> &QuarantineBook {
        &self.quarantine
    }

    /// Lift the quarantine of one module.
    pub fn release_quarantine(&mut self, phase: PhaseKind, module: &str) {
        self.quarantine.release(phase, module);
    }

    /// Register a phase module. This is the single registration entry
    /// point for all five phases:
    ///
    /// ```
    /// # use iokc_core::cycle::{KnowledgeCycle, ModuleBox};
    /// # use iokc_core::ctx::PhaseCtx;
    /// # use iokc_core::phases::*;
    /// # struct Gen;
    /// # impl Generator for Gen {
    /// #     fn name(&self) -> &str { "g" }
    /// #     fn generate(&mut self, _ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
    /// #         Ok(vec![])
    /// #     }
    /// # }
    /// let mut cycle = KnowledgeCycle::new();
    /// cycle.register(ModuleBox::generator(Gen));
    /// ```
    ///
    /// Modules run in registration order within their phase. The first
    /// registered persister is the *primary* one: analysis reads the
    /// accumulated knowledge from it, and its ids are reported. Additional
    /// persisters (e.g. a public/remote database next to the local one,
    /// Fig. 4) receive the same writes.
    pub fn register<M: PhaseModule>(&mut self, module: M) -> &mut Self {
        self.modules.push(module.into_module());
        self
    }

    /// Names of registered modules per phase (the registry view). Every
    /// phase appears, in cycle order, with its modules in registration
    /// order — derived from the same single module list that execution
    /// walks.
    #[must_use]
    pub fn registry(&self) -> Vec<(PhaseKind, Vec<String>)> {
        PhaseKind::ALL
            .iter()
            .map(|&phase| {
                (
                    phase,
                    self.modules
                        .iter()
                        .filter(|m| m.phase() == phase)
                        .map(|m| m.name().to_owned())
                        .collect(),
                )
            })
            .collect()
    }

    /// Run one full iteration of the cycle.
    ///
    /// Module failures are handled per the registered
    /// [`ResilienceConfig`]: transient errors are retried with
    /// deterministic virtual backoff; exhausted non-critical modules
    /// degrade (their contribution is skipped and noted in
    /// [`CycleReport::degradations`]); quarantined analyzers and usage
    /// modules are skipped with a recorded finding. Only critical
    /// failures — a generator that never produced artifacts, or the
    /// *primary* persister refusing writes — return an error.
    ///
    /// The run emits one `cycle` span with a child span per phase and a
    /// grandchild span per module invocation, and observes per-phase and
    /// per-module latency histograms (`iokc.phase.<phase>.ms`,
    /// `iokc.module.<phase>.<module>.ms`).
    pub fn run_once(&mut self) -> Result<CycleReport, CycleError> {
        let recorder = Arc::clone(self.obs.recorder());
        let cancel = self.obs.cancel_token().clone();
        let mut report = CycleReport::default();
        let cycle_span = recorder.start_span("cycle", None, None, None);
        let result = self.run_phases(&recorder, &cancel, cycle_span.id, &mut report);
        let status = match &result {
            Ok(()) => SpanStatus::Ok,
            Err(_) if cancel.is_cancelled() => SpanStatus::Cancelled,
            Err(_) => SpanStatus::Failed,
        };
        let dur = recorder.end_span(&cycle_span, status);
        recorder.observe("iokc.cycle.ms", ns_to_ms(dur));
        recorder.counter("iokc.cycle.runs").inc();
        result.map(|()| report)
    }

    /// The five phases of one iteration, each under its own span.
    fn run_phases(
        &mut self,
        recorder: &Arc<Recorder>,
        cancel: &CancelToken,
        cycle_span: SpanId,
        report: &mut CycleReport,
    ) -> Result<(), CycleError> {
        // Phase I: Generation. A failed generator degrades (its artifacts
        // are simply absent this iteration) unless it is critical: with a
        // single registered generator, losing it means the iteration can
        // produce nothing at all.
        let critical_generation = self
            .modules
            .iter()
            .filter(|m| m.phase() == PhaseKind::Generation)
            .count()
            == 1;
        let artifacts: Vec<Artifact> =
            with_phase_span(recorder, cycle_span, PhaseKind::Generation, |span| {
                check_cancel(cancel, PhaseKind::Generation)?;
                let mut artifacts = Vec::new();
                for module in &mut self.modules {
                    let ModuleBox::Generator(generator) = module else {
                        continue;
                    };
                    let name = generator.name().to_owned();
                    let produced = invoke_module(
                        recorder,
                        cancel,
                        span,
                        &self.resilience,
                        &mut self.quarantine,
                        report,
                        PhaseKind::Generation,
                        &name,
                        critical_generation,
                        false,
                        |ctx| generator.generate(ctx),
                    )?;
                    artifacts.extend(produced.into_iter().flatten());
                }
                Ok(artifacts)
            })?;
        report.artifacts = artifacts.len();
        recorder
            .counter("iokc.cycle.artifacts")
            .add(artifacts.len() as u64);

        // Phase II: Extraction. Every extractor sees the artifacts it
        // accepts; an artifact may feed several extractors. A failed
        // extractor degrades — the other extractors' knowledge survives.
        let items: Vec<KnowledgeItem> =
            with_phase_span(recorder, cycle_span, PhaseKind::Extraction, |span| {
                check_cancel(cancel, PhaseKind::Extraction)?;
                let mut items = Vec::new();
                for module in &self.modules {
                    let ModuleBox::Extractor(extractor) = module else {
                        continue;
                    };
                    let accepted: Vec<&Artifact> =
                        artifacts.iter().filter(|a| extractor.accepts(a)).collect();
                    if accepted.is_empty() {
                        continue;
                    }
                    let name = extractor.name().to_owned();
                    let extracted = invoke_module(
                        recorder,
                        cancel,
                        span,
                        &self.resilience,
                        &mut self.quarantine,
                        report,
                        PhaseKind::Extraction,
                        &name,
                        false,
                        false,
                        |ctx| extractor.extract(ctx, &accepted),
                    )?;
                    items.extend(extracted.into_iter().flatten());
                }
                Ok(items)
            })?;
        report.extracted = items.len();
        recorder
            .counter("iokc.cycle.extracted")
            .add(items.len() as u64);

        // Phase III: Persistence. The primary persister's ids are
        // reported; mirrors receive the same writes. Losing the primary
        // is critical (knowledge would be dropped on the floor); a failed
        // mirror degrades.
        with_phase_span(recorder, cycle_span, PhaseKind::Persistence, |span| {
            check_cancel(cancel, PhaseKind::Persistence)?;
            let mut index = 0usize;
            for module in &mut self.modules {
                let ModuleBox::Persister(persister) = module else {
                    continue;
                };
                let name = persister.name().to_owned();
                let ids = invoke_module(
                    recorder,
                    cancel,
                    span,
                    &self.resilience,
                    &mut self.quarantine,
                    report,
                    PhaseKind::Persistence,
                    &name,
                    index == 0,
                    false,
                    |ctx| persister.persist(ctx, &items),
                )?;
                if index == 0 {
                    report.persisted_ids = ids.unwrap_or_default();
                }
                index += 1;
            }
            Ok(())
        })?;

        // Phase IV: Analysis over the full accumulated knowledge base.
        // When the primary store cannot be read back, analysis degrades
        // to this iteration's fresh items rather than aborting.
        with_phase_span(recorder, cycle_span, PhaseKind::Analysis, |span| {
            check_cancel(cancel, PhaseKind::Analysis)?;
            let primary = self.modules.iter().find_map(|m| match m {
                ModuleBox::Persister(p) => Some(p),
                _ => None,
            });
            let corpus: Vec<KnowledgeItem> = match primary {
                Some(primary) => {
                    let mut ctx = PhaseCtx::for_attempt(
                        PhaseKind::Analysis,
                        primary.name(),
                        1,
                        1,
                        span,
                        recorder,
                        cancel,
                    );
                    match primary.load_all(&mut ctx) {
                        Ok(corpus) => corpus,
                        Err(err) => {
                            report.degradations.push((
                                PhaseKind::Analysis,
                                format!(
                                    "analysis corpus degraded to this iteration's items: {err}"
                                ),
                            ));
                            items.clone()
                        }
                    }
                }
                None => items.clone(),
            };
            for module in &self.modules {
                let ModuleBox::Analyzer(analyzer) = module else {
                    continue;
                };
                let name = analyzer.name().to_owned();
                let findings = invoke_module(
                    recorder,
                    cancel,
                    span,
                    &self.resilience,
                    &mut self.quarantine,
                    report,
                    PhaseKind::Analysis,
                    &name,
                    false,
                    true,
                    |ctx| analyzer.analyze(ctx, &corpus),
                )?;
                report.findings.extend(findings.into_iter().flatten());
            }

            // Phase V: Usage. Modules see the findings as they stood
            // after analysis (a snapshot, so resilience bookkeeping
            // during this phase cannot change what later modules
            // observe). The corpus is reused, so usage runs after the
            // analysis span closes, under its own phase span.
            let _ = span;
            Ok(corpus)
        })
        .and_then(|corpus| {
            with_phase_span(recorder, cycle_span, PhaseKind::Usage, |span| {
                check_cancel(cancel, PhaseKind::Usage)?;
                let findings = report.findings.clone();
                for module in &mut self.modules {
                    let ModuleBox::Usage(usage) = module else {
                        continue;
                    };
                    let name = usage.name().to_owned();
                    let outcome = invoke_module(
                        recorder,
                        cancel,
                        span,
                        &self.resilience,
                        &mut self.quarantine,
                        report,
                        PhaseKind::Usage,
                        &name,
                        false,
                        true,
                        |ctx| usage.apply(ctx, &corpus, &findings),
                    )?;
                    if let Some(outcome) = outcome {
                        report.usage.merge(outcome);
                    }
                }
                Ok(())
            })
        })
    }

    /// Run the cycle iteratively: after each iteration, feed the usage
    /// phase's `new_commands` to the generators (the first one whose
    /// [`Generator::reconfigure`] accepts each command wins) and go
    /// again, up to `max_iterations` or until usage schedules nothing new
    /// — "this iterative cyclic process is either re-launched or
    /// terminated" (§III). Stops early (cleanly, with the reports so far)
    /// when the observability cancel token fires between iterations.
    pub fn run_iterative(&mut self, max_iterations: u32) -> Result<Vec<CycleReport>, CycleError> {
        let mut reports = Vec::new();
        for _ in 0..max_iterations {
            if self.obs.cancel_token().is_cancelled() {
                break;
            }
            let report = self.run_once()?;
            let commands = report.usage.new_commands.clone();
            reports.push(report);
            if commands.is_empty() {
                break;
            }
            let mut any_applied = false;
            for command in &commands {
                for module in &mut self.modules {
                    let ModuleBox::Generator(generator) = module else {
                        continue;
                    };
                    if generator.reconfigure(command) {
                        any_applied = true;
                        break;
                    }
                }
            }
            if !any_applied {
                break;
            }
        }
        Ok(reports)
    }
}

/// Nanoseconds to fractional milliseconds.
fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Fail the phase when cancellation was requested before it started.
fn check_cancel(cancel: &CancelToken, phase: PhaseKind) -> Result<(), CycleError> {
    if cancel.is_cancelled() {
        return Err(CycleError::transient(
            phase,
            "cycle",
            "cancelled before phase start",
        ));
    }
    Ok(())
}

/// Run `body` under a phase span, observing the phase latency histogram.
fn with_phase_span<T>(
    recorder: &Arc<Recorder>,
    cycle_span: SpanId,
    phase: PhaseKind,
    body: impl FnOnce(SpanId) -> Result<T, CycleError>,
) -> Result<T, CycleError> {
    let span = recorder.start_span(phase.as_str(), Some(cycle_span), Some(phase.as_str()), None);
    let result = body(span.id);
    let status = if result.is_ok() {
        SpanStatus::Ok
    } else {
        SpanStatus::Failed
    };
    let dur = recorder.end_span(&span, status);
    recorder.observe(&format!("iokc.phase.{}.ms", phase.as_str()), ns_to_ms(dur));
    result
}

/// Run one module invocation under the resilience policy, inside one
/// module span covering every attempt (retry backoff advances the
/// virtual clock, so the span faithfully includes it).
///
/// Returns `Ok(Some(value))` on success, `Ok(None)` when the module was
/// skipped (quarantine) or degraded past its retry budget without being
/// critical, and `Err` when a critical module exhausted its budget.
#[allow(clippy::too_many_arguments)]
fn invoke_module<T>(
    recorder: &Arc<Recorder>,
    cancel: &CancelToken,
    parent: SpanId,
    config: &ResilienceConfig,
    quarantine: &mut QuarantineBook,
    report: &mut CycleReport,
    phase: PhaseKind,
    name: &str,
    critical: bool,
    quarantinable: bool,
    mut attempt_once: impl FnMut(&mut PhaseCtx) -> Result<T, CycleError>,
) -> Result<Option<T>, CycleError> {
    if quarantinable && quarantine.is_quarantined(phase, name) {
        recorder.log(
            Some(parent),
            &format!("module {name} is quarantined; skipped"),
        );
        recorder.counter("iokc.module.quarantine_skips").inc();
        report.attempts.push(AttemptRecord {
            phase,
            module: name.to_owned(),
            attempts: 0,
            backoff_ms: 0,
            outcome: AttemptOutcome::Skipped,
            last_error: None,
        });
        report.findings.push(Finding {
            tag: "quarantine".into(),
            knowledge_id: None,
            message: format!(
                "module {name} is quarantined in the {} phase and was skipped",
                phase.as_str()
            ),
            values: Vec::new(),
        });
        report.quarantined.push((phase, name.to_owned()));
        return Ok(None);
    }

    report.trace.push((phase, name.to_owned()));
    let span = recorder.start_span(name, Some(parent), Some(phase.as_str()), Some(name));
    let module_metric = format!("iokc.module.{}.{name}.ms", phase.as_str());
    let max_attempts = config.retry.max_attempts;
    let mut attempts = 0u32;
    let mut backoff_ms = 0u64;
    loop {
        attempts += 1;
        let mut ctx = PhaseCtx::for_attempt(
            phase,
            name,
            attempts,
            max_attempts,
            span.id,
            recorder,
            cancel,
        );
        match attempt_once(&mut ctx) {
            Ok(value) => {
                if quarantinable {
                    quarantine.record_success(phase, name);
                }
                report.attempts.push(AttemptRecord {
                    phase,
                    module: name.to_owned(),
                    attempts,
                    backoff_ms,
                    outcome: AttemptOutcome::Succeeded,
                    last_error: None,
                });
                let dur = recorder.end_span(&span, SpanStatus::Ok);
                recorder.observe(&module_metric, ns_to_ms(dur));
                return Ok(Some(value));
            }
            Err(err) => {
                let mut deadline_note = "";
                if retryable(err.class, attempts, &config.retry) {
                    let delay = config.retry.delay_ms(phase, name, attempts + 1);
                    let within_deadline = config
                        .phase_deadline_ms
                        .is_none_or(|deadline| backoff_ms.saturating_add(delay) <= deadline);
                    if within_deadline {
                        recorder.counter("iokc.module.retries").inc();
                        recorder.log(
                            Some(span.id),
                            &format!(
                                "attempt {attempts} failed ({}); retrying after {delay} ms \
                                 virtual backoff",
                                err.message
                            ),
                        );
                        // Backoff is virtual time: advance the clock so
                        // the module span includes it (no-op on wall).
                        recorder.advance_ns(delay.saturating_mul(1_000_000));
                        backoff_ms += delay;
                        continue;
                    }
                    deadline_note = " (phase deadline exhausted)";
                }
                // Retry budget spent. Quarantine bookkeeping, then either
                // degrade or — for critical modules — fail the iteration.
                if quarantinable
                    && quarantine.record_failure(
                        phase,
                        name,
                        &err.message,
                        config.quarantine_threshold,
                    )
                {
                    report.findings.push(Finding {
                        tag: "quarantine".into(),
                        knowledge_id: None,
                        message: format!(
                            "module {name} quarantined after {} consecutive failures in the {} \
                             phase: {}",
                            quarantine.failures(phase, name),
                            phase.as_str(),
                            err.message
                        ),
                        values: Vec::new(),
                    });
                }
                report.attempts.push(AttemptRecord {
                    phase,
                    module: name.to_owned(),
                    attempts,
                    backoff_ms,
                    outcome: AttemptOutcome::Degraded,
                    last_error: Some(err.message.clone()),
                });
                let dur = recorder.end_span(&span, SpanStatus::Failed);
                recorder.observe(&module_metric, ns_to_ms(dur));
                recorder.counter("iokc.module.failures").inc();
                if critical {
                    return Err(err);
                }
                report.degradations.push((
                    phase,
                    format!(
                        "{} phase, module {name}: degraded after {attempts} attempt(s){deadline_note}: {} [{}]",
                        phase.as_str(),
                        err.message,
                        err.class.as_str(),
                    ),
                ));
                return Ok(None);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::model::{Knowledge, KnowledgeSource};
    use crate::phases::{ArtifactKind, Payload};
    use iokc_obs::{Clock, EventKind, MemorySink, MetricsRegistry, VirtualClock};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct FakeGenerator {
        command: String,
        runs: u32,
    }

    impl Generator for FakeGenerator {
        fn name(&self) -> &str {
            "fake-ior"
        }
        fn reconfigure(&mut self, command: &str) -> bool {
            if command.starts_with("ior") {
                self.command = command.to_owned();
                true
            } else {
                false
            }
        }
        fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
            self.runs += 1;
            // Pretend every run takes 10 simulated ms.
            ctx.advance_virtual_ms(10);
            Ok(vec![Artifact::text(
                ArtifactKind::IorOutput,
                "stdout",
                format!("RESULT bw=100 run={} cmd={}", self.runs, self.command),
            )
            .with_meta("command", &self.command)])
        }
    }

    struct FakeExtractor;

    impl Extractor for FakeExtractor {
        fn name(&self) -> &str {
            "fake-extractor"
        }
        fn accepts(&self, artifact: &Artifact) -> bool {
            artifact.kind == ArtifactKind::IorOutput
        }
        fn extract(
            &self,
            _ctx: &mut PhaseCtx,
            artifacts: &[&Artifact],
        ) -> Result<Vec<KnowledgeItem>, CycleError> {
            Ok(artifacts
                .iter()
                .map(|a| {
                    KnowledgeItem::Benchmark(Knowledge::new(
                        KnowledgeSource::Ior,
                        a.meta.get("command").map(String::as_str).unwrap_or(""),
                    ))
                })
                .collect())
        }
    }

    #[derive(Default)]
    struct MemPersister {
        items: Rc<RefCell<Vec<KnowledgeItem>>>,
    }

    impl Persister for MemPersister {
        fn name(&self) -> &str {
            "memory"
        }
        fn persist(
            &mut self,
            _ctx: &mut PhaseCtx,
            items: &[KnowledgeItem],
        ) -> Result<Vec<u64>, CycleError> {
            let mut store = self.items.borrow_mut();
            let mut ids = Vec::new();
            for item in items {
                store.push(item.clone());
                ids.push(store.len() as u64);
            }
            Ok(ids)
        }
        fn load_all(&self, _ctx: &mut PhaseCtx) -> Result<Vec<KnowledgeItem>, CycleError> {
            Ok(self.items.borrow().clone())
        }
    }

    struct CountingAnalyzer;

    impl Analyzer for CountingAnalyzer {
        fn name(&self) -> &str {
            "counter"
        }
        fn analyze(
            &self,
            _ctx: &mut PhaseCtx,
            items: &[KnowledgeItem],
        ) -> Result<Vec<Finding>, CycleError> {
            Ok(vec![Finding {
                tag: "observation".into(),
                knowledge_id: None,
                message: format!("{} items in corpus", items.len()),
                values: vec![items.len() as f64],
            }])
        }
    }

    /// Usage module that schedules one follow-up command, then stops.
    struct OneFollowUp {
        fired: bool,
    }

    impl UsageModule for OneFollowUp {
        fn name(&self) -> &str {
            "regenerate"
        }
        fn apply(
            &mut self,
            _ctx: &mut PhaseCtx,
            _items: &[KnowledgeItem],
            _findings: &[Finding],
        ) -> Result<UsageOutcome, CycleError> {
            if self.fired {
                return Ok(UsageOutcome::default());
            }
            self.fired = true;
            Ok(UsageOutcome {
                new_commands: vec!["ior -b 8m".into()],
                ..UsageOutcome::default()
            })
        }
    }

    fn full_cycle(shared: Rc<RefCell<Vec<KnowledgeItem>>>) -> KnowledgeCycle {
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior -b 4m".into(),
                runs: 0,
            }))
            .register(ModuleBox::extractor(FakeExtractor))
            .register(ModuleBox::persister(MemPersister { items: shared }))
            .register(ModuleBox::analyzer(CountingAnalyzer))
            .register(ModuleBox::usage(OneFollowUp { fired: false }));
        cycle
    }

    #[test]
    fn run_once_flows_through_all_phases() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store.clone());
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 1);
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.usage.new_commands, vec!["ior -b 8m".to_owned()]);
        // Trace covers all five phases.
        let phases: Vec<PhaseKind> = report.trace.iter().map(|(p, _)| *p).collect();
        for kind in PhaseKind::ALL {
            assert!(phases.contains(&kind), "missing {kind:?} in trace");
        }
        assert_eq!(store.borrow().len(), 1);
    }

    #[test]
    fn report_serializes_to_versioned_json() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store);
        let report = cycle.run_once().unwrap();
        let json = report.to_json();
        assert_eq!(json.get("schema").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(json.get("artifacts").and_then(|v| v.as_u64()), Some(1));
        // Schema 1 nests per-phase: five entries in cycle order, each
        // with the modules that ran and their attempt records.
        let phases = json.get("phases").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(phases.len(), 5);
        assert_eq!(
            phases[0].get("phase").and_then(|p| p.as_str()),
            Some("generation")
        );
        assert_eq!(
            phases[0]
                .get("modules")
                .and_then(|m| m.at(0))
                .and_then(|m| m.as_str()),
            Some("fake-ior")
        );
        assert_eq!(
            phases[0]
                .get("attempts")
                .and_then(|a| a.at(0))
                .and_then(|a| a.get("outcome"))
                .and_then(|o| o.as_str()),
            Some("succeeded")
        );
        // The document parses back.
        let text = json.to_pretty();
        assert!(iokc_util::json::parse(&text).is_ok());
        assert!(text.contains("new_commands"));
    }

    #[test]
    fn iterative_run_feeds_commands_back() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store.clone());
        let reports = cycle.run_iterative(5).unwrap();
        // Iteration 1 schedules a follow-up; iteration 2 does not.
        assert_eq!(reports.len(), 2);
        assert_eq!(store.borrow().len(), 2);
        // The corpus grows across iterations (the whole point of the
        // knowledge base).
        assert_eq!(reports[1].findings[0].values[0], 2.0);
    }

    #[test]
    fn iterative_stops_when_no_generator_accepts() {
        // Schedule a non-ior command that the generator declines.
        struct AlienUsage;
        impl UsageModule for AlienUsage {
            fn name(&self) -> &str {
                "alien"
            }
            fn apply(
                &mut self,
                _ctx: &mut PhaseCtx,
                _items: &[KnowledgeItem],
                _findings: &[Finding],
            ) -> Result<UsageOutcome, CycleError> {
                Ok(UsageOutcome {
                    new_commands: vec!["fio --bs=4k".into()],
                    ..UsageOutcome::default()
                })
            }
        }
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior -b 4m".into(),
                runs: 0,
            }))
            .register(ModuleBox::extractor(FakeExtractor))
            .register(ModuleBox::persister(MemPersister { items: store }))
            .register(ModuleBox::usage(AlienUsage));
        let reports = cycle.run_iterative(5).unwrap();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn registry_lists_modules() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let cycle = full_cycle(store);
        let registry = cycle.registry();
        assert_eq!(registry.len(), 5);
        assert_eq!(registry[0].1, vec!["fake-ior".to_owned()]);
        assert_eq!(registry[2].1, vec!["memory".to_owned()]);
    }

    #[test]
    fn cycle_without_persister_analyzes_fresh_items() {
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .register(ModuleBox::extractor(FakeExtractor))
            .register(ModuleBox::analyzer(CountingAnalyzer));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.findings[0].values[0], 1.0);
        assert!(report.persisted_ids.is_empty());
    }

    #[test]
    fn extractor_skips_foreign_artifacts() {
        struct BinaryGen;
        impl Generator for BinaryGen {
            fn name(&self) -> &str {
                "darshan"
            }
            fn generate(&mut self, _ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
                Ok(vec![Artifact {
                    kind: ArtifactKind::DarshanLog,
                    name: "log".into(),
                    payload: Payload::Binary(vec![0]),
                    meta: Default::default(),
                }])
            }
        }
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(BinaryGen))
            .register(ModuleBox::extractor(FakeExtractor));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 0);
    }

    /// Generator that fails (transiently) a fixed number of times before
    /// producing.
    struct FlakyGenerator {
        failures_left: u32,
    }

    impl Generator for FlakyGenerator {
        fn name(&self) -> &str {
            "flaky-gen"
        }
        fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(ctx.transient_error("node dropped off the fabric"));
            }
            Ok(vec![Artifact::text(
                ArtifactKind::IorOutput,
                "stdout",
                "RESULT bw=100".into(),
            )
            .with_meta("command", "ior")])
        }
    }

    struct FailingAnalyzer;

    impl Analyzer for FailingAnalyzer {
        fn name(&self) -> &str {
            "broken-analyzer"
        }
        fn analyze(
            &self,
            ctx: &mut PhaseCtx,
            _items: &[KnowledgeItem],
        ) -> Result<Vec<Finding>, CycleError> {
            Err(ctx.permanent_error("division by zero in model fit"))
        }
    }

    #[test]
    fn transient_generator_failure_is_retried_to_success() {
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FlakyGenerator { failures_left: 2 }))
            .register(ModuleBox::extractor(FakeExtractor));
        cycle.set_resilience(
            ResilienceConfig::new().with_retry(RetryPolicy::with_retries(3).seeded(42)),
        );
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 1);
        let record = &report.attempts[0];
        assert_eq!(record.attempts, 3);
        assert_eq!(record.outcome, crate::resilience::AttemptOutcome::Succeeded);
        assert!(record.backoff_ms > 0);
        assert!(report.fully_healthy());
    }

    #[test]
    fn transient_failure_without_retries_is_critical_for_sole_generator() {
        let mut cycle = KnowledgeCycle::new();
        cycle.register(ModuleBox::generator(FlakyGenerator { failures_left: 1 }));
        // Default config retries nothing, and a sole generator is
        // critical.
        let err = cycle.run_once().unwrap_err();
        assert_eq!(err.phase, PhaseKind::Generation);
        assert!(err.is_transient());
    }

    #[test]
    fn secondary_generator_failure_degrades() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .register(ModuleBox::generator(FlakyGenerator { failures_left: 99 }))
            .register(ModuleBox::extractor(FakeExtractor))
            .register(ModuleBox::persister(MemPersister { items: store }));
        let report = cycle.run_once().unwrap();
        // The healthy generator's artifact flowed through.
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(report.degradations.len(), 1);
        assert_eq!(report.degradations[0].0, PhaseKind::Generation);
        assert!(
            report.degradations[0].1.contains("flaky-gen"),
            "{:?}",
            report.degradations
        );
        assert!(!report.fully_healthy());
    }

    #[test]
    fn primary_persister_failure_is_critical() {
        struct RefusingPersister;
        impl Persister for RefusingPersister {
            fn name(&self) -> &str {
                "refusing"
            }
            fn persist(
                &mut self,
                ctx: &mut PhaseCtx,
                _items: &[KnowledgeItem],
            ) -> Result<Vec<u64>, CycleError> {
                Err(ctx.permanent_error("disk full"))
            }
            fn load_all(&self, _ctx: &mut PhaseCtx) -> Result<Vec<KnowledgeItem>, CycleError> {
                Ok(Vec::new())
            }
        }
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .register(ModuleBox::extractor(FakeExtractor))
            .register(ModuleBox::persister(RefusingPersister));
        let err = cycle.run_once().unwrap_err();
        assert_eq!(err.phase, PhaseKind::Persistence);
        assert_eq!(err.module, "refusing");
    }

    #[test]
    fn failing_analyzer_degrades_then_quarantines_across_iterations() {
        use crate::resilience::ResilienceConfig;
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .register(ModuleBox::extractor(FakeExtractor))
            .register(ModuleBox::persister(MemPersister { items: store }))
            .register(ModuleBox::analyzer(FailingAnalyzer))
            .register(ModuleBox::analyzer(CountingAnalyzer));
        cycle.set_resilience(ResilienceConfig::new().with_quarantine_threshold(2));

        // Iteration 1: degraded, not yet quarantined.
        let r1 = cycle.run_once().unwrap();
        assert_eq!(r1.degradations.len(), 1);
        assert!(r1.quarantined.is_empty());
        assert_eq!(
            r1.findings.len(),
            1,
            "healthy analyzer still ran: {:?}",
            r1.findings
        );

        // Iteration 2: second consecutive failure trips the quarantine.
        let r2 = cycle.run_once().unwrap();
        assert!(r2.findings.iter().any(|f| f.tag == "quarantine"));
        assert!(cycle
            .quarantine()
            .is_quarantined(PhaseKind::Analysis, "broken-analyzer"));

        // Iteration 3: skipped outright, with a recorded finding; the
        // cycle keeps producing knowledge.
        let r3 = cycle.run_once().unwrap();
        assert_eq!(
            r3.quarantined,
            vec![(PhaseKind::Analysis, "broken-analyzer".to_owned())]
        );
        assert!(r3
            .findings
            .iter()
            .any(|f| f.tag == "quarantine" && f.message.contains("skipped")));
        assert!(r3.trace.iter().all(|(_, m)| m != "broken-analyzer"));
        assert_eq!(r3.persisted_ids.len(), 1);

        // Release lifts the quarantine.
        cycle.release_quarantine(PhaseKind::Analysis, "broken-analyzer");
        let r4 = cycle.run_once().unwrap();
        assert!(r4.quarantined.is_empty());
        assert_eq!(r4.degradations.len(), 1);
    }

    #[test]
    fn phase_deadline_bounds_retry_backoff() {
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .register(ModuleBox::generator(FlakyGenerator { failures_left: 99 }));
        cycle.set_resilience(
            ResilienceConfig::new()
                .with_retry(RetryPolicy::with_retries(50).seeded(1))
                .with_phase_deadline_ms(Some(300)),
        );
        let report = cycle.run_once().unwrap();
        let record = report
            .attempts
            .iter()
            .find(|a| a.module == "flaky-gen")
            .unwrap();
        // With a 100 ms base delay doubling per retry, the 300 ms budget
        // admits only a couple of retries, not all 50.
        assert!(record.attempts < 5, "attempts = {}", record.attempts);
        assert!(record.backoff_ms <= 300);
        assert!(
            report.degradations[0].1.contains("deadline"),
            "{:?}",
            report.degradations
        );
    }

    #[test]
    fn retry_accounting_is_deterministic() {
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let run = || {
            let mut cycle = KnowledgeCycle::new();
            cycle
                .register(ModuleBox::generator(FlakyGenerator { failures_left: 2 }))
                .register(ModuleBox::extractor(FakeExtractor));
            cycle.set_resilience(
                ResilienceConfig::new().with_retry(RetryPolicy::with_retries(4).seeded(7)),
            );
            let report = cycle.run_once().unwrap();
            report.attempts.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn permanent_error_is_not_retried() {
        struct PermanentGen;
        impl Generator for PermanentGen {
            fn name(&self) -> &str {
                "permanent"
            }
            fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
                Err(ctx.permanent_error("bad config"))
            }
        }
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(PermanentGen))
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }));
        cycle.set_resilience(ResilienceConfig::new().with_retry(RetryPolicy::with_retries(5)));
        let report = cycle.run_once().unwrap();
        let record = report
            .attempts
            .iter()
            .find(|a| a.module == "permanent")
            .unwrap();
        assert_eq!(record.attempts, 1);
        assert_eq!(record.backoff_ms, 0);
    }

    #[test]
    fn mirror_persister_receives_items_but_primary_reports_ids() {
        let primary = Rc::new(RefCell::new(Vec::new()));
        let mirror = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .register(ModuleBox::extractor(FakeExtractor))
            .register(ModuleBox::persister(MemPersister {
                items: primary.clone(),
            }))
            .register(ModuleBox::persister(MemPersister {
                items: mirror.clone(),
            }));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(primary.borrow().len(), 1);
        assert_eq!(mirror.borrow().len(), 1);
    }

    #[test]
    fn spans_cover_every_phase_and_module_on_the_virtual_clock() {
        let clock = VirtualClock::new();
        let sink = Arc::new(MemorySink::new());
        let recorder = Recorder::new(Clock::Virtual(clock.clone()), sink.clone());
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store);
        cycle.set_observability(Observability::new(recorder));

        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);

        let events = sink.snapshot();
        let tree = iokc_obs::build_span_tree(&events);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.open_spans, 0);
        let root = &tree.roots[0];
        assert_eq!(root.name, "cycle");
        // One child per phase, in cycle order.
        let phase_names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            phase_names,
            vec![
                "generation",
                "extraction",
                "persistence",
                "analysis",
                "usage"
            ]
        );
        // The generator advanced the virtual clock by 10 ms, so the
        // cycle total is exactly the generation total: virtual phase
        // durations sum to the cycle duration with zero slack.
        let phase_sum: u64 = root.children.iter().map(|c| c.dur_ns.unwrap_or(0)).sum();
        assert_eq!(root.dur_ns, Some(phase_sum));
        assert_eq!(root.dur_ns, Some(10_000_000));
        // Module spans carry phase+module labels.
        let gen_modules: Vec<&str> = root.children[0]
            .children
            .iter()
            .map(|c| c.module.as_deref().unwrap_or("?"))
            .collect();
        assert_eq!(gen_modules, vec!["fake-ior"]);

        // Metrics landed in the registry.
        let metrics: Arc<MetricsRegistry> = cycle.observability().metrics();
        assert_eq!(metrics.counter("iokc.cycle.runs").get(), 1);
        let cycle_ms = metrics.histogram("iokc.cycle.ms").snapshot();
        assert_eq!(cycle_ms.count, 1);
        assert!((cycle_ms.sum - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cancellation_stops_the_cycle_between_phases() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store);
        cycle.observability().cancel_token().cancel();
        let err = cycle.run_once().unwrap_err();
        assert!(err.message.contains("cancelled"));
        // run_iterative stops cleanly instead.
        let reports = cycle.run_iterative(3).unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn retry_backoff_advances_the_virtual_clock() {
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let clock = VirtualClock::new();
        let sink = Arc::new(MemorySink::new());
        let recorder = Recorder::new(Clock::Virtual(clock.clone()), sink.clone());
        let mut cycle = KnowledgeCycle::new();
        cycle
            .register(ModuleBox::generator(FlakyGenerator { failures_left: 2 }))
            .register(ModuleBox::extractor(FakeExtractor));
        cycle.set_resilience(
            ResilienceConfig::new().with_retry(RetryPolicy::with_retries(3).seeded(42)),
        );
        cycle.set_observability(Observability::new(recorder));
        let report = cycle.run_once().unwrap();
        let backoff_ms = report.attempts[0].backoff_ms;
        assert!(backoff_ms > 0);
        // The virtual clock advanced by exactly the recorded backoff.
        assert_eq!(clock.now_ns(), backoff_ms * 1_000_000);
        // And the retry log events are attached to the module span.
        let events = sink.snapshot();
        let retries = events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Log { message, .. } if message.contains("retrying")))
            .count();
        assert_eq!(retries, 2);
    }
}
