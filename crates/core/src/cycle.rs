//! The cycle orchestrator and module registry.
//!
//! [`KnowledgeCycle`] wires registered phase modules into the iterative
//! workflow of Fig. 2: generate → extract → persist → analyze → use, then
//! either terminate or feed the usage phase's new benchmark commands back
//! into generation. The registry realises the modular architecture of
//! Fig. 4 — modules are added independently, can be listed, and a missing
//! phase simply short-circuits (e.g. a cycle without analyzers still
//! persists knowledge).

use crate::model::KnowledgeItem;
use crate::phases::{
    Analyzer, Artifact, CycleError, Extractor, Finding, Generator, Persister, PhaseKind,
    UsageModule, UsageOutcome,
};

/// What happened in one iteration of the cycle.
#[derive(Debug, Default)]
pub struct CycleReport {
    /// Artifacts produced by generation.
    pub artifacts: usize,
    /// Knowledge items extracted.
    pub extracted: usize,
    /// Ids assigned by persistence (one per extracted item).
    pub persisted_ids: Vec<u64>,
    /// Findings from analysis.
    pub findings: Vec<Finding>,
    /// Combined usage outcome.
    pub usage: UsageOutcome,
    /// Per-phase module names that ran (execution trace, useful for
    /// reproducibility reports).
    pub trace: Vec<(PhaseKind, String)>,
}

impl CycleReport {
    /// Serialize the report as JSON — the reproducibility trace of one
    /// cycle iteration (which modules ran in which phase, what they
    /// produced, what usage scheduled next).
    #[must_use]
    pub fn to_json(&self) -> iokc_util::json::Json {
        use iokc_util::json::Json;
        Json::obj(vec![
            ("artifacts", Json::from(self.artifacts)),
            ("extracted", Json::from(self.extracted)),
            (
                "persisted_ids",
                Json::Arr(self.persisted_ids.iter().map(|i| Json::from(*i)).collect()),
            ),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("tag", Json::from(f.tag.as_str())),
                                (
                                    "knowledge_id",
                                    f.knowledge_id.map(Json::from).unwrap_or(Json::Null),
                                ),
                                ("message", Json::from(f.message.as_str())),
                                (
                                    "values",
                                    Json::Arr(f.values.iter().map(|v| Json::from(*v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "usage",
                Json::obj(vec![
                    (
                        "new_commands",
                        Json::Arr(
                            self.usage
                                .new_commands
                                .iter()
                                .map(|c| Json::from(c.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "recommendations",
                        Json::Arr(
                            self.usage
                                .recommendations
                                .iter()
                                .map(|c| Json::from(c.as_str()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "trace",
                Json::Arr(
                    self.trace
                        .iter()
                        .map(|(phase, module)| {
                            Json::obj(vec![
                                ("phase", Json::from(phase.as_str())),
                                ("module", Json::from(module.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The knowledge cycle engine.
#[derive(Default)]
pub struct KnowledgeCycle {
    generators: Vec<Box<dyn Generator>>,
    extractors: Vec<Box<dyn Extractor>>,
    persisters: Vec<Box<dyn Persister>>,
    analyzers: Vec<Box<dyn Analyzer>>,
    usage_modules: Vec<Box<dyn UsageModule>>,
}

impl KnowledgeCycle {
    /// An empty cycle with no modules.
    #[must_use]
    pub fn new() -> KnowledgeCycle {
        KnowledgeCycle::default()
    }

    /// Register a generation module.
    pub fn add_generator(&mut self, module: Box<dyn Generator>) -> &mut Self {
        self.generators.push(module);
        self
    }

    /// Register an extraction module.
    pub fn add_extractor(&mut self, module: Box<dyn Extractor>) -> &mut Self {
        self.extractors.push(module);
        self
    }

    /// Register a persistence module. The first registered persister is
    /// the *primary* one: analysis reads the accumulated knowledge from
    /// it. Additional persisters (e.g. a public/remote database next to
    /// the local one, Fig. 4) receive the same writes.
    pub fn add_persister(&mut self, module: Box<dyn Persister>) -> &mut Self {
        self.persisters.push(module);
        self
    }

    /// Register an analysis module.
    pub fn add_analyzer(&mut self, module: Box<dyn Analyzer>) -> &mut Self {
        self.analyzers.push(module);
        self
    }

    /// Register a usage module.
    pub fn add_usage(&mut self, module: Box<dyn UsageModule>) -> &mut Self {
        self.usage_modules.push(module);
        self
    }

    /// Names of registered modules per phase (the registry view).
    #[must_use]
    pub fn registry(&self) -> Vec<(PhaseKind, Vec<String>)> {
        vec![
            (
                PhaseKind::Generation,
                self.generators.iter().map(|m| m.name().to_owned()).collect(),
            ),
            (
                PhaseKind::Extraction,
                self.extractors.iter().map(|m| m.name().to_owned()).collect(),
            ),
            (
                PhaseKind::Persistence,
                self.persisters.iter().map(|m| m.name().to_owned()).collect(),
            ),
            (
                PhaseKind::Analysis,
                self.analyzers.iter().map(|m| m.name().to_owned()).collect(),
            ),
            (
                PhaseKind::Usage,
                self.usage_modules.iter().map(|m| m.name().to_owned()).collect(),
            ),
        ]
    }

    /// Run one full iteration of the cycle.
    pub fn run_once(&mut self) -> Result<CycleReport, CycleError> {
        let mut report = CycleReport::default();

        // Phase I: Generation.
        let mut artifacts: Vec<Artifact> = Vec::new();
        for generator in &mut self.generators {
            report
                .trace
                .push((PhaseKind::Generation, generator.name().to_owned()));
            artifacts.extend(generator.generate()?);
        }
        report.artifacts = artifacts.len();

        // Phase II: Extraction. Every extractor sees the artifacts it
        // accepts; an artifact may feed several extractors.
        let mut items: Vec<KnowledgeItem> = Vec::new();
        for extractor in &self.extractors {
            let accepted: Vec<&Artifact> =
                artifacts.iter().filter(|a| extractor.accepts(a)).collect();
            if accepted.is_empty() {
                continue;
            }
            report
                .trace
                .push((PhaseKind::Extraction, extractor.name().to_owned()));
            items.extend(extractor.extract(&accepted)?);
        }
        report.extracted = items.len();

        // Phase III: Persistence. The primary persister's ids are
        // reported; mirrors receive the same items.
        for (index, persister) in self.persisters.iter_mut().enumerate() {
            report
                .trace
                .push((PhaseKind::Persistence, persister.name().to_owned()));
            let ids = persister.persist(&items)?;
            if index == 0 {
                report.persisted_ids = ids;
            }
        }

        // Phase IV: Analysis over the full accumulated knowledge base.
        let corpus: Vec<KnowledgeItem> = match self.persisters.first() {
            Some(primary) => primary.load_all()?,
            None => items.clone(),
        };
        for analyzer in &self.analyzers {
            report
                .trace
                .push((PhaseKind::Analysis, analyzer.name().to_owned()));
            report.findings.extend(analyzer.analyze(&corpus)?);
        }

        // Phase V: Usage.
        for module in &mut self.usage_modules {
            report
                .trace
                .push((PhaseKind::Usage, module.name().to_owned()));
            let outcome = module.apply(&corpus, &report.findings)?;
            report.usage.merge(outcome);
        }

        Ok(report)
    }

    /// Run the cycle iteratively: after each iteration, feed the usage
    /// phase's `new_commands` to the generators (the first one whose
    /// [`Generator::reconfigure`] accepts each command wins) and go
    /// again, up to `max_iterations` or until usage schedules nothing new
    /// — "this iterative cyclic process is either re-launched or
    /// terminated" (§III).
    pub fn run_iterative(&mut self, max_iterations: u32) -> Result<Vec<CycleReport>, CycleError> {
        let mut reports = Vec::new();
        for _ in 0..max_iterations {
            let report = self.run_once()?;
            let commands = report.usage.new_commands.clone();
            reports.push(report);
            if commands.is_empty() {
                break;
            }
            let mut any_applied = false;
            for command in &commands {
                for generator in &mut self.generators {
                    if generator.reconfigure(command) {
                        any_applied = true;
                        break;
                    }
                }
            }
            if !any_applied {
                break;
            }
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Knowledge, KnowledgeSource};
    use crate::phases::{ArtifactKind, Payload};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct FakeGenerator {
        command: String,
        runs: u32,
    }

    impl Generator for FakeGenerator {
        fn name(&self) -> &str {
            "fake-ior"
        }
        fn reconfigure(&mut self, command: &str) -> bool {
            if command.starts_with("ior") {
                self.command = command.to_owned();
                true
            } else {
                false
            }
        }
        fn generate(&mut self) -> Result<Vec<Artifact>, CycleError> {
            self.runs += 1;
            Ok(vec![Artifact::text(
                ArtifactKind::IorOutput,
                "stdout",
                format!("RESULT bw=100 run={} cmd={}", self.runs, self.command),
            )
            .with_meta("command", &self.command)])
        }
    }

    struct FakeExtractor;

    impl Extractor for FakeExtractor {
        fn name(&self) -> &str {
            "fake-extractor"
        }
        fn accepts(&self, artifact: &Artifact) -> bool {
            artifact.kind == ArtifactKind::IorOutput
        }
        fn extract(&self, artifacts: &[&Artifact]) -> Result<Vec<KnowledgeItem>, CycleError> {
            Ok(artifacts
                .iter()
                .map(|a| {
                    KnowledgeItem::Benchmark(Knowledge::new(
                        KnowledgeSource::Ior,
                        a.meta.get("command").map(String::as_str).unwrap_or(""),
                    ))
                })
                .collect())
        }
    }

    #[derive(Default)]
    struct MemPersister {
        items: Rc<RefCell<Vec<KnowledgeItem>>>,
    }

    impl Persister for MemPersister {
        fn name(&self) -> &str {
            "memory"
        }
        fn persist(&mut self, items: &[KnowledgeItem]) -> Result<Vec<u64>, CycleError> {
            let mut store = self.items.borrow_mut();
            let mut ids = Vec::new();
            for item in items {
                store.push(item.clone());
                ids.push(store.len() as u64);
            }
            Ok(ids)
        }
        fn load_all(&self) -> Result<Vec<KnowledgeItem>, CycleError> {
            Ok(self.items.borrow().clone())
        }
    }

    struct CountingAnalyzer;

    impl Analyzer for CountingAnalyzer {
        fn name(&self) -> &str {
            "counter"
        }
        fn analyze(&self, items: &[KnowledgeItem]) -> Result<Vec<Finding>, CycleError> {
            Ok(vec![Finding {
                tag: "observation".into(),
                knowledge_id: None,
                message: format!("{} items in corpus", items.len()),
                values: vec![items.len() as f64],
            }])
        }
    }

    /// Usage module that schedules one follow-up command, then stops.
    struct OneFollowUp {
        fired: bool,
    }

    impl UsageModule for OneFollowUp {
        fn name(&self) -> &str {
            "regenerate"
        }
        fn apply(
            &mut self,
            _items: &[KnowledgeItem],
            _findings: &[Finding],
        ) -> Result<UsageOutcome, CycleError> {
            if self.fired {
                return Ok(UsageOutcome::default());
            }
            self.fired = true;
            Ok(UsageOutcome {
                new_commands: vec!["ior -b 8m".into()],
                ..UsageOutcome::default()
            })
        }
    }

    fn full_cycle(shared: Rc<RefCell<Vec<KnowledgeItem>>>) -> KnowledgeCycle {
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator { command: "ior -b 4m".into(), runs: 0 }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister { items: shared }))
            .add_analyzer(Box::new(CountingAnalyzer))
            .add_usage(Box::new(OneFollowUp { fired: false }));
        cycle
    }

    #[test]
    fn run_once_flows_through_all_phases() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store.clone());
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 1);
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.usage.new_commands, vec!["ior -b 8m".to_owned()]);
        // Trace covers all five phases.
        let phases: Vec<PhaseKind> = report.trace.iter().map(|(p, _)| *p).collect();
        for kind in PhaseKind::ALL {
            assert!(phases.contains(&kind), "missing {kind:?} in trace");
        }
        assert_eq!(store.borrow().len(), 1);
    }

    #[test]
    fn report_serializes_to_json() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store);
        let report = cycle.run_once().unwrap();
        let json = report.to_json();
        assert_eq!(json.get("artifacts").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            json.get("trace")
                .and_then(|t| t.at(0))
                .and_then(|e| e.get("phase"))
                .and_then(|p| p.as_str()),
            Some("generation")
        );
        // The document parses back.
        let text = json.to_pretty();
        assert!(iokc_util::json::parse(&text).is_ok());
        assert!(text.contains("new_commands"));
    }

    #[test]
    fn iterative_run_feeds_commands_back() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store.clone());
        let reports = cycle.run_iterative(5).unwrap();
        // Iteration 1 schedules a follow-up; iteration 2 does not.
        assert_eq!(reports.len(), 2);
        assert_eq!(store.borrow().len(), 2);
        // The corpus grows across iterations (the whole point of the
        // knowledge base).
        assert_eq!(reports[1].findings[0].values[0], 2.0);
    }

    #[test]
    fn iterative_stops_when_no_generator_accepts() {
        // Schedule a non-ior command that the generator declines.
        struct AlienUsage;
        impl UsageModule for AlienUsage {
            fn name(&self) -> &str {
                "alien"
            }
            fn apply(
                &mut self,
                _items: &[KnowledgeItem],
                _findings: &[Finding],
            ) -> Result<UsageOutcome, CycleError> {
                Ok(UsageOutcome {
                    new_commands: vec!["fio --bs=4k".into()],
                    ..UsageOutcome::default()
                })
            }
        }
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator { command: "ior -b 4m".into(), runs: 0 }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister { items: store }))
            .add_usage(Box::new(AlienUsage));
        let reports = cycle.run_iterative(5).unwrap();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn registry_lists_modules() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let cycle = full_cycle(store);
        let registry = cycle.registry();
        assert_eq!(registry.len(), 5);
        assert_eq!(registry[0].1, vec!["fake-ior".to_owned()]);
        assert_eq!(registry[2].1, vec!["memory".to_owned()]);
    }

    #[test]
    fn cycle_without_persister_analyzes_fresh_items() {
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator { command: "ior".into(), runs: 0 }))
            .add_extractor(Box::new(FakeExtractor))
            .add_analyzer(Box::new(CountingAnalyzer));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.findings[0].values[0], 1.0);
        assert!(report.persisted_ids.is_empty());
    }

    #[test]
    fn extractor_skips_foreign_artifacts() {
        struct BinaryGen;
        impl Generator for BinaryGen {
            fn name(&self) -> &str {
                "darshan"
            }
            fn generate(&mut self) -> Result<Vec<Artifact>, CycleError> {
                Ok(vec![Artifact {
                    kind: ArtifactKind::DarshanLog,
                    name: "log".into(),
                    payload: Payload::Binary(vec![0]),
                    meta: Default::default(),
                }])
            }
        }
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(BinaryGen))
            .add_extractor(Box::new(FakeExtractor));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 0);
    }

    #[test]
    fn mirror_persister_receives_items_but_primary_reports_ids() {
        let primary = Rc::new(RefCell::new(Vec::new()));
        let mirror = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator { command: "ior".into(), runs: 0 }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister { items: primary.clone() }))
            .add_persister(Box::new(MemPersister { items: mirror.clone() }));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(primary.borrow().len(), 1);
        assert_eq!(mirror.borrow().len(), 1);
    }
}
