//! Parser for mdtest summary output.

use iokc_core::model::{Knowledge, KnowledgeSource, OperationSummary};
use iokc_util::pattern::Pattern;

/// Error from parsing mdtest output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdtestOutputError(pub String);

impl std::fmt::Display for MdtestOutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable mdtest output: {}", self.0)
    }
}

impl std::error::Error for MdtestOutputError {}

/// Parse mdtest's `SUMMARY rate` table into a knowledge object. Rates are
/// stored as op/s in the summaries (the `*_mib` fields carry the rate in
/// ops/s for metadata benchmarks; the `operation` names them).
pub fn parse_mdtest_output(text: &str) -> Result<Knowledge, MdtestOutputError> {
    let command = Pattern::compile("Command line used: {cmd:*}$")
        .expect("static pattern compiles")
        .first_match(text)
        .map(|(_, caps)| caps["cmd"].clone())
        .unwrap_or_else(|| "mdtest".to_owned());
    let mut k = Knowledge::new(KnowledgeSource::Mdtest, &command);

    let row = Pattern::compile("{op:*}: {max:f} {min:f} {mean:f} {stddev:f}$")
        .expect("static pattern compiles");
    for caps in row.all_matches(text) {
        let op_label = caps["op"].trim();
        let operation = match op_label {
            "File creation" => "create",
            "File stat" => "stat",
            "File read" => "read",
            "File removal" => "remove",
            "Tree creation" => "tree-create",
            "Tree removal" => "tree-remove",
            _ => continue,
        };
        let get = |name: &str| caps[name].parse::<f64>().unwrap_or(0.0);
        k.summaries.push(OperationSummary {
            operation: operation.to_owned(),
            api: "POSIX".to_owned(),
            max_mib: get("max"),
            min_mib: get("min"),
            mean_mib: get("mean"),
            stddev_mib: get("stddev"),
            mean_ops: get("mean"),
            iterations: 1,
        });
    }
    if k.summaries.is_empty() {
        return Err(MdtestOutputError("no SUMMARY rows".into()));
    }
    k.pattern.api = "POSIX".to_owned();
    k.pattern.file_per_proc = command.contains("-u");
    Ok(k)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
mdtest-3.4.0 (iokc reimplementation) was launched with 4 total task(s) on 4 node(s)
Command line used: mdtest -n 50 -d /scratch -u

SUMMARY rate: (of 1 iterations)
   Operation                      Max            Min           Mean        Std Dev
   ---------                      ---            ---           ----        -------
   File creation            :      12345.678      12345.678      12345.678          0.000
   File stat                :      25010.120      25010.120      25010.120          0.000
   File read                :      18000.500      18000.500      18000.500          0.000
   File removal             :      14000.250      14000.250      14000.250          0.000
";

    #[test]
    fn parses_rates() {
        let k = parse_mdtest_output(SAMPLE).unwrap();
        assert_eq!(k.summaries.len(), 4);
        let create = k.summary("create").unwrap();
        assert_eq!(create.mean_ops, 12345.678);
        let stat = k.summary("stat").unwrap();
        assert_eq!(stat.max_mib, 25010.12);
        assert!(k.pattern.file_per_proc, "-u flag detected");
    }

    #[test]
    fn captures_command() {
        let k = parse_mdtest_output(SAMPLE).unwrap();
        assert_eq!(k.command, "mdtest -n 50 -d /scratch -u");
        assert_eq!(k.source, KnowledgeSource::Mdtest);
    }

    #[test]
    fn parses_generated_output() {
        use iokc_benchmarks::mdtest::{run_mdtest, MdtestConfig};
        use iokc_sim::prelude::*;
        let mut w = World::new(SystemConfig::test_small(), FaultPlan::none(), 31);
        let result = run_mdtest(
            &mut w,
            JobLayout::new(2, 2),
            &MdtestConfig::easy("/scratch", 10),
        )
        .unwrap();
        let k = parse_mdtest_output(&result.render()).unwrap();
        assert_eq!(k.summaries.len(), 4);
        for s in &k.summaries {
            assert!(s.mean_ops > 0.0, "{} rate is zero", s.operation);
        }
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_mdtest_output("").is_err());
    }
}
