//! `iokc-extract` — the knowledge extractor (Phase II, §V-B).
//!
//! Parsers for every raw output format the generation phase produces —
//! IOR, mdtest, HACC-IO and IO500 text output, BeeGFS and Lustre
//! `beegfs-ctl --getentryinfo` text, `/proc/cpuinfo` and `/proc/meminfo`
//! snapshots, and binary Darshan-style logs — plus [`iokc_core::Extractor`]
//! phase modules that turn artifacts into knowledge objects and enrich
//! them with file-system and system information.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod beegfs;
pub mod darshan_ingest;
pub mod darshan_text;
pub mod extractors;
pub mod hacc_parse;
pub mod io500_parse;
pub mod ior_parse;
pub mod lustre;
pub mod mdtest_parse;
pub mod procfs;

pub use beegfs::parse_entry_info;
pub use darshan_ingest::{ingest_darshan, ingest_darshan_lenient, DarshanIngestError};
pub use darshan_text::{parse_darshan_text, DarshanTextError};
pub use extractors::{
    DarshanExtractor, HaccExtractor, Io500Extractor, IorExtractor, MdtestExtractor,
};
pub use hacc_parse::parse_hacc_output;
pub use io500_parse::{parse_io500_output, parse_io500_output_lenient};
pub use ior_parse::{parse_ior_output, parse_ior_output_lenient};
pub use lustre::parse_lfs_getstripe;
pub use mdtest_parse::parse_mdtest_output;
pub use procfs::{parse_cpuinfo, parse_meminfo, parse_system_info};
