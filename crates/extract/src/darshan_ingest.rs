//! Darshan log ingestion — the PyDarshan integration of §V-B.
//!
//! Converts a binary Darshan-style log into a benchmark knowledge object:
//! the POSIX-layer totals become `write`/`read` operation summaries and
//! the job header populates the pattern fields.

use iokc_core::model::{Knowledge, KnowledgeSource, OperationSummary};
use iokc_darshan::{decode, decode_salvage, DarshanLog, DecodeError, LogSummary};

/// Error ingesting a Darshan log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DarshanIngestError {
    /// The binary payload did not decode.
    Decode(DecodeError),
    /// The log carries no I/O at all.
    Empty,
}

impl std::fmt::Display for DarshanIngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DarshanIngestError::Decode(e) => write!(f, "darshan decode: {e}"),
            DarshanIngestError::Empty => write!(f, "darshan log contains no I/O"),
        }
    }
}

impl std::error::Error for DarshanIngestError {}

/// Ingest a binary Darshan-style log. Strict: a log that does not decode
/// completely, or carries no I/O, is an error. See
/// [`ingest_darshan_lenient`] for the degrade-instead-of-fail variant.
pub fn ingest_darshan(bytes: &[u8]) -> Result<Knowledge, DarshanIngestError> {
    let log = decode(bytes).map_err(DarshanIngestError::Decode)?;
    let summary = LogSummary::from_log(&log);
    if summary.writes == 0 && summary.reads == 0 {
        return Err(DarshanIngestError::Empty);
    }
    Ok(knowledge_from_log(&log, &summary))
}

/// Best-effort ingestion of a possibly truncated or corrupt log.
///
/// Whatever records decode completely become the knowledge object; each
/// problem (truncation, bad magic, no I/O in the salvaged part) is
/// recorded as a structured warning on the object instead of failing the
/// extraction. Always returns a knowledge object; callers can check
/// [`Knowledge::is_partial`].
#[must_use]
pub fn ingest_darshan_lenient(bytes: &[u8]) -> Knowledge {
    let salvage = decode_salvage(bytes);
    let summary = LogSummary::from_log(&salvage.log);
    let mut k = knowledge_from_log(&salvage.log, &summary);
    if let Some(error) = &salvage.error {
        k.warnings.push(format!(
            "darshan log decoded partially: {error}; kept {} name(s), {} module record(s), {} \
             dxt segment(s)",
            salvage.log.names.len(),
            salvage.log.modules.values().map(Vec::len).sum::<usize>(),
            salvage.log.dxt.len(),
        ));
    }
    if summary.writes == 0 && summary.reads == 0 {
        k.warnings.push("no I/O recovered from the log".to_owned());
    }
    k
}

fn knowledge_from_log(log: &DarshanLog, summary: &LogSummary) -> Knowledge {
    let mut k = Knowledge::new(
        KnowledgeSource::Darshan,
        &format!("darshan:{} (job {})", log.job.exe, log.job.job_id),
    );
    k.pattern.api = "POSIX".to_owned();
    k.pattern.tasks = summary.nprocs;
    k.start_time = log.job.start_time;
    k.end_time = log.job.end_time;
    if summary.writes > 0 {
        k.summaries.push(OperationSummary {
            operation: "write".to_owned(),
            api: "POSIX".to_owned(),
            max_mib: summary.write_bandwidth_mib(),
            min_mib: summary.write_bandwidth_mib(),
            mean_mib: summary.write_bandwidth_mib(),
            stddev_mib: 0.0,
            mean_ops: if summary.write_time > 0.0 {
                summary.writes as f64 / summary.write_time
            } else {
                0.0
            },
            iterations: 1,
        });
    }
    if summary.reads > 0 {
        k.summaries.push(OperationSummary {
            operation: "read".to_owned(),
            api: "POSIX".to_owned(),
            max_mib: summary.read_bandwidth_mib(),
            min_mib: summary.read_bandwidth_mib(),
            mean_mib: summary.read_bandwidth_mib(),
            stddev_mib: 0.0,
            mean_ops: if summary.read_time > 0.0 {
                summary.reads as f64 / summary.read_time
            } else {
                0.0
            },
            iterations: 1,
        });
    }
    k
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_darshan::{encode, LogBuilder, Module};

    #[test]
    fn ingests_a_log() {
        let mut b = LogBuilder::new(88, 16, "ior", false);
        b.set_times(1000, 1060);
        b.open(Module::Posix, "/scratch/x", 0, 0.0, 0.1);
        b.transfer("/scratch/x", 0, true, 0, 64 << 20, 0.1, 1.1, None);
        b.transfer("/scratch/x", 0, false, 0, 32 << 20, 1.1, 1.6, None);
        b.close(Module::Posix, "/scratch/x", 0, 1.6, 1.7);
        let bytes = encode(&b.finish());
        let k = ingest_darshan(&bytes).unwrap();
        assert_eq!(k.source, KnowledgeSource::Darshan);
        assert_eq!(k.pattern.tasks, 16);
        assert_eq!(k.start_time, 1000);
        // 64 MiB in 1.0 s.
        assert!((k.summary("write").unwrap().mean_mib - 64.0).abs() < 1e-9);
        // 32 MiB in 0.5 s.
        assert!((k.summary("read").unwrap().mean_mib - 64.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_corrupt_and_empty() {
        assert!(matches!(
            ingest_darshan(&[1, 2, 3]),
            Err(DarshanIngestError::Decode(_))
        ));
        let empty = encode(&LogBuilder::new(1, 1, "x", false).finish());
        assert_eq!(ingest_darshan(&empty), Err(DarshanIngestError::Empty));
    }

    fn sample_bytes() -> Vec<u8> {
        let mut b = LogBuilder::new(88, 16, "ior", false);
        b.set_times(1000, 1060);
        for rank in 0..4 {
            let path = format!("/scratch/x.{rank}");
            b.open(Module::Posix, &path, rank, 0.0, 0.1);
            b.transfer(&path, rank, true, 0, 64 << 20, 0.1, 1.1, None);
            b.close(Module::Posix, &path, rank, 1.6, 1.7);
        }
        encode(&b.finish())
    }

    #[test]
    fn lenient_ingest_of_truncated_log_yields_partial_knowledge() {
        let bytes = sample_bytes();
        let k = ingest_darshan_lenient(&bytes[..bytes.len() * 3 / 4]);
        assert!(k.is_partial(), "warnings: {:?}", k.warnings);
        assert!(k.warnings[0].contains("decoded partially"));
        // The job header survived the truncation.
        assert_eq!(k.pattern.tasks, 16);
        assert_eq!(k.start_time, 1000);
        assert!(k.command.contains("job 88"));
    }

    #[test]
    fn lenient_ingest_of_bad_magic_warns_instead_of_failing() {
        let mut bytes = sample_bytes();
        bytes[0] ^= 0xff;
        let k = ingest_darshan_lenient(&bytes);
        assert!(k.is_partial());
        assert!(k.warnings.iter().any(|w| w.contains("bad magic")));
        assert!(k.warnings.iter().any(|w| w.contains("no I/O")));
        assert!(k.summaries.is_empty());
    }

    #[test]
    fn lenient_ingest_of_intact_log_matches_strict() {
        let bytes = sample_bytes();
        let strict = ingest_darshan(&bytes).unwrap();
        let lenient = ingest_darshan_lenient(&bytes);
        assert_eq!(strict, lenient);
        assert!(!lenient.is_partial());
    }
}
