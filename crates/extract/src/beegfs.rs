//! Parser for BeeGFS `beegfs-ctl --getentryinfo` output.
//!
//! §V-B: "for BeeGFS, the file system settings Entry type, EntryID,
//! Metadata node, Stripe pattern details can be collected."

use iokc_core::model::FilesystemInfo;
use iokc_util::pattern::Pattern;

/// Parse entry-info text into [`FilesystemInfo`]. Returns `None` when the
/// required fields are missing.
#[must_use]
pub fn parse_entry_info(text: &str) -> Option<FilesystemInfo> {
    let field = |label: &str| -> Option<String> {
        text.lines().find_map(|line| {
            let (key, value) = line.split_once(':')?;
            (key.trim() == label).then(|| value.trim().to_owned())
        })
    };
    let entry_type = field("Entry type")?;
    let entry_id = field("EntryID")?;
    let metadata_node = field("Metadata node")?
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_owned();

    // "+ Chunksize: 512K"
    let chunk = Pattern::compile("+ Chunksize: {size}")
        .expect("static pattern compiles")
        .first_match(text)
        .map(|(_, caps)| caps["size"].clone())
        .and_then(|s| parse_chunk(&s))
        .unwrap_or(0);

    // "+ Number of storage targets: desired: 4; actual: 4"
    let targets = Pattern::compile("actual: {n:d}")
        .expect("static pattern compiles")
        .first_match(text)
        .and_then(|(_, caps)| caps["n"].parse().ok())
        .unwrap_or(0);

    // "+ Storage Pool: 1 (Default)"
    let pool = Pattern::compile("+ Storage Pool: {} ({name:*})")
        .expect("static pattern compiles")
        .first_match(text)
        .map(|(_, caps)| caps["name"].trim_end_matches(')').to_owned())
        .unwrap_or_default();

    let raid = Pattern::compile("+ Type: {raid}")
        .expect("static pattern compiles")
        .first_match(text)
        .map(|(_, caps)| caps["raid"].clone())
        .unwrap_or_default();

    Some(FilesystemInfo {
        fs_type: "BeeGFS".to_owned(),
        entry_type,
        entry_id,
        metadata_node,
        chunk_size: chunk,
        storage_targets: targets,
        raid,
        storage_pool: pool,
    })
}

/// Parse BeeGFS chunk-size notation (`512K`, `1M`, plain bytes).
fn parse_chunk(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(num) = t.strip_suffix(['K', 'k']) {
        num.parse::<u64>().ok().map(|n| n * 1024)
    } else if let Some(num) = t.strip_suffix(['M', 'm']) {
        num.parse::<u64>().ok().map(|n| n * 1024 * 1024)
    } else {
        t.parse().ok()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Entry type: file
EntryID: 5-2A3B4C5D-1
Metadata node: meta02 [ID: 2]
Stripe pattern details:
+ Type: RAID0
+ Chunksize: 512K
+ Number of storage targets: desired: 4; actual: 4
+ Storage targets:
  + 3 @ storage03 [ID: 3]
  + 4 @ storage04 [ID: 4]
  + 1 @ storage01 [ID: 1]
  + 2 @ storage02 [ID: 2]
+ Storage Pool: 1 (Default)
";

    #[test]
    fn parses_all_fields() {
        let fs = parse_entry_info(SAMPLE).unwrap();
        assert_eq!(fs.fs_type, "BeeGFS");
        assert_eq!(fs.entry_type, "file");
        assert_eq!(fs.entry_id, "5-2A3B4C5D-1");
        assert_eq!(fs.metadata_node, "meta02");
        assert_eq!(fs.chunk_size, 512 * 1024);
        assert_eq!(fs.storage_targets, 4);
        assert_eq!(fs.raid, "RAID0");
        assert_eq!(fs.storage_pool, "Default");
    }

    #[test]
    fn chunk_notations() {
        assert_eq!(parse_chunk("512K"), Some(512 * 1024));
        assert_eq!(parse_chunk("1M"), Some(1024 * 1024));
        assert_eq!(parse_chunk("65536"), Some(65536));
        assert_eq!(parse_chunk("abc"), None);
    }

    #[test]
    fn missing_required_fields_yield_none() {
        assert!(parse_entry_info("").is_none());
        assert!(parse_entry_info("Entry type: file\n").is_none());
    }

    #[test]
    fn parses_simulator_rendered_entry_info() {
        use iokc_sim_free::entry_text;
        let fs = parse_entry_info(&entry_text()).unwrap();
        assert_eq!(fs.entry_type, "file");
        assert!(fs.chunk_size > 0);
    }

    mod iokc_sim_free {
        pub fn entry_text() -> String {
            super::SAMPLE.to_owned()
        }
    }
}
