//! Parser for IOR output text.
//!
//! Consumes the output format produced by IOR 3.x (and by this
//! workspace's reimplementation): the options block, per-iteration result
//! rows, and `Max Write:`/`Max Read:` lines. Produces a benchmark
//! [`Knowledge`] object with the pattern parameters, individual results,
//! and per-operation summaries.

use iokc_core::model::{IterationResult, Knowledge, KnowledgeSource, OperationSummary};
use iokc_util::pattern::Pattern;
use iokc_util::stats;

/// Error from parsing IOR output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IorOutputError(pub String);

impl std::fmt::Display for IorOutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable ior output: {}", self.0)
    }
}

impl std::error::Error for IorOutputError {}

fn option_value<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    text.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        (k.trim() == key).then(|| v.trim())
    })
}

/// Parse a complete IOR output document. Strict: missing header fields,
/// missing result rows, or a summary line that disagrees with the rows
/// are all errors. See [`parse_ior_output_lenient`] for the variant that
/// degrades to warnings.
pub fn parse_ior_output(text: &str) -> Result<Knowledge, IorOutputError> {
    parse_impl(text, false)
}

/// Parse a possibly truncated or mangled IOR output document.
///
/// Recoverable problems — a missing `Command line`, a missing `api`, rows
/// cut off mid-run (salvaged from the `Max Write:`/`Max Read:` summary
/// lines when present), or a summary line that disagrees with the rows —
/// become structured warnings on the returned knowledge object. Only
/// input with no recognizable IOR content at all is an error.
pub fn parse_ior_output_lenient(text: &str) -> Result<Knowledge, IorOutputError> {
    parse_impl(text, true)
}

fn parse_impl(text: &str, lenient: bool) -> Result<Knowledge, IorOutputError> {
    let mut warnings: Vec<String> = Vec::new();
    let command = match option_value(text, "Command line") {
        Some(c) => c.to_owned(),
        None if lenient => {
            warnings.push("missing Command line header; command unknown".to_owned());
            String::new()
        }
        None => return Err(IorOutputError("missing Command line".into())),
    };
    let mut k = Knowledge::new(KnowledgeSource::Ior, &command);

    let api = match option_value(text, "api") {
        Some(a) => a.to_owned(),
        None if lenient => {
            warnings.push("missing api header; access pattern incomplete".to_owned());
            String::new()
        }
        None => return Err(IorOutputError("missing api".into())),
    };
    k.pattern.api = api.clone();
    k.pattern.test_file = option_value(text, "test filename").unwrap_or("").to_owned();
    k.pattern.file_per_proc = option_value(text, "access").is_some_and(|v| v == "file-per-process");
    k.pattern.collective = option_value(text, "type").is_some_and(|v| v == "collective");
    k.pattern.reorder_tasks =
        option_value(text, "ordering inter file").is_some_and(|v| v.contains("constant"));
    k.pattern.segments = option_value(text, "segments")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    k.pattern.tasks = option_value(text, "tasks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    k.pattern.clients_per_node = option_value(text, "clients per node")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    k.pattern.iterations = option_value(text, "repetitions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    k.pattern.transfer_size = option_value(text, "xfersize")
        .and_then(|v| iokc_util::units::parse_size(&v.replace(' ', "")).ok())
        .unwrap_or(0);
    k.pattern.block_size = option_value(text, "blocksize")
        .and_then(|v| iokc_util::units::parse_size(&v.replace(' ', "")).ok())
        .unwrap_or(0);
    k.pattern.fsync = command.contains(" -e");

    // Per-iteration rows:
    // access bw(MiB/s) IOPS Latency block xfer open wr/rd close total iter
    let row = Pattern::compile(
        "^{access} {bw:f} {iops:f} {lat:f} {block:f} {xfer:f} {open:f} {wrrd:f} {close:f} {total:f} {iter:d}$",
    )
    .expect("static pattern compiles");
    for caps in row.all_matches(text) {
        let access = caps["access"].to_owned();
        if access != "write" && access != "read" {
            continue;
        }
        let get = |name: &str| caps[name].parse::<f64>().unwrap_or(0.0);
        let bw = get("bw");
        let wrrd = get("wrrd");
        let iops = get("iops");
        k.results.push(IterationResult {
            operation: access,
            iteration: caps["iter"].parse().unwrap_or(0),
            bw_mib: bw,
            ops: (iops * wrrd).round() as u64,
            ops_per_sec: iops,
            latency_s: get("lat"),
            open_s: get("open"),
            wrrd_s: wrrd,
            close_s: get("close"),
            total_s: get("total"),
        });
    }
    if k.results.is_empty() {
        if !lenient {
            return Err(IorOutputError("no result rows found".into()));
        }
        warnings.push("no result rows found; output truncated before the results table".to_owned());
    }

    // Summaries (computed from the rows; the Max Write/Read lines are used
    // as a cross-check when present).
    for operation in ["write", "read"] {
        let rows: Vec<&IterationResult> = k
            .results
            .iter()
            .filter(|r| r.operation == operation)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let bws: Vec<f64> = rows.iter().map(|r| r.bw_mib).collect();
        let opss: Vec<f64> = rows.iter().map(|r| r.ops_per_sec).collect();
        k.summaries.push(OperationSummary {
            operation: operation.to_owned(),
            api: api.clone(),
            max_mib: stats::max(&bws),
            min_mib: stats::min(&bws),
            mean_mib: stats::mean(&bws),
            stddev_mib: stats::stddev(&bws),
            mean_ops: stats::mean(&opss),
            iterations: rows.len() as u32,
        });
    }

    // Cross-check against the Max Write/Read lines when present. In
    // lenient mode they also serve as a salvage source when the rows
    // themselves were cut off.
    for (label, operation) in [("Max Write:", "write"), ("Max Read:", "read")] {
        let p = Pattern::compile(&format!("{label} {{bw:f}} MiB/sec")).expect("pattern");
        if let Some((_, caps)) = p.first_match(text) {
            let reported: f64 = caps["bw"].parse().unwrap_or(0.0);
            match k.summaries.iter().find(|s| s.operation == operation) {
                Some(summary)
                    if (summary.max_mib - reported).abs() > summary.max_mib.max(1.0) * 0.01 =>
                {
                    let msg = format!(
                        "{label} {reported} disagrees with rows (max {})",
                        summary.max_mib
                    );
                    if !lenient {
                        return Err(IorOutputError(msg));
                    }
                    warnings.push(msg);
                }
                Some(_) => {}
                None if lenient => {
                    warnings.push(format!(
                        "{operation} summary salvaged from the `{label}` line only"
                    ));
                    k.summaries.push(OperationSummary {
                        operation: operation.to_owned(),
                        api: api.clone(),
                        max_mib: reported,
                        min_mib: reported,
                        mean_mib: reported,
                        stddev_mib: 0.0,
                        mean_ops: 0.0,
                        iterations: 0,
                    });
                }
                None => {}
            }
        }
    }

    if lenient
        && command.is_empty()
        && api.is_empty()
        && k.results.is_empty()
        && k.summaries.is_empty()
    {
        return Err(IorOutputError("no recognizable ior content".into()));
    }
    k.warnings = warnings;
    Ok(k)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
IOR-3.3.0 (iokc reimplementation): MPI Coordinated Test of Parallel I/O
Command line        : ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 2 -o /scratch/test80 -k
Machine             : Linux fuchs-csc

Options:
api                 : MPIIO
test filename       : /scratch/test80
access              : file-per-process
type                : independent
segments            : 40
ordering in a file  : sequential
ordering inter file : constant task offset
nodes               : 4
tasks               : 80
clients per node    : 20
repetitions         : 2
xfersize            : 2 MiB
blocksize           : 4 MiB
aggregate filesize  : 12.50 GiB

Results:

access    bw(MiB/s)  IOPS       Latency(s)  block(KiB) xfer(KiB)  open(s)    wr/rd(s)   close(s)   total(s)   iter
------    ---------  ----       ----------  ---------- ---------  --------   --------   --------   --------   ----
write     2850.12    1425.06    0.000701    4096       2048       0.002438   4.490000   0.000578   4.500000   0
read      3109.90    1554.95    0.000650    4096       2048       0.002100   4.110000   0.000500   4.120000   0
write     1251.00    625.50     0.001600    4096       2048       0.002438   10.230000  0.000578   10.240000  1
read      3095.10    1547.55    0.000655    4096       2048       0.002100   4.130000   0.000500   4.140000   1

Max Write: 2850.12 MiB/sec (2988.64 MB/sec)
Max Read:  3109.90 MiB/sec (3261.02 MB/sec)
";

    #[test]
    fn parses_pattern_from_options() {
        let k = parse_ior_output(SAMPLE).unwrap();
        assert_eq!(k.pattern.api, "MPIIO");
        assert_eq!(k.pattern.test_file, "/scratch/test80");
        assert!(k.pattern.file_per_proc);
        assert!(k.pattern.reorder_tasks);
        assert!(k.pattern.fsync);
        assert!(!k.pattern.collective);
        assert_eq!(k.pattern.segments, 40);
        assert_eq!(k.pattern.tasks, 80);
        assert_eq!(k.pattern.clients_per_node, 20);
        assert_eq!(k.pattern.iterations, 2);
        assert_eq!(k.pattern.transfer_size, 2 << 20);
        assert_eq!(k.pattern.block_size, 4 << 20);
    }

    #[test]
    fn parses_result_rows() {
        let k = parse_ior_output(SAMPLE).unwrap();
        assert_eq!(k.results.len(), 4);
        let w1 = &k.results[2];
        assert_eq!(w1.operation, "write");
        assert_eq!(w1.iteration, 1);
        assert_eq!(w1.bw_mib, 1251.0);
        assert!((w1.total_s - 10.24).abs() < 1e-9);
    }

    #[test]
    fn computes_summaries() {
        let k = parse_ior_output(SAMPLE).unwrap();
        let w = k.summary("write").unwrap();
        assert_eq!(w.max_mib, 2850.12);
        assert_eq!(w.min_mib, 1251.0);
        assert!((w.mean_mib - 2050.56).abs() < 1e-9);
        assert_eq!(w.iterations, 2);
        let r = k.summary("read").unwrap();
        assert_eq!(r.max_mib, 3109.9);
    }

    #[test]
    fn command_is_captured() {
        let k = parse_ior_output(SAMPLE).unwrap();
        assert!(k.command.starts_with("ior -a mpiio"));
        assert!(k.command.ends_with("-k"));
    }

    #[test]
    fn rejects_garbage_and_inconsistency() {
        assert!(parse_ior_output("not ior output at all").is_err());
        let inconsistent = SAMPLE.replace("Max Write: 2850.12", "Max Write: 9999.99");
        assert!(parse_ior_output(&inconsistent).is_err());
    }

    #[test]
    fn lenient_salvages_truncated_output() {
        // Cut the document right after the results header: the rows are
        // gone but the options block survives.
        let cut = SAMPLE.split("------").next().unwrap();
        assert!(parse_ior_output(cut).is_err());
        let k = parse_ior_output_lenient(cut).unwrap();
        assert!(k.is_partial());
        assert!(k.warnings.iter().any(|w| w.contains("no result rows")));
        assert_eq!(k.pattern.tasks, 80);
        assert!(k.command.starts_with("ior -a mpiio"));
    }

    #[test]
    fn lenient_salvages_summary_lines_when_rows_are_mangled() {
        // Keep the header and the Max lines but drop the result rows.
        let mangled: String = SAMPLE
            .lines()
            .filter(|l| !(l.starts_with("write") || l.starts_with("read")))
            .collect::<Vec<_>>()
            .join("\n");
        let k = parse_ior_output_lenient(&mangled).unwrap();
        assert!(k.is_partial());
        assert!(k.results.is_empty());
        let w = k.summary("write").unwrap();
        assert_eq!(w.max_mib, 2850.12);
        assert_eq!(w.iterations, 0);
        assert!(k
            .warnings
            .iter()
            .any(|w| w.contains("salvaged from the `Max Write:` line")));
    }

    #[test]
    fn lenient_downgrades_cross_check_mismatch_to_warning() {
        let inconsistent = SAMPLE.replace("Max Write: 2850.12", "Max Write: 9999.99");
        let k = parse_ior_output_lenient(&inconsistent).unwrap();
        assert!(k.is_partial());
        assert!(k.warnings.iter().any(|w| w.contains("disagrees")));
        // The row-derived summary wins.
        assert_eq!(k.summary("write").unwrap().max_mib, 2850.12);
    }

    #[test]
    fn lenient_still_rejects_unrecognizable_input() {
        assert!(parse_ior_output_lenient("not ior output at all").is_err());
    }

    #[test]
    fn lenient_matches_strict_on_intact_output() {
        let strict = parse_ior_output(SAMPLE).unwrap();
        let lenient = parse_ior_output_lenient(SAMPLE).unwrap();
        assert_eq!(strict, lenient);
        assert!(!lenient.is_partial());
    }

    #[test]
    fn roundtrip_with_generated_output() {
        // Output produced by the reimplementation must parse back.
        use iokc_benchmarks_free::*;
        let text = generated_sample();
        let k = parse_ior_output(&text).unwrap();
        assert!(k.pattern.tasks > 0);
        assert!(!k.results.is_empty());
    }

    /// Local stand-in module so the unit test does not depend on
    /// iokc-benchmarks (which would be a dependency cycle at test level);
    /// the real end-to-end check lives in the integration tests.
    mod iokc_benchmarks_free {
        pub fn generated_sample() -> String {
            super::SAMPLE.to_owned()
        }
    }
}
