//! Parser for IO500 result output.

use iokc_core::model::{Io500Knowledge, Io500Testcase};
use iokc_util::pattern::Pattern;

/// Error from parsing IO500 output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Io500OutputError(pub String);

impl std::fmt::Display for Io500OutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable io500 output: {}", self.0)
    }
}

impl std::error::Error for Io500OutputError {}

/// Parse an IO500 result block into an IO500 knowledge object. Strict: a
/// run with no `[RESULT]` lines or no `[SCORE ]` line is an error. See
/// [`parse_io500_output_lenient`] for the degrade-instead-of-fail
/// variant.
pub fn parse_io500_output(text: &str) -> Result<Io500Knowledge, Io500OutputError> {
    parse_impl(text, false)
}

/// Parse a possibly truncated IO500 result block.
///
/// A run cut off before the `[SCORE ]` line keeps whatever `[RESULT]`
/// lines survived, with zeroed scores and a structured warning on the
/// knowledge object. Only output with no `[RESULT]` lines at all is an
/// error.
pub fn parse_io500_output_lenient(text: &str) -> Result<Io500Knowledge, Io500OutputError> {
    parse_impl(text, true)
}

fn parse_impl(text: &str, lenient: bool) -> Result<Io500Knowledge, Io500OutputError> {
    let result_line = Pattern::compile("[RESULT] {name} {value:f} {unit} : time {time:f} seconds")
        .expect("static pattern compiles");
    let mut testcases = Vec::new();
    for caps in result_line.all_matches(text) {
        testcases.push(Io500Testcase {
            name: caps["name"].clone(),
            value: caps["value"].parse().unwrap_or(0.0),
            unit: caps["unit"].clone(),
            time_s: caps["time"].parse().unwrap_or(0.0),
        });
    }
    if testcases.is_empty() {
        return Err(Io500OutputError("no [RESULT] lines".into()));
    }

    let mut warnings = Vec::new();
    let score_line =
        Pattern::compile("[SCORE ] Bandwidth {bw:f} GiB/s : IOPS {md:f} kiops : TOTAL {total:f}")
            .expect("static pattern compiles");
    let (bw_score, md_score, total_score) = match score_line.first_match(text) {
        Some((_, caps)) => (
            caps["bw"].parse().unwrap_or(0.0),
            caps["md"].parse().unwrap_or(0.0),
            caps["total"].parse().unwrap_or(0.0),
        ),
        None if lenient => {
            warnings.push(format!(
                "no [SCORE ] line; kept {} [RESULT] line(s), scores unknown",
                testcases.len()
            ));
            (0.0, 0.0, 0.0)
        }
        None => return Err(Io500OutputError("no [SCORE ] line".into())),
    };

    Ok(Io500Knowledge {
        id: None,
        tasks: 0,
        bw_score,
        md_score,
        total_score,
        testcases,
        options: Default::default(),
        system: None,
        start_time: 0,
        warnings,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
IO500 version io500-isc22 (iokc reimplementation)
[RESULT]       ior-easy-write       2.501234 GiB/s : time 31.221 seconds
[RESULT]    mdtest-easy-write      14.220000 kIOPS : time 8.410 seconds
[RESULT]       ior-hard-write       0.112345 GiB/s : time 110.020 seconds
[RESULT]    mdtest-hard-write       5.110000 kIOPS : time 20.120 seconds
[RESULT]                 find     120.500000 kIOPS : time 1.950 seconds
[RESULT]        ior-easy-read       2.750000 GiB/s : time 28.400 seconds
[RESULT]     mdtest-easy-stat      28.400000 kIOPS : time 4.210 seconds
[RESULT]        ior-hard-read       0.410000 GiB/s : time 30.150 seconds
[RESULT]     mdtest-hard-stat      22.100000 kIOPS : time 5.410 seconds
[RESULT]   mdtest-easy-delete      11.200000 kIOPS : time 10.680 seconds
[RESULT]     mdtest-hard-read       7.400000 kIOPS : time 16.160 seconds
[RESULT]   mdtest-hard-delete       4.900000 kIOPS : time 24.400 seconds
[SCORE ] Bandwidth 0.745112 GiB/s : IOPS 13.211000 kiops : TOTAL 3.137588
";

    #[test]
    fn parses_all_testcases() {
        let k = parse_io500_output(SAMPLE).unwrap();
        assert_eq!(k.testcases.len(), 12);
        let easy = k.testcase("ior-easy-write").unwrap();
        assert_eq!(easy.value, 2.501234);
        assert_eq!(easy.unit, "GiB/s");
        assert!((easy.time_s - 31.221).abs() < 1e-9);
        let find = k.testcase("find").unwrap();
        assert_eq!(find.value, 120.5);
        assert_eq!(find.unit, "kIOPS");
    }

    #[test]
    fn parses_scores() {
        let k = parse_io500_output(SAMPLE).unwrap();
        assert!((k.bw_score - 0.745112).abs() < 1e-9);
        assert!((k.md_score - 13.211).abs() < 1e-9);
        assert!((k.total_score - 3.137588).abs() < 1e-9);
    }

    #[test]
    fn rejects_missing_pieces() {
        assert!(parse_io500_output("nothing here").is_err());
        let no_score: String = SAMPLE
            .lines()
            .filter(|l| !l.starts_with("[SCORE"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(parse_io500_output(&no_score).is_err());
    }

    #[test]
    fn lenient_keeps_results_when_score_line_is_cut_off() {
        let no_score: String = SAMPLE
            .lines()
            .filter(|l| !l.starts_with("[SCORE"))
            .collect::<Vec<_>>()
            .join("\n");
        let k = parse_io500_output_lenient(&no_score).unwrap();
        assert!(k.is_partial());
        assert!(k.warnings[0].contains("no [SCORE ] line"));
        assert_eq!(k.testcases.len(), 12);
        assert_eq!(k.total_score, 0.0);
    }

    #[test]
    fn lenient_still_rejects_unrecognizable_input() {
        assert!(parse_io500_output_lenient("nothing here").is_err());
    }

    #[test]
    fn lenient_matches_strict_on_intact_output() {
        let strict = parse_io500_output(SAMPLE).unwrap();
        let lenient = parse_io500_output_lenient(SAMPLE).unwrap();
        assert_eq!(strict, lenient);
        assert!(!lenient.is_partial());
    }
}
