//! Parser for Lustre `lfs getstripe` output (§VI outlook: "integrate
//! further parallel file systems such as Lustre … for our extractor").

use iokc_core::model::FilesystemInfo;
use iokc_util::pattern::Pattern;

/// Parse `lfs getstripe` text into [`FilesystemInfo`]. Returns `None`
/// when the required fields are missing.
#[must_use]
pub fn parse_lfs_getstripe(text: &str) -> Option<FilesystemInfo> {
    let stripe_count = Pattern::compile("lmm_stripe_count: {n:d}")
        .expect("static pattern compiles")
        .first_match(text)?
        .1["n"]
        .parse()
        .ok()?;
    let stripe_size = Pattern::compile("lmm_stripe_size: {n:d}")
        .expect("static pattern compiles")
        .first_match(text)?
        .1["n"]
        .parse()
        .ok()?;
    let pattern = Pattern::compile("lmm_pattern: {p}")
        .expect("static pattern compiles")
        .first_match(text)
        .map(|(_, caps)| caps["p"].to_ascii_uppercase())
        .unwrap_or_else(|| "RAID0".to_owned());
    let offset = Pattern::compile("lmm_stripe_offset: {n:d}")
        .expect("static pattern compiles")
        .first_match(text)
        .and_then(|(_, caps)| caps["n"].parse::<u32>().ok())
        .unwrap_or(0);
    // The first non-empty line is the path (how lfs prints it).
    let path = text
        .lines()
        .find(|l| !l.trim().is_empty())?
        .trim()
        .to_owned();
    Some(FilesystemInfo {
        fs_type: "Lustre".to_owned(),
        entry_type: "file".to_owned(),
        entry_id: path,
        metadata_node: format!("MDT{offset:04}"),
        chunk_size: stripe_size,
        storage_targets: stripe_count,
        raid: pattern,
        storage_pool: "lustre".to_owned(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
/scratch/lustre_file
lmm_stripe_count:  4
lmm_stripe_size:   1048576
lmm_pattern:       raid0
lmm_layout_gen:    0
lmm_stripe_offset: 2
\tobdidx\t\t objid\t\t objid\t\t group
\t     2\t      12345\t     0x3039\t      0
\t     3\t      12346\t     0x303a\t      0
\t     0\t      12347\t     0x303b\t      0
\t     1\t      12348\t     0x303c\t      0
";

    #[test]
    fn parses_lfs_output() {
        let fs = parse_lfs_getstripe(SAMPLE).unwrap();
        assert_eq!(fs.fs_type, "Lustre");
        assert_eq!(fs.storage_targets, 4);
        assert_eq!(fs.chunk_size, 1_048_576);
        assert_eq!(fs.raid, "RAID0");
        assert_eq!(fs.metadata_node, "MDT0002");
        assert_eq!(fs.entry_id, "/scratch/lustre_file");
    }

    #[test]
    fn parses_simulator_rendered_output() {
        use iokc_sim::config::PfsConfig;
        use iokc_sim::pfs::Namespace;
        use iokc_sim::script::StripeHint;
        let mut ns = Namespace::new(PfsConfig::test_small());
        ns.create("/scratch/lfile", StripeHint::default(), 0)
            .unwrap();
        let text = ns.entry_info_lustre("/scratch/lfile").unwrap();
        let fs = parse_lfs_getstripe(&text).unwrap();
        assert_eq!(fs.fs_type, "Lustre");
        assert_eq!(fs.storage_targets, 2);
        assert_eq!(fs.chunk_size, 512 * 1024);
    }

    #[test]
    fn missing_fields_yield_none() {
        assert!(parse_lfs_getstripe("").is_none());
        assert!(parse_lfs_getstripe("lmm_stripe_count:  4\n").is_none());
    }
}
