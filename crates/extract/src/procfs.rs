//! Parsers for `/proc/cpuinfo` and `/proc/meminfo` snapshots (§V-B: "for
//! the system statistics including processor cores, processor
//! architecture, processor frequency, but also the cache and memory
//! sizes, the extractor uses the data from /proc/").

use iokc_core::model::SystemInfo;

/// Parse cpuinfo text into the CPU-side fields of [`SystemInfo`].
/// `system` is the cluster/host name attached by the caller.
#[must_use]
pub fn parse_cpuinfo(text: &str, system: &str) -> Option<SystemInfo> {
    let mut cores = 0u32;
    let mut model = None;
    let mut mhz = None;
    let mut cache_kib = None;
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "processor" => cores += 1,
            "model name" if model.is_none() => model = Some(value.to_owned()),
            "cpu MHz" if mhz.is_none() => mhz = value.parse::<f64>().ok(),
            "cache size" if cache_kib.is_none() => {
                cache_kib = value
                    .strip_suffix("KB")
                    .map(str::trim)
                    .and_then(|v| v.parse::<u64>().ok());
            }
            _ => {}
        }
    }
    if cores == 0 {
        return None;
    }
    Some(SystemInfo {
        system: system.to_owned(),
        cpu_model: model?,
        cores,
        cpu_mhz: mhz.unwrap_or(0.0),
        cache_kib: cache_kib.unwrap_or(0),
        mem_kib: 0,
    })
}

/// Parse meminfo text, returning `MemTotal` in KiB.
#[must_use]
pub fn parse_meminfo(text: &str) -> Option<u64> {
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        if key.trim() == "MemTotal" {
            return value
                .trim()
                .strip_suffix("kB")
                .map(str::trim)
                .and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Combine cpuinfo and meminfo into one [`SystemInfo`].
#[must_use]
pub fn parse_system_info(cpuinfo: &str, meminfo: &str, system: &str) -> Option<SystemInfo> {
    let mut info = parse_cpuinfo(cpuinfo, system)?;
    info.mem_kib = parse_meminfo(meminfo).unwrap_or(0);
    Some(info)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::ClusterConfig;
    use iokc_sim::sysinfo::ProcSnapshot;

    #[test]
    fn parses_simulated_procfs() {
        let snap = ProcSnapshot::of(&ClusterConfig::fuchs_csc());
        let info =
            parse_system_info(&snap.render_cpuinfo(), &snap.render_meminfo(), "FUCHS-CSC").unwrap();
        assert_eq!(info.system, "FUCHS-CSC");
        assert_eq!(info.cores, 20);
        assert!(info.cpu_model.contains("E5-2670 v2"));
        assert_eq!(info.cpu_mhz, 2500.0);
        assert_eq!(info.cache_kib, 25_600);
        assert_eq!(info.mem_kib, 128 * 1024 * 1024);
    }

    #[test]
    fn handles_real_world_format_quirks() {
        let cpuinfo = "\
processor\t: 0
model name\t: AMD EPYC 7763 64-Core Processor
cpu MHz\t\t: 2450.000
cache size\t: 512 KB

processor\t: 1
model name\t: AMD EPYC 7763 64-Core Processor
cpu MHz\t\t: 2450.000
cache size\t: 512 KB
";
        let info = parse_cpuinfo(cpuinfo, "x").unwrap();
        assert_eq!(info.cores, 2);
        assert_eq!(info.cache_kib, 512);
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_cpuinfo("", "x").is_none());
        assert!(parse_meminfo("").is_none());
    }
}
