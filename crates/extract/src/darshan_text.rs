//! Parser for `darshan-parser`-style text dumps.
//!
//! Sites often share characterization data as the textual output of
//! `darshan-parser` rather than binary logs; a tool-agnostic extractor
//! (§III) should take those too. The format is tab-separated:
//!
//! ```text
//! #<module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>
//! POSIX\t0\t12345\tPOSIX_BYTES_WRITTEN\t1048576\t/scratch/f
//! ```

use iokc_core::model::{Knowledge, KnowledgeSource, OperationSummary};
use std::collections::BTreeMap;

/// Error from parsing darshan-parser text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DarshanTextError(pub String);

impl std::fmt::Display for DarshanTextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable darshan-parser text: {}", self.0)
    }
}

impl std::error::Error for DarshanTextError {}

/// Totals accumulated from the counter lines.
#[derive(Debug, Default, Clone)]
struct Totals {
    counters: BTreeMap<String, f64>,
    files: std::collections::BTreeSet<String>,
    nprocs: u32,
    job_id: u64,
    exe: String,
    runtime: u64,
}

fn parse_lines(text: &str) -> Result<Totals, DarshanTextError> {
    let mut totals = Totals::default();
    for line in text.lines() {
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("# nprocs:") {
            totals.nprocs = rest.trim().parse().unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("# jobid:") {
            totals.job_id = rest.trim().parse().unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("# exe:") {
            totals.exe = rest.trim().to_owned();
        } else if let Some(rest) = line.strip_prefix("# run time:") {
            totals.runtime = rest.trim().parse().unwrap_or(0);
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        // module, rank, record id, counter, value, file name.
        if fields.len() < 6 {
            continue;
        }
        let counter = fields[3];
        let Ok(value) = fields[4].parse::<f64>() else {
            continue;
        };
        if counter.starts_with("POSIX_") || counter.starts_with("MPIIO_") {
            *totals.counters.entry(counter.to_owned()).or_insert(0.0) += value;
            totals.files.insert(fields[5].to_owned());
        }
    }
    if totals.counters.is_empty() {
        return Err(DarshanTextError("no counter lines found".into()));
    }
    Ok(totals)
}

/// Parse a `darshan-parser` dump into a benchmark knowledge object (the
/// same shape the binary-log ingester produces).
pub fn parse_darshan_text(text: &str) -> Result<Knowledge, DarshanTextError> {
    let totals = parse_lines(text)?;
    let get = |name: &str| totals.counters.get(name).copied().unwrap_or(0.0);
    let mut k = Knowledge::new(
        KnowledgeSource::Darshan,
        &format!("darshan:{} (job {})", totals.exe, totals.job_id),
    );
    k.pattern.api = "POSIX".to_owned();
    k.pattern.tasks = totals.nprocs;
    k.end_time = totals.runtime;

    let mut push = |operation: &str, bytes: f64, ops: f64, time: f64| {
        if ops <= 0.0 {
            return;
        }
        let bw = if time > 0.0 {
            bytes / (1024.0 * 1024.0) / time
        } else {
            0.0
        };
        k.summaries.push(OperationSummary {
            operation: operation.to_owned(),
            api: "POSIX".to_owned(),
            max_mib: bw,
            min_mib: bw,
            mean_mib: bw,
            stddev_mib: 0.0,
            mean_ops: if time > 0.0 { ops / time } else { 0.0 },
            iterations: 1,
        });
    };
    push(
        "write",
        get("POSIX_BYTES_WRITTEN"),
        get("POSIX_WRITES"),
        get("POSIX_F_WRITE_TIME"),
    );
    push(
        "read",
        get("POSIX_BYTES_READ"),
        get("POSIX_READS"),
        get("POSIX_F_READ_TIME"),
    );
    if k.summaries.is_empty() {
        return Err(DarshanTextError("no read or write activity".into()));
    }
    Ok(k)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_rendered_parser_output() {
        // Render text from our own binary-log writer and parse it back —
        // the two Darshan ingestion paths must agree.
        use iokc_darshan::{render_parser_output, LogBuilder, Module};
        let mut b = LogBuilder::new(321, 8, "ior", false);
        b.set_times(1000, 1120);
        b.open(Module::Posix, "/scratch/a", 0, 0.0, 0.1);
        b.transfer("/scratch/a", 0, true, 0, 256 << 20, 0.1, 2.1, None);
        b.transfer("/scratch/a", 0, false, 0, 128 << 20, 2.1, 3.1, None);
        b.close(Module::Posix, "/scratch/a", 0, 3.1, 3.2);
        let log = b.finish();
        let text = render_parser_output(&log);

        let from_text = parse_darshan_text(&text).unwrap();
        let from_binary = crate::ingest_darshan(&iokc_darshan::encode(&log)).unwrap();
        assert_eq!(from_text.pattern.tasks, from_binary.pattern.tasks);
        let text_write = from_text.summary("write").unwrap();
        let binary_write = from_binary.summary("write").unwrap();
        assert!((text_write.mean_mib - binary_write.mean_mib).abs() < 0.01);
        // 256 MiB over 2.0 s of write time.
        assert!((text_write.mean_mib - 128.0).abs() < 0.01);
        let text_read = from_text.summary("read").unwrap();
        assert!((text_read.mean_mib - 128.0).abs() < 0.01);
    }

    #[test]
    fn parses_hand_written_dump() {
        let dump = "\
# darshan log version: 3.41
# exe: ./simulation
# jobid: 555
# nprocs: 64
# run time: 300

#<module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>
POSIX\t-1\t42\tPOSIX_WRITES\t6400\t/scratch/out
POSIX\t-1\t42\tPOSIX_BYTES_WRITTEN\t6710886400\t/scratch/out
POSIX\t-1\t42\tPOSIX_F_WRITE_TIME\t25.5\t/scratch/out
";
        let k = parse_darshan_text(dump).unwrap();
        assert_eq!(k.pattern.tasks, 64);
        assert_eq!(k.end_time, 300);
        assert!(k.command.contains("./simulation"));
        assert!(k.command.contains("555"));
        let write = k.summary("write").unwrap();
        // 6400 MiB over 25.5 s ≈ 251 MiB/s.
        assert!((write.mean_mib - 6400.0 / 25.5).abs() < 0.01);
        assert!(k.summary("read").is_none());
    }

    #[test]
    fn rejects_non_darshan_text() {
        assert!(parse_darshan_text("hello world").is_err());
        assert!(parse_darshan_text("").is_err());
        // Counters present but no data activity.
        let dump = "POSIX\t0\t1\tPOSIX_OPENS\t5\t/f\n";
        assert!(parse_darshan_text(dump).is_err());
    }
}
