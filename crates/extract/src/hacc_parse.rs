//! Parser for HACC-IO summary output.

use iokc_core::model::{Knowledge, KnowledgeSource, OperationSummary};
use iokc_util::pattern::Pattern;

/// Error from parsing HACC-IO output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaccOutputError(pub String);

impl std::fmt::Display for HaccOutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable hacc-io output: {}", self.0)
    }
}

impl std::error::Error for HaccOutputError {}

/// Parse HACC-IO output into a knowledge object with `checkpoint` and
/// `restart` operation summaries (MiB/s).
pub fn parse_hacc_output(text: &str) -> Result<Knowledge, HaccOutputError> {
    let particles = Pattern::compile("Particles per rank : {n:d}")
        .expect("static pattern compiles")
        .first_match(text)
        .and_then(|(_, caps)| caps["n"].parse::<u64>().ok())
        .ok_or_else(|| HaccOutputError("missing particle count".into()))?;
    let ranks = Pattern::compile("Number of ranks : {n:d}")
        .expect("static pattern compiles")
        .first_match(text)
        .and_then(|(_, caps)| caps["n"].parse::<u32>().ok())
        .unwrap_or(0);
    let mode = Pattern::compile("File mode : {mode}")
        .expect("static pattern compiles")
        .first_match(text)
        .map(|(_, caps)| caps["mode"].clone())
        .unwrap_or_default();
    let api = Pattern::compile("API : {api}")
        .expect("static pattern compiles")
        .first_match(text)
        .map(|(_, caps)| caps["api"].clone())
        .unwrap_or_else(|| "POSIX".to_owned());

    let mut k = Knowledge::new(
        KnowledgeSource::Hacc,
        &format!("hacc_io -p {particles} --mode {mode}"),
    );
    k.pattern.api = api.clone();
    k.pattern.tasks = ranks;
    k.pattern.file_per_proc = mode == "file-per-process";
    k.pattern.block_size = particles * 38;

    let mut push = |operation: &str, bw: f64| {
        k.summaries.push(OperationSummary {
            operation: operation.to_owned(),
            api: api.clone(),
            max_mib: bw,
            min_mib: bw,
            mean_mib: bw,
            stddev_mib: 0.0,
            mean_ops: 0.0,
            iterations: 1,
        });
    };
    let ckpt = Pattern::compile("Aggregate Checkpoint Performance: {bw:f} MiB/s")
        .expect("static pattern compiles")
        .first_match(text)
        .and_then(|(_, caps)| caps["bw"].parse::<f64>().ok())
        .ok_or_else(|| HaccOutputError("missing checkpoint performance".into()))?;
    push("checkpoint", ckpt);
    if let Some((_, caps)) = Pattern::compile("Aggregate Restart Performance: {bw:f} MiB/s")
        .expect("static pattern compiles")
        .first_match(text)
    {
        push("restart", caps["bw"].parse().unwrap_or(0.0));
    }
    Ok(k)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_generated_output() {
        use iokc_benchmarks::hacc::{run_hacc, FileMode, HaccConfig};
        use iokc_sim::api::IoApi;
        use iokc_sim::prelude::*;
        let mut w = World::new(SystemConfig::test_small(), FaultPlan::none(), 41);
        let result = run_hacc(
            &mut w,
            JobLayout::new(2, 2),
            &HaccConfig::new(20_000, FileMode::FilePerProcess, IoApi::Posix, "/scratch/h"),
        )
        .unwrap();
        let k = parse_hacc_output(&result.render()).unwrap();
        assert_eq!(k.source, KnowledgeSource::Hacc);
        assert_eq!(k.pattern.tasks, 2);
        assert!(k.pattern.file_per_proc);
        assert_eq!(k.pattern.block_size, 20_000 * 38);
        assert!(k.summary("checkpoint").unwrap().mean_mib > 0.0);
        assert!(k.summary("restart").unwrap().mean_mib > 0.0);
    }

    #[test]
    fn restart_is_optional() {
        let text = "\
-------- HACC-IO --------
Number of ranks    : 8
Particles per rank : 1000
File mode          : single-shared-file
API                : MPIIO
Aggregate Checkpoint Performance: 512.25 MiB/s
";
        let k = parse_hacc_output(text).unwrap();
        assert_eq!(k.summaries.len(), 1);
        assert_eq!(k.summary("checkpoint").unwrap().mean_mib, 512.25);
        assert_eq!(k.pattern.api, "MPIIO");
    }

    #[test]
    fn rejects_missing_performance() {
        assert!(parse_hacc_output("Particles per rank : 5\n").is_err());
        assert!(parse_hacc_output("").is_err());
    }
}
