//! [`Extractor`] phase modules built from the parsers.
//!
//! §V-B: the knowledge extractor runs after generation, locates benchmark
//! outputs, and enriches the resulting knowledge objects with file-system
//! settings (BeeGFS entry info) and `/proc` system statistics. Artifacts
//! are associated by their `run` metadata key: auxiliary artifacts
//! (entry info, cpuinfo, meminfo) attach to the benchmark output that
//! carries the same `run` value; auxiliary artifacts without a `run` key
//! attach to every output.

use crate::beegfs::parse_entry_info;
use crate::darshan_ingest::ingest_darshan_lenient;
use crate::hacc_parse::parse_hacc_output;
use crate::io500_parse::parse_io500_output_lenient;
use crate::ior_parse::parse_ior_output_lenient;
use crate::lustre::parse_lfs_getstripe;
use crate::mdtest_parse::parse_mdtest_output;
use crate::procfs::{parse_cpuinfo, parse_meminfo};
use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{Knowledge, KnowledgeItem};
use iokc_core::phases::{Artifact, ArtifactKind, CycleError, Extractor, PhaseKind};

fn same_run(output: &Artifact, aux: &Artifact) -> bool {
    match (output.meta.get("run"), aux.meta.get("run")) {
        (_, None) => true,
        (Some(a), Some(b)) => a == b,
        (None, Some(_)) => false,
    }
}

/// Attach file-system and system info from auxiliary artifacts.
fn enrich(knowledge: &mut Knowledge, output: &Artifact, artifacts: &[&Artifact]) {
    let system_name = output
        .meta
        .get("system")
        .cloned()
        .unwrap_or_else(|| "unknown".to_owned());
    for aux in artifacts {
        if !same_run(output, aux) {
            continue;
        }
        match aux.kind {
            ArtifactKind::BeegfsEntryInfo => {
                if let Some(text) = aux.as_text() {
                    knowledge.filesystem = parse_entry_info(text);
                }
            }
            ArtifactKind::LustreStripeInfo => {
                if let Some(text) = aux.as_text() {
                    knowledge.filesystem = parse_lfs_getstripe(text);
                }
            }
            ArtifactKind::ProcCpuinfo => {
                if let Some(text) = aux.as_text() {
                    if let Some(info) = parse_cpuinfo(text, &system_name) {
                        let mem = knowledge.system.as_ref().map_or(0, |s| s.mem_kib);
                        knowledge.system = Some(iokc_core::model::SystemInfo {
                            mem_kib: mem,
                            ..info
                        });
                    }
                }
            }
            ArtifactKind::ProcMeminfo => {
                if let Some(text) = aux.as_text() {
                    if let Some(mem) = parse_meminfo(text) {
                        if let Some(sys) = &mut knowledge.system {
                            sys.mem_kib = mem;
                        } else {
                            knowledge.system = Some(iokc_core::model::SystemInfo {
                                system: system_name.clone(),
                                mem_kib: mem,
                                ..Default::default()
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(start) = output.meta.get("start_time").and_then(|v| v.parse().ok()) {
        knowledge.start_time = start;
    }
    if let Some(end) = output.meta.get("end_time").and_then(|v| v.parse().ok()) {
        knowledge.end_time = end;
    }
}

/// Extracts IOR outputs (plus attached BeeGFS/procfs artifacts).
#[derive(Debug, Default)]
pub struct IorExtractor;

impl Extractor for IorExtractor {
    fn name(&self) -> &str {
        "ior-extractor"
    }

    fn accepts(&self, artifact: &Artifact) -> bool {
        matches!(
            artifact.kind,
            ArtifactKind::IorOutput
                | ArtifactKind::BeegfsEntryInfo
                | ArtifactKind::LustreStripeInfo
                | ArtifactKind::ProcCpuinfo
                | ArtifactKind::ProcMeminfo
        )
    }

    fn extract(
        &self,
        _ctx: &mut PhaseCtx,
        artifacts: &[&Artifact],
    ) -> Result<Vec<KnowledgeItem>, CycleError> {
        let mut items = Vec::new();
        for output in artifacts
            .iter()
            .filter(|a| a.kind == ArtifactKind::IorOutput)
        {
            let text = output.as_text().ok_or_else(|| {
                CycleError::new(PhaseKind::Extraction, self.name(), "binary ior artifact")
            })?;
            // Lenient: a truncated output still yields a (partial)
            // knowledge object; only unrecognizable text is an error.
            let mut knowledge = parse_ior_output_lenient(text)
                .map_err(|e| CycleError::new(PhaseKind::Extraction, self.name(), e))?;
            enrich(&mut knowledge, output, artifacts);
            if let Some(parent) = output.meta.get("derived_from").and_then(|v| v.parse().ok()) {
                knowledge.derived_from = Some(parent);
            }
            items.push(KnowledgeItem::Benchmark(knowledge));
        }
        Ok(items)
    }
}

/// Extracts IO500 result blocks.
#[derive(Debug, Default)]
pub struct Io500Extractor;

impl Extractor for Io500Extractor {
    fn name(&self) -> &str {
        "io500-extractor"
    }

    fn accepts(&self, artifact: &Artifact) -> bool {
        matches!(
            artifact.kind,
            ArtifactKind::Io500Output | ArtifactKind::ProcCpuinfo | ArtifactKind::ProcMeminfo
        )
    }

    fn extract(
        &self,
        _ctx: &mut PhaseCtx,
        artifacts: &[&Artifact],
    ) -> Result<Vec<KnowledgeItem>, CycleError> {
        let mut items = Vec::new();
        for output in artifacts
            .iter()
            .filter(|a| a.kind == ArtifactKind::Io500Output)
        {
            let text = output.as_text().ok_or_else(|| {
                CycleError::new(PhaseKind::Extraction, self.name(), "binary io500 artifact")
            })?;
            let mut knowledge = parse_io500_output_lenient(text)
                .map_err(|e| CycleError::new(PhaseKind::Extraction, self.name(), e))?;
            if let Some(tasks) = output.meta.get("tasks").and_then(|v| v.parse().ok()) {
                knowledge.tasks = tasks;
            }
            if let Some(start) = output.meta.get("start_time").and_then(|v| v.parse().ok()) {
                knowledge.start_time = start;
            }
            for (key, value) in &output.meta {
                knowledge.options.insert(key.clone(), value.clone());
            }
            // System info from same-run procfs artifacts.
            let system_name = output
                .meta
                .get("system")
                .cloned()
                .unwrap_or_else(|| "unknown".to_owned());
            let cpu = artifacts
                .iter()
                .find(|a| a.kind == ArtifactKind::ProcCpuinfo && same_run(output, a));
            let mem = artifacts
                .iter()
                .find(|a| a.kind == ArtifactKind::ProcMeminfo && same_run(output, a));
            if let (Some(cpu), Some(mem)) =
                (cpu.and_then(|a| a.as_text()), mem.and_then(|a| a.as_text()))
            {
                knowledge.system = crate::procfs::parse_system_info(cpu, mem, &system_name);
            }
            items.push(KnowledgeItem::Io500(knowledge));
        }
        Ok(items)
    }
}

/// Extracts mdtest summaries.
#[derive(Debug, Default)]
pub struct MdtestExtractor;

impl Extractor for MdtestExtractor {
    fn name(&self) -> &str {
        "mdtest-extractor"
    }

    fn accepts(&self, artifact: &Artifact) -> bool {
        artifact.kind == ArtifactKind::MdtestOutput
    }

    fn extract(
        &self,
        _ctx: &mut PhaseCtx,
        artifacts: &[&Artifact],
    ) -> Result<Vec<KnowledgeItem>, CycleError> {
        artifacts
            .iter()
            .map(|output| {
                let text = output.as_text().ok_or_else(|| {
                    CycleError::new(PhaseKind::Extraction, self.name(), "binary mdtest artifact")
                })?;
                let mut knowledge = parse_mdtest_output(text)
                    .map_err(|e| CycleError::new(PhaseKind::Extraction, self.name(), e))?;
                enrich(&mut knowledge, output, artifacts);
                Ok(KnowledgeItem::Benchmark(knowledge))
            })
            .collect()
    }
}

/// Extracts HACC-IO summaries.
#[derive(Debug, Default)]
pub struct HaccExtractor;

impl Extractor for HaccExtractor {
    fn name(&self) -> &str {
        "hacc-extractor"
    }

    fn accepts(&self, artifact: &Artifact) -> bool {
        artifact.kind == ArtifactKind::HaccOutput
    }

    fn extract(
        &self,
        _ctx: &mut PhaseCtx,
        artifacts: &[&Artifact],
    ) -> Result<Vec<KnowledgeItem>, CycleError> {
        artifacts
            .iter()
            .map(|output| {
                let text = output.as_text().ok_or_else(|| {
                    CycleError::new(PhaseKind::Extraction, self.name(), "binary hacc artifact")
                })?;
                let mut knowledge = parse_hacc_output(text)
                    .map_err(|e| CycleError::new(PhaseKind::Extraction, self.name(), e))?;
                enrich(&mut knowledge, output, artifacts);
                Ok(KnowledgeItem::Benchmark(knowledge))
            })
            .collect()
    }
}

/// Extracts binary Darshan logs (the PyDarshan role).
#[derive(Debug, Default)]
pub struct DarshanExtractor;

impl Extractor for DarshanExtractor {
    fn name(&self) -> &str {
        "darshan-extractor"
    }

    fn accepts(&self, artifact: &Artifact) -> bool {
        artifact.kind == ArtifactKind::DarshanLog
    }

    fn extract(
        &self,
        _ctx: &mut PhaseCtx,
        artifacts: &[&Artifact],
    ) -> Result<Vec<KnowledgeItem>, CycleError> {
        artifacts
            .iter()
            .map(|output| {
                let bytes = output.as_binary().ok_or_else(|| {
                    CycleError::new(
                        PhaseKind::Extraction,
                        self.name(),
                        "textual darshan artifact",
                    )
                })?;
                // Lenient: whatever records survive a truncated or corrupt
                // log become a partial knowledge object with warnings.
                Ok(KnowledgeItem::Benchmark(ingest_darshan_lenient(bytes)))
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn test_ctx() -> PhaseCtx {
        PhaseCtx::detached(iokc_core::phases::PhaseKind::Extraction, "test")
    }

    const IOR_TEXT: &str = include_str!("testdata/ior_sample.txt");

    fn ior_artifact(run: &str) -> Artifact {
        Artifact::text(ArtifactKind::IorOutput, "stdout", IOR_TEXT.to_owned())
            .with_meta("run", run)
            .with_meta("system", "FUCHS-CSC")
            .with_meta("start_time", "1656590400")
            .with_meta("end_time", "1656590700")
    }

    fn entry_artifact(run: Option<&str>) -> Artifact {
        let text = "\
Entry type: file
EntryID: 7-AA-1
Metadata node: meta01 [ID: 1]
Stripe pattern details:
+ Type: RAID0
+ Chunksize: 512K
+ Number of storage targets: desired: 4; actual: 4
+ Storage Pool: 1 (Default)
";
        let a = Artifact::text(ArtifactKind::BeegfsEntryInfo, "entryinfo", text.to_owned());
        match run {
            Some(r) => a.with_meta("run", r),
            None => a,
        }
    }

    #[test]
    fn ior_extractor_enriches_with_same_run_aux() {
        let ior = ior_artifact("r1");
        let fs = entry_artifact(Some("r1"));
        let other_fs = entry_artifact(Some("r2"));
        let ex = IorExtractor;
        // Same run: attached.
        let items = ex.extract(&mut test_ctx(), &[&ior, &fs]).unwrap();
        let KnowledgeItem::Benchmark(k) = &items[0] else {
            panic!("wrong kind")
        };
        assert_eq!(k.filesystem.as_ref().unwrap().entry_id, "7-AA-1");
        assert_eq!(k.start_time, 1_656_590_400);
        // Different run: not attached.
        let items = ex.extract(&mut test_ctx(), &[&ior, &other_fs]).unwrap();
        let KnowledgeItem::Benchmark(k) = &items[0] else {
            panic!("wrong kind")
        };
        assert!(k.filesystem.is_none());
        // No run key on the aux: attaches everywhere.
        let global_fs = entry_artifact(None);
        let items = ex.extract(&mut test_ctx(), &[&ior, &global_fs]).unwrap();
        let KnowledgeItem::Benchmark(k) = &items[0] else {
            panic!("wrong kind")
        };
        assert!(k.filesystem.is_some());
    }

    #[test]
    fn lustre_stripe_info_enriches_too() {
        let ior = ior_artifact("r9");
        let lfs = Artifact::text(
            ArtifactKind::LustreStripeInfo,
            "getstripe",
            "/scratch/test80\nlmm_stripe_count:  4\nlmm_stripe_size:   1048576\nlmm_pattern:       raid0\nlmm_stripe_offset: 1\n"
                .to_owned(),
        )
        .with_meta("run", "r9");
        let items = IorExtractor
            .extract(&mut test_ctx(), &[&ior, &lfs])
            .unwrap();
        let KnowledgeItem::Benchmark(k) = &items[0] else {
            panic!("wrong kind")
        };
        let fs = k.filesystem.as_ref().unwrap();
        assert_eq!(fs.fs_type, "Lustre");
        assert_eq!(fs.storage_targets, 4);
    }

    #[test]
    fn ior_extractor_propagates_parse_errors() {
        let bad = Artifact::text(ArtifactKind::IorOutput, "stdout", "garbage".into());
        let err = IorExtractor.extract(&mut test_ctx(), &[&bad]).unwrap_err();
        assert_eq!(err.module, "ior-extractor");
        assert_eq!(err.phase, PhaseKind::Extraction);
    }

    #[test]
    fn derived_from_metadata_links_provenance() {
        let ior = ior_artifact("r1").with_meta("derived_from", "42");
        let items = IorExtractor.extract(&mut test_ctx(), &[&ior]).unwrap();
        let KnowledgeItem::Benchmark(k) = &items[0] else {
            panic!("wrong kind")
        };
        assert_eq!(k.derived_from, Some(42));
    }

    #[test]
    fn accepts_matrix() {
        let ior = IorExtractor;
        assert!(ior.accepts(&Artifact::text(ArtifactKind::IorOutput, "x", String::new())));
        assert!(ior.accepts(&Artifact::text(
            ArtifactKind::ProcCpuinfo,
            "x",
            String::new()
        )));
        assert!(!ior.accepts(&Artifact::text(
            ArtifactKind::MdtestOutput,
            "x",
            String::new()
        )));
        assert!(DarshanExtractor.accepts(&Artifact::binary(ArtifactKind::DarshanLog, "x", vec![])));
        assert!(!DarshanExtractor.accepts(&Artifact::text(
            ArtifactKind::IorOutput,
            "x",
            String::new()
        )));
    }
}
