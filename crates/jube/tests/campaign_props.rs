//! Property tests for campaign durability.
//!
//! The two invariants the campaign layer promises:
//!
//! 1. *Any* truncation of the journal — a crash can cut the file at any
//!    byte — leaves a resumable campaign that re-runs exactly the
//!    workpackages whose completion did not survive, and still converges
//!    to the same result table.
//! 2. A campaign that crashes after `k` workpackages and resumes
//!    produces result tables identical to an uninterrupted run,
//!    regardless of crash point or worker-pool width.

use iokc_jube::campaign::replay;
use iokc_jube::{
    journal_path, run_campaign, CampaignOptions, JubeConfig, StepFailure, StepOutcome,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const CONFIG: &str = "\
benchmark props
param a = 1, 2, 3
param b = 10, 20
step run = work -a $a -b $b -o out$wp
pattern v = value {v:f}
";

fn scratch(tag: &str, case: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iokc-props-{tag}-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic runner: output depends only on the workpackage params.
fn runner() -> impl FnMut(usize, &str, &str) -> Result<StepOutcome, StepFailure> {
    |_, _, command: &str| {
        let field = |flag: &str| -> f64 {
            command
                .split_whitespace()
                .skip_while(|t| *t != flag)
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0)
        };
        Ok(StepOutcome {
            output: format!("value {}\n", field("-a") * 100.0 + field("-b")),
            virtual_ms: 10,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_journal_resumes_rerunning_only_unfinished(frac in 0.0f64..1.0, case in 0usize..1_000_000) {
        let config = JubeConfig::parse(CONFIG).expect("valid config");
        let dir = scratch("truncate", case);

        // Reference: an uninterrupted campaign and its journal bytes.
        let reference =
            run_campaign(&config, &dir, &CampaignOptions::default(), runner).expect("reference");
        let reference_table = reference.workspace.result_table(&config).render();
        let path = journal_path(&dir);
        let full = std::fs::metadata(&path).expect("journal metadata").len();

        // Crash: cut the journal at an arbitrary byte offset.
        let keep = (frac * full as f64) as u64;
        iokc_store::persist::inject_torn_write(&path, keep).expect("torn write");
        let salvaged_done: BTreeSet<usize> =
            replay(&path).expect("replay").done.keys().copied().collect();

        // Resume: only workpackages whose completion was lost re-run.
        let executed = Mutex::new(BTreeSet::new());
        let resumed = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            let executed = &executed;
            move |wp: usize, step: &str, command: &str| {
                executed
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(wp);
                runner()(wp, step, command)
            }
        })
        .expect("resume");
        let executed = executed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let expected: BTreeSet<usize> =
            (0..6).filter(|wp| !salvaged_done.contains(wp)).collect();
        prop_assert_eq!(&executed, &expected, "keep={} of {}", keep, full);
        prop_assert!(resumed.summary.is_complete());
        prop_assert_eq!(resumed.summary.replayed, salvaged_done.len());
        prop_assert_eq!(
            resumed.workspace.result_table(&config).render(),
            reference_table.clone()
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn crash_at_k_plus_resume_equals_fresh_run(k in 0usize..7, width in 1usize..5, case in 0usize..1_000_000) {
        let config = JubeConfig::parse(CONFIG).expect("valid config");

        // Uninterrupted run.
        let dir_fresh = scratch("fresh", case);
        let fresh = run_campaign(&config, &dir_fresh, &CampaignOptions::default(), runner)
            .expect("fresh");
        let fresh_table = fresh.workspace.result_table(&config).render();

        // Crash after k completed workpackages, then resume.
        let dir_crash = scratch("crash", case);
        let abort = Arc::new(AtomicBool::new(false));
        let completed = AtomicUsize::new(0);
        let options = CampaignOptions {
            max_parallel: width,
            abort: Some(Arc::clone(&abort)),
            ..CampaignOptions::default()
        };
        let crashed = run_campaign(&config, &dir_crash, &options, || {
            let abort = Arc::clone(&abort);
            let completed = &completed;
            move |wp: usize, step: &str, command: &str| {
                let out = runner()(wp, step, command);
                if completed.fetch_add(1, Ordering::SeqCst) + 1 >= k {
                    abort.store(true, Ordering::SeqCst);
                }
                out
            }
        })
        .expect("crashed run");
        prop_assert!(crashed.aborted || crashed.summary.is_complete());

        let resumed = run_campaign(&config, &dir_crash, &CampaignOptions::default(), runner)
            .expect("resume");
        prop_assert!(resumed.summary.is_complete());
        prop_assert_eq!(
            resumed.workspace.result_table(&config).render(),
            fresh_table.clone()
        );
        std::fs::remove_dir_all(&dir_fresh).expect("cleanup");
        std::fs::remove_dir_all(&dir_crash).expect("cleanup");
    }
}
