//! The supervised campaign executor.
//!
//! [`crate::sweep::run_sweep_parallel`] fans workpackages out through
//! Rayon and aborts the whole sweep on the first error — fine for a
//! quick interactive study, wrong for an overnight campaign on flaky
//! hardware. This executor replaces the bare fan-out with a supervised
//! worker pool:
//!
//! * every state transition is journaled **before** the executor acts on
//!   it ([`crate::campaign`]), so a killed campaign resumes from the
//!   journal, re-running only unfinished workpackages;
//! * transient step failures are retried with the bounded, deterministic
//!   backoff of [`iokc_core::resilience::RetryPolicy`];
//! * repeatedly failing parameter combinations are quarantined instead
//!   of sinking the campaign; permanent failures with quarantine
//!   disabled trigger cooperative cancellation of all workers;
//! * each workpackage runs under a deadline measured in virtual time
//!   when the runner reports it (simulated worlds) and wall time
//!   otherwise;
//! * completed workpackages whose elapsed time exceeds the p95 of their
//!   completed peers are reported as stragglers.

use crate::campaign::{
    config_fingerprint, journal_path, replay, CampaignError, CampaignState, Record,
};
use crate::config::{substitute, JubeConfig};
use crate::sweep::{validate_combos, SweepError, Workpackage, Workspace};
use iokc_core::campaign::{CampaignSummary, StragglerReport};
use iokc_core::phases::{ErrorClass, PhaseKind};
use iokc_core::resilience::{retryable, RetryPolicy};
use iokc_obs::{Recorder, SpanHandle, SpanId, SpanStatus};
use iokc_store::journal::JournalWriter;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Minimum completed peers before straggler detection has a meaningful
/// p95 to compare against.
const STRAGGLER_MIN_PEERS: usize = 8;

/// A successful step execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// Captured stdout.
    pub output: String,
    /// Virtual milliseconds the step consumed in its simulated world
    /// (`0` when the runner has no virtual clock — the executor then
    /// falls back to wall time for deadlines).
    pub virtual_ms: u64,
}

impl StepOutcome {
    /// An outcome with no virtual-clock report.
    #[must_use]
    pub fn wall(output: String) -> StepOutcome {
        StepOutcome {
            output,
            virtual_ms: 0,
        }
    }
}

/// A failed step execution, classified for the retry taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepFailure {
    /// Cause.
    pub message: String,
    /// Transient failures are retried; permanent ones are quarantined
    /// (or, with quarantine disabled, cancel the campaign).
    pub class: ErrorClass,
}

impl StepFailure {
    /// A retryable failure.
    #[must_use]
    pub fn transient(message: impl Into<String>) -> StepFailure {
        StepFailure {
            message: message.into(),
            class: ErrorClass::Transient,
        }
    }

    /// A failure retries cannot fix (bad parameters, unparseable
    /// command).
    #[must_use]
    pub fn permanent(message: impl Into<String>) -> StepFailure {
        StepFailure {
            message: message.into(),
            class: ErrorClass::Permanent,
        }
    }

    /// The failure shape a killed worker produces: the process died
    /// mid-workpackage without output. Transient — the work itself may
    /// be fine on a healthy node.
    #[must_use]
    pub fn worker_crash() -> StepFailure {
        StepFailure::transient("worker crashed mid-workpackage")
    }
}

/// Knobs of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker-pool width (clamped to at least 1).
    pub max_parallel: usize,
    /// Per-workpackage deadline in milliseconds (virtual time when the
    /// runner reports it, wall time otherwise); `None` = unbounded.
    pub wp_deadline_ms: Option<u64>,
    /// Retry budget and backoff for transient step failures.
    pub retry: RetryPolicy,
    /// Cumulative failed attempts (journaled across resumes) after which
    /// a combination is quarantined. `0` disables quarantine: retry
    /// exhaustion and permanent failures then cancel the campaign.
    pub quarantine_threshold: u32,
    /// External abort switch: when set, workers stop claiming work and
    /// discard unjournaled results — the observable behaviour of the
    /// campaign process being killed, used by crash-resume tests.
    pub abort: Option<Arc<AtomicBool>>,
    /// Span/metric recorder. `None` (the default) records nothing. When
    /// set, the executor opens a `campaign` root span, one span per
    /// workpackage, and counts retries and quarantines; workpackage
    /// virtual time advances the recorder's clock, so span durations are
    /// simulated time whenever the runner reports it.
    pub recorder: Option<Arc<Recorder>>,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            max_parallel: 4,
            wp_deadline_ms: None,
            retry: RetryPolicy::with_retries(2),
            quarantine_threshold: 3,
            abort: None,
            recorder: None,
        }
    }
}

/// The outcome of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Completed workpackages (journal-replayed and freshly run), in id
    /// order. Quarantined and failed combinations are absent.
    pub workspace: Workspace,
    /// Aggregate accounting.
    pub summary: CampaignSummary,
    /// Quarantined combinations with their journaled reasons.
    pub quarantined: Vec<(usize, String)>,
    /// Completed workpackages conspicuously slower than their peers.
    pub stragglers: Vec<StragglerReport>,
    /// The abort switch fired; unfinished work remains journaled as
    /// resumable.
    pub aborted: bool,
    /// The journal had a torn tail (crash mid-append); the valid prefix
    /// was used.
    pub torn_tail: bool,
}

/// Lock a mutex, recovering from a poisoned lock (a panicked worker must
/// not wedge the supervisor).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared supervisor state, visible to every worker.
struct Shared<'a> {
    config: &'a JubeConfig,
    options: &'a CampaignOptions,
    combos: &'a [BTreeMap<String, String>],
    queue: Mutex<VecDeque<usize>>,
    journal: Mutex<JournalWriter>,
    /// Cooperative cancellation (fatal error somewhere in the pool).
    cancel: AtomicBool,
    fatal: Mutex<Option<CampaignError>>,
    /// Freshly completed workpackages: id → (wp, attempts, elapsed_ms).
    results: Mutex<BTreeMap<usize, (Workpackage, u32, u64)>>,
    quarantined: Mutex<BTreeMap<usize, String>>,
    failed: Mutex<BTreeSet<usize>>,
    /// Cumulative failed attempts per workpackage, seeded from the
    /// journal so quarantine thresholds span resumes.
    failures: Mutex<BTreeMap<usize, u32>>,
    retried_wps: AtomicUsize,
    /// The campaign root span (when a recorder is configured), parent of
    /// every workpackage span.
    root_span: Option<SpanId>,
}

impl Shared<'_> {
    fn aborted(&self) -> bool {
        self.options
            .abort
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    fn journal_append(&self, record: &Record) -> bool {
        let mut journal = lock(&self.journal);
        match journal.append(&record.encode()) {
            Ok(()) => true,
            Err(error) => {
                let mut fatal = lock(&self.fatal);
                fatal.get_or_insert(CampaignError::Io(error.to_string()));
                self.cancel.store(true, Ordering::SeqCst);
                false
            }
        }
    }

    fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.options.recorder.as_ref()
    }

    fn set_fatal(&self, error: SweepError) {
        let mut fatal = lock(&self.fatal);
        fatal.get_or_insert(CampaignError::Sweep(error));
        self.cancel.store(true, Ordering::SeqCst);
    }
}

/// Run (or resume) a campaign in `dir`.
///
/// The runner factory is invoked once per workpackage *attempt*, so each
/// attempt owns fresh state (e.g. its own simulated world) and a retry
/// never observes a crashed predecessor's half-mutated world. Campaign
/// state is journaled to `dir/campaign.journal`; calling `run_campaign`
/// again with the same directory and configuration resumes, replaying
/// completed workpackages from the journal instead of re-running them.
/// A journal written by a *different* configuration is rejected via
/// [`config_fingerprint`].
pub fn run_campaign<F, R>(
    config: &JubeConfig,
    dir: &Path,
    options: &CampaignOptions,
    runner_factory: F,
) -> Result<CampaignReport, CampaignError>
where
    F: Fn() -> R + Sync,
    R: FnMut(usize, &str, &str) -> Result<StepOutcome, StepFailure>,
{
    let combos = config.expand();
    let invalid = validate_combos(config, &combos);
    if !invalid.is_empty() {
        return Err(CampaignError::Sweep(SweepError::InvalidParams(invalid)));
    }

    std::fs::create_dir_all(dir)?;
    let path = journal_path(dir);
    // Salvage first: a crash can tear the last record, and the torn tail
    // has no newline — appending without truncating it would fuse the
    // next record onto the torn bytes and corrupt the rest of the file.
    let salvaged = iokc_store::journal::truncate_torn_tail(&path)?;
    let mut state = replay(&path)?;
    state.torn_tail = salvaged.torn_tail;
    let fingerprint = config_fingerprint(config);
    if let Some((_, journaled, _)) = &state.header {
        if *journaled != fingerprint {
            return Err(CampaignError::Mismatch {
                expected: fingerprint,
                found: *journaled,
            });
        }
    }

    let mut writer = JournalWriter::open(&path)?;
    if state.header.is_none() {
        writer.append(
            &Record::Campaign {
                benchmark: config.name.clone(),
                fingerprint,
                total: combos.len(),
            }
            .encode(),
        )?;
    }

    let pending: VecDeque<usize> = (0..combos.len())
        .filter(|wp| state.is_pending(*wp))
        .collect();
    let root = options
        .recorder
        .as_ref()
        .map(|recorder| recorder.start_span("campaign", None, None, Some(&config.name)));
    let shared = Shared {
        config,
        options,
        combos: &combos,
        queue: Mutex::new(pending),
        journal: Mutex::new(writer),
        cancel: AtomicBool::new(false),
        fatal: Mutex::new(None),
        results: Mutex::new(BTreeMap::new()),
        quarantined: Mutex::new(state.quarantined.clone().into_iter().collect()),
        failed: Mutex::new(BTreeSet::new()),
        failures: Mutex::new(state.failures.clone()),
        retried_wps: AtomicUsize::new(0),
        root_span: root.map(|handle| handle.id),
    };

    let workers = options
        .max_parallel
        .max(1)
        .min(lock(&shared.queue).len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&shared, &runner_factory));
        }
    });

    let fatal = lock(&shared.fatal).take();
    if let (Some(recorder), Some(handle)) = (options.recorder.as_ref(), root.as_ref()) {
        let status = if fatal.is_some() {
            SpanStatus::Failed
        } else if shared.aborted() {
            SpanStatus::Cancelled
        } else {
            SpanStatus::Ok
        };
        let dur_ns = recorder.end_span(handle, status);
        recorder.observe("iokc.campaign.ms", dur_ns as f64 / 1e6);
        recorder.counter("iokc.campaign.runs").inc();
    }
    if let Some(error) = fatal {
        return Err(error);
    }
    Ok(assemble_report(config, &state, &shared, &combos))
}

/// One worker: claim workpackages until the queue drains or the
/// campaign is cancelled/aborted.
fn worker_loop<F, R>(shared: &Shared<'_>, runner_factory: &F)
where
    F: Fn() -> R + Sync,
    R: FnMut(usize, &str, &str) -> Result<StepOutcome, StepFailure>,
{
    loop {
        if shared.cancel.load(Ordering::SeqCst) || shared.aborted() {
            return;
        }
        let Some(id) = lock(&shared.queue).pop_front() else {
            return;
        };
        if !shared.journal_append(&Record::Start { wp: id }) {
            return;
        }
        run_workpackage_supervised(shared, runner_factory, id);
    }
}

/// What one attempt of a workpackage produced.
enum Attempt {
    Done(Workpackage),
    Failed { step: String, failure: StepFailure },
    DeadlineExceeded { step: String, elapsed_ms: u64 },
    Discarded,
}

/// Drive one workpackage through its attempt loop: run, journal, retry,
/// quarantine or fail according to the campaign options.
fn run_workpackage_supervised<F, R>(shared: &Shared<'_>, runner_factory: &F, id: usize)
where
    F: Fn() -> R + Sync,
    R: FnMut(usize, &str, &str) -> Result<StepOutcome, StepFailure>,
{
    let options = shared.options;
    let span = shared.recorder().map(|recorder| {
        recorder.start_span(
            &format!("wp{id:06}"),
            shared.root_span,
            None,
            Some("workpackage"),
        )
    });
    let start = Instant::now();
    let mut virtual_ms = 0u64;
    let mut attempts_this_run = 0u32;
    let status = loop {
        attempts_this_run += 1;
        let attempt = run_one_attempt(shared, runner_factory, id, start, &mut virtual_ms);
        match attempt {
            Attempt::Discarded => break SpanStatus::Cancelled,
            Attempt::Done(wp) => {
                // A result that the abort switch raced is discarded
                // *before* journaling — exactly what a killed process
                // would leave behind.
                if shared.aborted() {
                    break SpanStatus::Cancelled;
                }
                let elapsed_ms = effective_elapsed(virtual_ms, start);
                let done = Record::Done {
                    wp: id,
                    attempts: attempts_this_run,
                    elapsed_ms,
                    commands: wp.commands.clone(),
                    outputs: wp.outputs.clone(),
                };
                if !shared.journal_append(&done) {
                    break SpanStatus::Failed;
                }
                if attempts_this_run > 1 {
                    shared.retried_wps.fetch_add(1, Ordering::SeqCst);
                }
                lock(&shared.results).insert(id, (wp, attempts_this_run, elapsed_ms));
                break SpanStatus::Ok;
            }
            Attempt::DeadlineExceeded { step, elapsed_ms } => {
                let deadline = options.wp_deadline_ms.unwrap_or(0);
                let cumulative = bump_failures(shared, id);
                let message = format!("deadline of {deadline} ms exceeded after {elapsed_ms} ms");
                if !shared.journal_append(&Record::Fail {
                    wp: id,
                    attempt: cumulative,
                    step,
                    class: ErrorClass::Transient,
                    message,
                }) {
                    break SpanStatus::Failed;
                }
                // Deadlines bound the whole attempt loop: no retry, but
                // repeat offenders still hit the quarantine threshold.
                if options.quarantine_threshold > 0 && cumulative >= options.quarantine_threshold {
                    quarantine(shared, id, cumulative);
                } else {
                    lock(&shared.failed).insert(id);
                }
                break SpanStatus::Failed;
            }
            Attempt::Failed { step, failure } => {
                let cumulative = bump_failures(shared, id);
                if !shared.journal_append(&Record::Fail {
                    wp: id,
                    attempt: cumulative,
                    step: step.clone(),
                    class: failure.class,
                    message: failure.message.clone(),
                }) {
                    break SpanStatus::Failed;
                }
                let threshold = options.quarantine_threshold;
                if failure.class == ErrorClass::Permanent {
                    if threshold > 0 {
                        let reason =
                            format!("permanent failure in step {step}: {}", failure.message);
                        if shared.journal_append(&Record::Quarantine {
                            wp: id,
                            reason: reason.clone(),
                        }) {
                            lock(&shared.quarantined).insert(id, reason);
                        }
                    } else {
                        shared.set_fatal(SweepError::Step {
                            workpackage: id,
                            params: shared.combos[id].clone(),
                            step,
                            message: failure.message,
                        });
                    }
                    break SpanStatus::Failed;
                }
                // Transient: quarantine repeat offenders, else retry
                // within budget, else mark failed (resumable).
                if threshold > 0 && cumulative >= threshold {
                    quarantine(shared, id, cumulative);
                    break SpanStatus::Failed;
                }
                if retryable(ErrorClass::Transient, attempts_this_run, &options.retry) {
                    // Backoff advances the virtual clock; deadlines see it.
                    virtual_ms += options.retry.delay_ms(
                        PhaseKind::Generation,
                        &format!("wp{id:06}"),
                        attempts_this_run + 1,
                    );
                    if let Some(recorder) = shared.recorder() {
                        recorder.counter("iokc.campaign.retries").inc();
                        recorder.log(
                            span.as_ref().map(|handle| handle.id),
                            &format!("wp{id:06} retrying after: {}", failure.message),
                        );
                    }
                    continue;
                }
                if threshold == 0 {
                    shared.set_fatal(SweepError::Step {
                        workpackage: id,
                        params: shared.combos[id].clone(),
                        step,
                        message: failure.message,
                    });
                } else {
                    lock(&shared.failed).insert(id);
                }
                break SpanStatus::Failed;
            }
        }
    };
    end_wp_span(shared, span, virtual_ms, status);
}

/// Close a workpackage span: advance the recorder's virtual clock by the
/// workpackage's simulated time (so span durations are virtual whenever
/// the runner reports a virtual clock) and record the latency histogram.
fn end_wp_span(shared: &Shared<'_>, span: Option<SpanHandle>, virtual_ms: u64, status: SpanStatus) {
    if let (Some(recorder), Some(handle)) = (shared.recorder(), span) {
        recorder.advance_ns(virtual_ms.saturating_mul(1_000_000));
        let dur_ns = recorder.end_span(&handle, status);
        recorder.observe("iokc.campaign.wp.ms", dur_ns as f64 / 1e6);
        if status == SpanStatus::Failed {
            recorder.counter("iokc.campaign.wp_failures").inc();
        }
    }
}

/// Execute every step of one attempt with a fresh runner.
fn run_one_attempt<F, R>(
    shared: &Shared<'_>,
    runner_factory: &F,
    id: usize,
    start: Instant,
    virtual_ms: &mut u64,
) -> Attempt
where
    F: Fn() -> R + Sync,
    R: FnMut(usize, &str, &str) -> Result<StepOutcome, StepFailure>,
{
    let mut runner = runner_factory();
    let mut wp = Workpackage {
        id,
        params: shared.combos[id].clone(),
        commands: Vec::new(),
        outputs: Vec::new(),
    };
    let mut values = wp.params.clone();
    values.insert("wp".to_owned(), format!("{id:06}"));
    for step in &shared.config.steps {
        if shared.aborted() {
            return Attempt::Discarded;
        }
        let command = substitute(&step.template, &values);
        match runner(id, &step.name, &command) {
            Ok(outcome) => {
                *virtual_ms += outcome.virtual_ms;
                wp.commands.push((step.name.clone(), command));
                wp.outputs.push((step.name.clone(), outcome.output));
                let elapsed_ms = effective_elapsed(*virtual_ms, start);
                if let Some(deadline) = shared.options.wp_deadline_ms {
                    if elapsed_ms > deadline {
                        return Attempt::DeadlineExceeded {
                            step: step.name.clone(),
                            elapsed_ms,
                        };
                    }
                }
            }
            Err(failure) => {
                return Attempt::Failed {
                    step: step.name.clone(),
                    failure,
                };
            }
        }
    }
    Attempt::Done(wp)
}

/// Elapsed time of a workpackage: the virtual clock when the runner
/// reports one, wall time otherwise.
fn effective_elapsed(virtual_ms: u64, start: Instant) -> u64 {
    if virtual_ms > 0 {
        virtual_ms
    } else {
        u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

fn bump_failures(shared: &Shared<'_>, id: usize) -> u32 {
    let mut failures = lock(&shared.failures);
    let count = failures.entry(id).or_insert(0);
    *count += 1;
    *count
}

fn quarantine(shared: &Shared<'_>, id: usize, cumulative: u32) {
    let reason = format!("failed {cumulative} attempt(s) across the campaign");
    if shared.journal_append(&Record::Quarantine {
        wp: id,
        reason: reason.clone(),
    }) {
        lock(&shared.quarantined).insert(id, reason);
    }
}

/// Merge journal-replayed and freshly run work into the final report.
fn assemble_report(
    config: &JubeConfig,
    state: &CampaignState,
    shared: &Shared<'_>,
    combos: &[BTreeMap<String, String>],
) -> CampaignReport {
    let results = lock(&shared.results);
    let quarantined_map = lock(&shared.quarantined);
    let failed = lock(&shared.failed);

    let mut workpackages = Vec::new();
    for (id, params) in combos.iter().enumerate() {
        if let Some(done) = state.done.get(&id) {
            workpackages.push(done.to_workpackage(id, params.clone()));
        } else if let Some((wp, _, _)) = results.get(&id) {
            workpackages.push(wp.clone());
        }
    }

    // Straggler detection over what completed *this* run: with enough
    // peers, flag everything strictly above the p95 elapsed time.
    let elapsed: Vec<f64> = results.values().map(|(_, _, ms)| *ms as f64).collect();
    let mut stragglers = Vec::new();
    if elapsed.len() >= STRAGGLER_MIN_PEERS {
        let p95 = iokc_util::stats::percentile(&elapsed, 0.95);
        for (id, (_, _, ms)) in results.iter() {
            if (*ms as f64) > p95 {
                stragglers.push(StragglerReport {
                    id: *id,
                    elapsed_ms: *ms,
                    p95_ms: p95.round() as u64,
                });
            }
        }
    }

    let completed = workpackages.len();
    let summary = CampaignSummary {
        total: combos.len(),
        completed,
        replayed: state.done.len(),
        retried: shared.retried_wps.load(Ordering::SeqCst),
        quarantined: quarantined_map.len(),
        failed: failed.len(),
        cancelled: combos
            .len()
            .saturating_sub(completed)
            .saturating_sub(quarantined_map.len())
            .saturating_sub(failed.len()),
    };
    CampaignReport {
        workspace: Workspace {
            benchmark: config.name.clone(),
            workpackages,
        },
        summary,
        quarantined: quarantined_map
            .iter()
            .map(|(id, reason)| (*id, reason.clone()))
            .collect(),
        stragglers,
        aborted: shared.aborted(),
        torn_tail: state.torn_tail,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    const CONFIG: &str = "\
benchmark demo
param n = 1, 2, 3, 4
step run = work -n $n -o out$wp
pattern value = result {v:f}
";

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iokc-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ok_runner() -> impl FnMut(usize, &str, &str) -> Result<StepOutcome, StepFailure> {
        |_, _, command: &str| {
            let n: f64 = command
                .split_whitespace()
                .nth(2)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| StepFailure::permanent("bad command"))?;
            Ok(StepOutcome {
                output: format!("result {}\n", n * 10.0),
                virtual_ms: 100,
            })
        }
    }

    #[test]
    fn fresh_campaign_completes_and_matches_sweep() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("fresh");
        let report = run_campaign(&config, &dir, &CampaignOptions::default(), ok_runner).unwrap();
        assert!(report.summary.is_complete());
        assert_eq!(report.summary.completed, 4);
        assert_eq!(report.summary.replayed, 0);
        assert!(!report.aborted);
        let series = report.workspace.metric_series(&config, "value");
        assert_eq!(series.len(), 4);
        assert_eq!(series[1].1, 20.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_replays_done_work_without_rerunning() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("resume");
        let first = run_campaign(&config, &dir, &CampaignOptions::default(), ok_runner).unwrap();
        let ran = AtomicUsize::new(0);
        let second = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            ran.fetch_add(1, Ordering::SeqCst);
            ok_runner()
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "nothing re-ran");
        assert_eq!(second.summary.replayed, 4);
        assert_eq!(
            second.workspace.result_table(&config).render(),
            first.workspace.result_table(&config).render()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("mismatch");
        run_campaign(&config, &dir, &CampaignOptions::default(), ok_runner).unwrap();
        let other =
            JubeConfig::parse("benchmark demo\nparam n = 9\nstep run = work -n $n -o out$wp\n")
                .unwrap();
        let err = run_campaign(&other, &dir, &CampaignOptions::default(), ok_runner).unwrap_err();
        assert!(matches!(err, CampaignError::Mismatch { .. }), "{err}");
        assert!(err.to_string().contains("different configuration"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_failures_are_retried_then_succeed() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("retry");
        // Workpackage 2 fails its first two attempts, then succeeds.
        let crashes = Mutex::new(BTreeMap::<usize, u32>::new());
        let options = CampaignOptions {
            retry: RetryPolicy::with_retries(3),
            ..CampaignOptions::default()
        };
        let report = run_campaign(&config, &dir, &options, || {
            |id: usize, step: &str, command: &str| {
                if id == 2 && step == "run" {
                    let mut crashes = lock(&crashes);
                    let seen = crashes.entry(id).or_insert(0);
                    if *seen < 2 {
                        *seen += 1;
                        return Err(StepFailure::worker_crash());
                    }
                }
                ok_runner()(id, step, command)
            }
        })
        .unwrap();
        assert!(report.summary.is_complete());
        assert_eq!(report.summary.retried, 1);
        assert_eq!(report.workspace.metric_series(&config, "value").len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permanent_failure_is_quarantined_not_fatal() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("quarantine");
        let report = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            |id: usize, step: &str, command: &str| {
                if id == 1 {
                    return Err(StepFailure::permanent("unparseable flags"));
                }
                ok_runner()(id, step, command)
            }
        })
        .unwrap();
        assert!(report.summary.is_complete(), "{}", report.summary);
        assert_eq!(report.summary.quarantined, 1);
        assert_eq!(report.quarantined[0].0, 1);
        assert!(report.quarantined[0].1.contains("unparseable flags"));
        assert_eq!(report.workspace.workpackages.len(), 3);
        // Resume keeps the quarantine decision.
        let ran = AtomicUsize::new(0);
        let resumed = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            ran.fetch_add(1, Ordering::SeqCst);
            ok_runner()
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(resumed.summary.quarantined, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_transient_failures_hit_the_quarantine_threshold() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("threshold");
        let options = CampaignOptions {
            retry: RetryPolicy::with_retries(1),
            quarantine_threshold: 3,
            ..CampaignOptions::default()
        };
        // Workpackage 0 always fails transiently. Run 1: attempts 1+2
        // journaled (below threshold) → failed/resumable. Run 2: the
        // third cumulative failure crosses the threshold → quarantined.
        let always_fail = || {
            |id: usize, step: &str, command: &str| {
                if id == 0 {
                    return Err(StepFailure::transient("flaky node"));
                }
                ok_runner()(id, step, command)
            }
        };
        let first = run_campaign(&config, &dir, &options, always_fail).unwrap();
        assert_eq!(first.summary.failed, 1);
        assert_eq!(first.summary.quarantined, 0);
        assert!(!first.summary.is_complete());
        let second = run_campaign(&config, &dir, &options, always_fail).unwrap();
        assert_eq!(second.summary.quarantined, 1, "{}", second.summary);
        assert!(second.summary.is_complete(), "quarantine is terminal");
        assert!(second.quarantined[0].1.contains("3 attempt(s)"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_disabled_makes_permanent_failures_fatal() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("fatal");
        let options = CampaignOptions {
            quarantine_threshold: 0,
            ..CampaignOptions::default()
        };
        let err = run_campaign(&config, &dir, &options, || {
            |id: usize, step: &str, command: &str| {
                if id == 3 {
                    return Err(StepFailure::permanent("bad combination"));
                }
                ok_runner()(id, step, command)
            }
        })
        .unwrap_err();
        let CampaignError::Sweep(sweep) = &err else {
            panic!("expected sweep error, got {err:?}");
        };
        assert_eq!(sweep.workpackage(), Some(3));
        assert!(err.to_string().contains("bad combination"));
        // The journal still holds the completed work: a resume with
        // quarantine enabled finishes the campaign.
        let recovered =
            run_campaign(&config, &dir, &CampaignOptions::default(), ok_runner).unwrap();
        assert!(recovered.summary.is_complete());
        assert!(recovered.summary.replayed >= 1, "{}", recovered.summary);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn virtual_deadline_fails_slow_workpackages() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let dir = scratch("deadline");
        let options = CampaignOptions {
            wp_deadline_ms: Some(500),
            quarantine_threshold: 0,
            retry: RetryPolicy::none(),
            ..CampaignOptions::default()
        };
        // Workpackage 2 reports 10x the virtual time of its peers.
        let report = run_campaign(&config, &dir, &options, || {
            |id: usize, step: &str, command: &str| {
                let mut outcome = ok_runner()(id, step, command)?;
                if id == 2 {
                    outcome.virtual_ms = 1_000;
                }
                Ok(outcome)
            }
        })
        .unwrap();
        assert_eq!(report.summary.failed, 1, "{}", report.summary);
        assert_eq!(report.summary.completed, 3);
        assert!(!report.summary.is_complete());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stragglers_are_reported_against_the_p95() {
        let config = JubeConfig::parse(
            "benchmark wide\nparam n = 1,2,3,4,5,6,7,8,9,10,11,12\nstep run = work -n $n\n",
        )
        .unwrap();
        let dir = scratch("straggler");
        let report = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            |id: usize, _: &str, _: &str| {
                Ok(StepOutcome {
                    output: String::new(),
                    virtual_ms: if id == 7 { 5_000 } else { 100 },
                })
            }
        })
        .unwrap();
        assert_eq!(report.stragglers.len(), 1);
        assert_eq!(report.stragglers[0].id, 7);
        assert_eq!(report.stragglers[0].elapsed_ms, 5_000);
        assert!(report.stragglers[0].p95_ms < 5_000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_discards_inflight_work_and_resume_finishes() {
        let config =
            JubeConfig::parse("benchmark wide\nparam n = 1,2,3,4,5,6,7,8\nstep run = work -n $n\n")
                .unwrap();
        let dir = scratch("abort");
        let abort = Arc::new(AtomicBool::new(false));
        let done_before_abort = AtomicU64::new(0);
        let options = CampaignOptions {
            max_parallel: 2,
            abort: Some(Arc::clone(&abort)),
            ..CampaignOptions::default()
        };
        let report = run_campaign(&config, &dir, &options, || {
            let abort = Arc::clone(&abort);
            let done = &done_before_abort;
            move |_: usize, _: &str, _: &str| {
                if done.fetch_add(1, Ordering::SeqCst) + 1 >= 3 {
                    abort.store(true, Ordering::SeqCst);
                }
                Ok(StepOutcome::wall("out".to_owned()))
            }
        })
        .unwrap();
        assert!(report.aborted);
        assert!(!report.summary.is_complete());
        let finished = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            |_: usize, _: &str, _: &str| Ok(StepOutcome::wall("out".to_owned()))
        })
        .unwrap();
        assert!(finished.summary.is_complete(), "{}", finished.summary);
        assert_eq!(finished.summary.total, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
