//! JUBE-style benchmark configuration.
//!
//! The real JUBE uses XML; this reimplementation keeps the same concepts
//! (parameter sets, substitution, steps, result patterns) in a line-based
//! format that the usage phase can generate mechanically (§V-E1):
//!
//! ```text
//! benchmark ior-scaling
//! param tasks = 20, 40, 80
//! param xfer = 1m, 2m
//! step run = ior -a mpiio -t $xfer -b 4m -o /scratch/t$tasks
//! pattern write_bw = Max Write: {bw:f} MiB/sec
//! ```

use iokc_util::pattern::Pattern;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed configuration.
#[derive(Debug, Clone)]
pub struct JubeConfig {
    /// Benchmark name.
    pub name: String,
    /// Parameter sets in declaration order: name → values.
    pub params: Vec<(String, Vec<String>)>,
    /// Steps in declaration order.
    pub steps: Vec<Step>,
    /// Result-extraction patterns: metric name → pattern.
    pub patterns: Vec<(String, Pattern)>,
}

/// One execution step.
#[derive(Debug, Clone)]
pub struct Step {
    /// Step name.
    pub name: String,
    /// Name of the step this one depends on, if any.
    pub after: Option<String>,
    /// Command template with `$param` placeholders.
    pub template: String,
}

/// Configuration parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jube config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl JubeConfig {
    /// Parse the line-based format. `#` starts a comment; blank lines are
    /// skipped.
    pub fn parse(text: &str) -> Result<JubeConfig, ConfigError> {
        let mut name = String::new();
        let mut params: Vec<(String, Vec<String>)> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut patterns: Vec<(String, Pattern)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| ConfigError {
                line: line_no,
                message,
            };
            if let Some(rest) = line.strip_prefix("benchmark ") {
                name = rest.trim().to_owned();
            } else if let Some(rest) = line.strip_prefix("param ") {
                let (pname, values) = rest
                    .split_once('=')
                    .ok_or_else(|| err("param needs `name = v1, v2`".into()))?;
                let pname = pname.trim().to_owned();
                if pname.is_empty() || !pname.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    return Err(err(format!("bad parameter name `{pname}`")));
                }
                if params.iter().any(|(n, _)| *n == pname) {
                    return Err(err(format!("duplicate parameter `{pname}`")));
                }
                let values: Vec<String> = values
                    .split(',')
                    .map(|v| v.trim().to_owned())
                    .filter(|v| !v.is_empty())
                    .collect();
                if values.is_empty() {
                    return Err(err(format!("parameter `{pname}` has no values")));
                }
                params.push((pname, values));
            } else if let Some(rest) = line.strip_prefix("step ") {
                let (head, template) = rest
                    .split_once('=')
                    .ok_or_else(|| err("step needs `name [after dep] = command`".into()))?;
                let head_tokens: Vec<&str> = head.split_whitespace().collect();
                let (sname, after) = match head_tokens.as_slice() {
                    [sname] => ((*sname).to_owned(), None),
                    [sname, "after", dep] => ((*sname).to_owned(), Some((*dep).to_owned())),
                    _ => return Err(err("step header must be `name` or `name after dep`".into())),
                };
                if let Some(dep) = &after {
                    if !steps.iter().any(|s| s.name == *dep) {
                        return Err(err(format!("step `{sname}` depends on unknown `{dep}`")));
                    }
                }
                steps.push(Step {
                    name: sname,
                    after,
                    template: template.trim().to_owned(),
                });
            } else if let Some(rest) = line.strip_prefix("pattern ") {
                let (pname, source) = rest
                    .split_once('=')
                    .ok_or_else(|| err("pattern needs `name = pattern`".into()))?;
                let compiled = Pattern::compile(source.trim())
                    .map_err(|e| err(format!("pattern `{}`: {e}", pname.trim())))?;
                patterns.push((pname.trim().to_owned(), compiled));
            } else {
                return Err(err(format!("unrecognised directive: {line}")));
            }
        }
        if steps.is_empty() {
            return Err(ConfigError {
                line: 0,
                message: "no steps defined".into(),
            });
        }
        if name.is_empty() {
            name = "benchmark".to_owned();
        }
        Ok(JubeConfig {
            name,
            params,
            steps,
            patterns,
        })
    }

    /// All parameter combinations (Cartesian product, declaration order;
    /// one empty combination when there are no parameters).
    #[must_use]
    pub fn expand(&self) -> Vec<BTreeMap<String, String>> {
        let mut combos: Vec<BTreeMap<String, String>> = vec![BTreeMap::new()];
        for (pname, values) in &self.params {
            let mut next = Vec::with_capacity(combos.len() * values.len());
            for combo in &combos {
                for value in values {
                    let mut extended = combo.clone();
                    extended.insert(pname.clone(), value.clone());
                    next.push(extended);
                }
            }
            combos = next;
        }
        combos
    }
}

/// Substitute `$name` placeholders (longest-name-first so `$tasks` wins
/// over `$t`).
#[must_use]
pub fn substitute(template: &str, values: &BTreeMap<String, String>) -> String {
    let mut names: Vec<&String> = values.keys().collect();
    names.sort_by_key(|n| std::cmp::Reverse(n.len()));
    let mut out = template.to_owned();
    for name in names {
        out = out.replace(&format!("${name}"), &values[name]);
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# IOR scaling study
benchmark ior-scaling
param tasks = 20, 40, 80
param xfer = 1m, 2m

step run = ior -a mpiio -t $xfer -b 4m -o /scratch/t$tasks
step verify after run = echo done $tasks
pattern write_bw = Max Write: {bw:f} MiB/sec
";

    #[test]
    fn parses_all_directives() {
        let config = JubeConfig::parse(SAMPLE).unwrap();
        assert_eq!(config.name, "ior-scaling");
        assert_eq!(config.params.len(), 2);
        assert_eq!(config.params[0].0, "tasks");
        assert_eq!(config.params[0].1, vec!["20", "40", "80"]);
        assert_eq!(config.steps.len(), 2);
        assert_eq!(config.steps[1].after.as_deref(), Some("run"));
        assert_eq!(config.patterns.len(), 1);
    }

    #[test]
    fn cartesian_expansion() {
        let config = JubeConfig::parse(SAMPLE).unwrap();
        let combos = config.expand();
        assert_eq!(combos.len(), 6);
        // Declaration order: tasks varies slowest.
        assert_eq!(combos[0]["tasks"], "20");
        assert_eq!(combos[0]["xfer"], "1m");
        assert_eq!(combos[1]["xfer"], "2m");
        assert_eq!(combos[5]["tasks"], "80");
    }

    #[test]
    fn substitution_prefers_longest_name() {
        let values = BTreeMap::from([
            ("t".to_owned(), "WRONG".to_owned()),
            ("tasks".to_owned(), "80".to_owned()),
        ]);
        assert_eq!(substitute("run -n $tasks", &values), "run -n 80");
    }

    #[test]
    fn no_params_yields_single_combo() {
        let config = JubeConfig::parse("step run = hostname\n").unwrap();
        assert_eq!(config.expand().len(), 1);
        assert_eq!(config.name, "benchmark");
    }

    #[test]
    fn parse_errors_are_located() {
        let err = JubeConfig::parse("param = 1\nstep run = x\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = JubeConfig::parse("param a = \nstep run = x\n").unwrap_err();
        assert!(err.message.contains("no values"));
        let err = JubeConfig::parse("junk\n").unwrap_err();
        assert!(err.message.contains("unrecognised"));
        let err = JubeConfig::parse("step b after ghost = x\n").unwrap_err();
        assert!(err.message.contains("unknown"));
        let err = JubeConfig::parse("param a = 1\nparam a = 2\nstep run = x\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
        assert!(JubeConfig::parse("benchmark x\n").is_err(), "no steps");
        let err = JubeConfig::parse("pattern p = {bad:q}\nstep r = x\n").unwrap_err();
        assert!(err.message.contains("pattern"));
    }
}
