//! Workpackage execution and result tables.
//!
//! JUBE "creates a subdirectory for each benchmark iteration and stores
//! the corresponding output" (§V-A). Here a [`Workspace`] holds the run
//! tree — numbered workpackages with their parameter values, executed
//! commands and captured outputs — and result tables are extracted with
//! the declared patterns. Independent workpackages can run in parallel
//! via Rayon (each gets its own simulated world from the runner factory).

use crate::config::{substitute, JubeConfig};
use iokc_util::table::TextTable;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// One expanded parameter combination with its execution record.
#[derive(Debug, Clone)]
pub struct Workpackage {
    /// Zero-based id (JUBE's `wp` number, the subdirectory name).
    pub id: usize,
    /// Parameter values of this combination.
    pub params: BTreeMap<String, String>,
    /// Executed commands, in step order: (step name, concrete command).
    pub commands: Vec<(String, String)>,
    /// Captured output per step, in step order.
    pub outputs: Vec<(String, String)>,
}

/// A parameter combination whose step commands cannot be fully
/// substituted (a `$name` placeholder survives because no parameter —
/// and not the implicit `wp` — defines it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCombo {
    /// Workpackage id of the combination.
    pub workpackage: usize,
    /// The parameter values of the combination.
    pub params: BTreeMap<String, String>,
    /// The first step whose template leaves placeholders unresolved.
    pub step: String,
    /// The unresolved placeholder names.
    pub unresolved: Vec<String>,
}

impl fmt::Display for InvalidCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workpackage {:06} step {} leaves ${} unresolved [{}]",
            self.workpackage,
            self.step,
            self.unresolved.join(", $"),
            params_display(&self.params)
        )
    }
}

/// Execution error for a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// One workpackage's step failed at run time.
    Step {
        /// Failing workpackage id.
        workpackage: usize,
        /// Parameter values of the failing combination, so the failure
        /// is diagnosable from the one-line `Display` alone.
        params: BTreeMap<String, String>,
        /// Failing step.
        step: String,
        /// Runner-reported cause.
        message: String,
    },
    /// Parameter substitution failed before anything ran. Every invalid
    /// combination is listed, not just the first.
    InvalidParams(Vec<InvalidCombo>),
}

impl SweepError {
    /// The failing workpackage id, for step failures.
    #[must_use]
    pub fn workpackage(&self) -> Option<usize> {
        match self {
            SweepError::Step { workpackage, .. } => Some(*workpackage),
            SweepError::InvalidParams(_) => None,
        }
    }

    /// The failing step name, for step failures.
    #[must_use]
    pub fn step(&self) -> Option<&str> {
        match self {
            SweepError::Step { step, .. } => Some(step),
            SweepError::InvalidParams(_) => None,
        }
    }
}

/// Render a parameter map as `name=value` pairs for one-line errors.
fn params_display(params: &BTreeMap<String, String>) -> String {
    params
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<String>>()
        .join(", ")
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Step {
                workpackage,
                params,
                step,
                message,
            } => write!(
                f,
                "workpackage {workpackage:06} step {step}: {message} [{}]",
                params_display(params)
            ),
            SweepError::InvalidParams(combos) => {
                write!(
                    f,
                    "{} parameter combination(s) failed substitution: ",
                    combos.len()
                )?;
                for (i, combo) in combos.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{combo}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Validate every expanded combination before any runner is built:
/// substitute each step template and collect the combinations that still
/// contain `$name` placeholders. Returns every invalid combination at
/// once, so one sweep failure reports the whole extent of a config bug.
#[must_use]
pub fn validate_combos(
    config: &JubeConfig,
    combos: &[BTreeMap<String, String>],
) -> Vec<InvalidCombo> {
    let mut invalid = Vec::new();
    for (id, params) in combos.iter().enumerate() {
        let mut values = params.clone();
        values.insert("wp".to_owned(), format!("{id:06}"));
        for step in &config.steps {
            let command = substitute(&step.template, &values);
            let unresolved = unresolved_placeholders(&command);
            if !unresolved.is_empty() {
                invalid.push(InvalidCombo {
                    workpackage: id,
                    params: params.clone(),
                    step: step.name.clone(),
                    unresolved,
                });
                break; // one entry per combination is enough
            }
        }
    }
    invalid
}

/// `$name` placeholders remaining in a substituted command.
fn unresolved_placeholders(command: &str) -> Vec<String> {
    let bytes = command.as_bytes();
    let mut names = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' {
            let start = i + 1;
            let mut end = start;
            while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
                end += 1;
            }
            if end > start {
                let name = command[start..end].to_owned();
                if !names.contains(&name) {
                    names.push(name);
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    names
}

/// A completed sweep: the benchmark name and every workpackage.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Benchmark name from the configuration.
    pub benchmark: String,
    /// All workpackages in id order.
    pub workpackages: Vec<Workpackage>,
}

impl Workspace {
    /// JUBE-style run-tree listing (`<bench>/000000/run_stdout` …).
    #[must_use]
    pub fn tree(&self) -> Vec<String> {
        let mut paths = Vec::new();
        for wp in &self.workpackages {
            for (step, _) in &wp.outputs {
                paths.push(format!("{}/{:06}/{step}_stdout", self.benchmark, wp.id));
            }
        }
        paths
    }

    /// Write the run tree to disk exactly as JUBE does: one numbered
    /// directory per workpackage holding a `<step>_stdout` file per step
    /// plus a `configuration.txt` with the parameter values and the
    /// executed commands. Returns the created root directory.
    pub fn materialize(&self, root: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let bench_root = root.join(&self.benchmark);
        for wp in &self.workpackages {
            let dir = bench_root.join(format!("{:06}", wp.id));
            std::fs::create_dir_all(&dir)?;
            let mut configuration = String::new();
            for (name, value) in &wp.params {
                configuration.push_str(&format!("{name} = {value}\n"));
            }
            for (step, command) in &wp.commands {
                configuration.push_str(&format!("step {step}: {command}\n"));
            }
            std::fs::write(dir.join("configuration.txt"), configuration)?;
            for (step, output) in &wp.outputs {
                std::fs::write(dir.join(format!("{step}_stdout")), output)?;
            }
        }
        Ok(bench_root)
    }

    /// Extract the declared patterns from every workpackage's outputs and
    /// build the result table: one row per workpackage, parameter columns
    /// first, then one column per metric (first match wins; empty when a
    /// pattern never matched).
    #[must_use]
    pub fn result_table(&self, config: &JubeConfig) -> TextTable {
        let param_names: Vec<&str> = config.params.iter().map(|(n, _)| n.as_str()).collect();
        let metric_names: Vec<&str> = config.patterns.iter().map(|(n, _)| n.as_str()).collect();
        let mut header: Vec<String> = vec!["wp".to_owned()];
        header.extend(param_names.iter().map(|n| (*n).to_owned()));
        header.extend(metric_names.iter().map(|n| (*n).to_owned()));
        let mut table = TextTable::new(header);
        for wp in &self.workpackages {
            let mut row = vec![format!("{:06}", wp.id)];
            for pname in &param_names {
                row.push(wp.params.get(*pname).cloned().unwrap_or_default());
            }
            let combined: String = wp
                .outputs
                .iter()
                .map(|(_, out)| out.as_str())
                .collect::<Vec<&str>>()
                .join("\n");
            for (metric, pattern) in &config.patterns {
                let value = pattern
                    .first_match(&combined)
                    .and_then(|(_, caps)| caps.values().next().cloned())
                    .unwrap_or_default();
                let _ = metric;
                row.push(value);
            }
            table.push_row(row);
        }
        table
    }

    /// Extract one numeric metric across workpackages: (params, value).
    #[must_use]
    pub fn metric_series(
        &self,
        config: &JubeConfig,
        metric: &str,
    ) -> Vec<(BTreeMap<String, String>, f64)> {
        let Some((_, pattern)) = config.patterns.iter().find(|(n, _)| n == metric) else {
            return Vec::new();
        };
        self.workpackages
            .iter()
            .filter_map(|wp| {
                let combined: String = wp
                    .outputs
                    .iter()
                    .map(|(_, out)| out.as_str())
                    .collect::<Vec<&str>>()
                    .join("\n");
                let (_, caps) = pattern.first_match(&combined)?;
                let value: f64 = caps.values().next()?.parse().ok()?;
                Some((wp.params.clone(), value))
            })
            .collect()
    }
}

/// Execute a configuration sequentially. The runner receives the
/// workpackage id, the step name and the concrete command, and returns
/// the captured output.
pub fn run_sweep<F>(config: &JubeConfig, mut runner: F) -> Result<Workspace, SweepError>
where
    F: FnMut(usize, &str, &str) -> Result<String, String>,
{
    let combos = config.expand();
    let invalid = validate_combos(config, &combos);
    if !invalid.is_empty() {
        return Err(SweepError::InvalidParams(invalid));
    }
    let mut workpackages = Vec::with_capacity(combos.len());
    for (id, params) in combos.into_iter().enumerate() {
        workpackages.push(run_workpackage(config, id, params, &mut runner)?);
    }
    Ok(Workspace {
        benchmark: config.name.clone(),
        workpackages,
    })
}

/// Execute a configuration with workpackages in parallel (Rayon). The
/// runner factory is called once per workpackage so each parallel lane
/// owns its state (e.g. its own simulated world).
///
/// Every combination is validated up front: the runner factory is never
/// invoked when any combination fails substitution, and *all* invalid
/// combinations are reported at once. For durable, supervised execution
/// (journal, retries, quarantine, resume) use
/// [`crate::executor::run_campaign`] instead.
pub fn run_sweep_parallel<F, R>(
    config: &JubeConfig,
    runner_factory: F,
) -> Result<Workspace, SweepError>
where
    F: Fn() -> R + Sync,
    R: FnMut(usize, &str, &str) -> Result<String, String>,
{
    let combos = config.expand();
    let invalid = validate_combos(config, &combos);
    if !invalid.is_empty() {
        return Err(SweepError::InvalidParams(invalid));
    }
    let results: Result<Vec<Workpackage>, SweepError> = combos
        .into_par_iter()
        .enumerate()
        .map(|(id, params)| {
            let mut runner = runner_factory();
            run_workpackage(config, id, params, &mut runner)
        })
        .collect();
    Ok(Workspace {
        benchmark: config.name.clone(),
        workpackages: results?,
    })
}

fn run_workpackage<F>(
    config: &JubeConfig,
    id: usize,
    params: BTreeMap<String, String>,
    runner: &mut F,
) -> Result<Workpackage, SweepError>
where
    F: FnMut(usize, &str, &str) -> Result<String, String>,
{
    let mut wp = Workpackage {
        id,
        params,
        commands: Vec::new(),
        outputs: Vec::new(),
    };
    // Make the workpackage id available for substitution (unique paths).
    let mut values = wp.params.clone();
    values.insert("wp".to_owned(), format!("{id:06}"));
    for step in &config.steps {
        let command = substitute(&step.template, &values);
        let output = runner(id, &step.name, &command).map_err(|message| SweepError::Step {
            workpackage: id,
            params: wp.params.clone(),
            step: step.name.clone(),
            message,
        })?;
        wp.commands.push((step.name.clone(), command));
        wp.outputs.push((step.name.clone(), output));
    }
    Ok(wp)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::JubeConfig;

    const CONFIG: &str = "\
benchmark demo
param n = 1, 2, 3
step run = work -n $n -o out$wp
pattern value = result {v:f}
";

    fn fake_runner(_: usize, _: &str, command: &str) -> Result<String, String> {
        // "work -n K ..." → result K*10
        let n: f64 = command
            .split_whitespace()
            .nth(2)
            .and_then(|v| v.parse().ok())
            .ok_or("bad command")?;
        Ok(format!("header\nresult {}\n", n * 10.0))
    }

    #[test]
    fn sequential_sweep_runs_all_workpackages() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let workspace = run_sweep(&config, fake_runner).unwrap();
        assert_eq!(workspace.workpackages.len(), 3);
        assert_eq!(
            workspace.workpackages[0].commands[0].1,
            "work -n 1 -o out000000"
        );
        assert_eq!(
            workspace.workpackages[2].commands[0].1,
            "work -n 3 -o out000002"
        );
        let tree = workspace.tree();
        assert_eq!(tree[0], "demo/000000/run_stdout");
    }

    #[test]
    fn result_table_extracts_metrics() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let workspace = run_sweep(&config, fake_runner).unwrap();
        let table = workspace.result_table(&config);
        let rendered = table.render();
        assert!(rendered.contains("wp"));
        assert!(rendered.contains("value"));
        assert!(rendered.contains("30"));
        let series = workspace.metric_series(&config, "value");
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].1, 20.0);
        assert!(workspace.metric_series(&config, "ghost").is_empty());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let sequential = run_sweep(&config, fake_runner).unwrap();
        let parallel = run_sweep_parallel(&config, || fake_runner).unwrap();
        let seq_series = sequential.metric_series(&config, "value");
        let par_series = parallel.metric_series(&config, "value");
        assert_eq!(seq_series, par_series);
    }

    #[test]
    fn step_failure_is_reported_with_location_and_params() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let err = run_sweep(&config, |id, _, _| {
            if id == 1 {
                Err("boom".to_owned())
            } else {
                Ok("result 1\n".to_owned())
            }
        })
        .unwrap_err();
        assert_eq!(err.workpackage(), Some(1));
        assert_eq!(err.step(), Some("run"));
        let line = err.to_string();
        assert!(line.contains("boom"), "{line}");
        // The failing combination's parameter map is in the one-liner.
        assert!(line.contains("n=2"), "{line}");
        // And SweepError is a real std error.
        let as_std: &dyn std::error::Error = &err;
        assert!(as_std.to_string().contains("workpackage 000001"));
    }

    #[test]
    fn invalid_substitutions_are_reported_all_at_once() {
        // `$ghost` is never defined; `$m` only for some combos? No — all
        // combos miss both, so every combination is invalid. The runner
        // factory must never run.
        let config = JubeConfig::parse(
            "benchmark bad\nparam n = 1, 2, 3\nstep run = work -n $n -x $ghost\n",
        )
        .unwrap();
        let ran = std::sync::atomic::AtomicUsize::new(0);
        let err = run_sweep_parallel(&config, || {
            ran.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            |_: usize, _: &str, _: &str| Ok(String::new())
        })
        .unwrap_err();
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 0);
        let SweepError::InvalidParams(combos) = &err else {
            panic!("expected InvalidParams, got {err:?}");
        };
        assert_eq!(combos.len(), 3, "every invalid combination is listed");
        assert_eq!(combos[0].unresolved, vec!["ghost".to_owned()]);
        let line = err.to_string();
        assert!(line.contains("3 parameter combination(s)"), "{line}");
        assert!(line.contains("$ghost"), "{line}");
        assert!(line.contains("n=2"), "{line}");
        // Sequential sweeps validate identically.
        assert!(matches!(
            run_sweep(&config, |_, _, _| Ok(String::new())),
            Err(SweepError::InvalidParams(_))
        ));
    }

    #[test]
    fn validate_combos_accepts_wp_and_defined_params() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let combos = config.expand();
        assert!(validate_combos(&config, &combos).is_empty());
        // A literal `$` not followed by an identifier is not a placeholder.
        let config = JubeConfig::parse("step run = echo 5$ and $n\nparam n = 1\n").unwrap();
        let combos = config.expand();
        assert!(validate_combos(&config, &combos).is_empty());
    }

    #[test]
    fn materialize_writes_the_jube_tree() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let workspace = run_sweep(&config, fake_runner).unwrap();
        let root = std::env::temp_dir().join("iokc-jube-materialize");
        let _ = std::fs::remove_dir_all(&root);
        let bench_root = workspace.materialize(&root).unwrap();
        assert!(bench_root.ends_with("demo"));
        for wp in 0..3 {
            let dir = bench_root.join(format!("{wp:06}"));
            let stdout = std::fs::read_to_string(dir.join("run_stdout")).unwrap();
            assert!(stdout.contains("result"));
            let configuration = std::fs::read_to_string(dir.join("configuration.txt")).unwrap();
            assert!(configuration.contains("n = "));
            assert!(configuration.contains("step run: work -n"));
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dependent_steps_execute_in_order() {
        let config =
            JubeConfig::parse("step first = alpha\nstep second after first = beta\n").unwrap();
        let mut order = Vec::new();
        let workspace = run_sweep(&config, |_, step, _| {
            order.push(step.to_owned());
            Ok(String::new())
        })
        .unwrap();
        assert_eq!(order, vec!["first", "second"]);
        assert_eq!(workspace.workpackages[0].outputs.len(), 2);
    }
}
