//! Workpackage execution and result tables.
//!
//! JUBE "creates a subdirectory for each benchmark iteration and stores
//! the corresponding output" (§V-A). Here a [`Workspace`] holds the run
//! tree — numbered workpackages with their parameter values, executed
//! commands and captured outputs — and result tables are extracted with
//! the declared patterns. Independent workpackages can run in parallel
//! via Rayon (each gets its own simulated world from the runner factory).

use crate::config::{substitute, JubeConfig};
use iokc_util::table::TextTable;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// One expanded parameter combination with its execution record.
#[derive(Debug, Clone)]
pub struct Workpackage {
    /// Zero-based id (JUBE's `wp` number, the subdirectory name).
    pub id: usize,
    /// Parameter values of this combination.
    pub params: BTreeMap<String, String>,
    /// Executed commands, in step order: (step name, concrete command).
    pub commands: Vec<(String, String)>,
    /// Captured output per step, in step order.
    pub outputs: Vec<(String, String)>,
}

/// Execution error for one workpackage.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepError {
    /// Failing workpackage id.
    pub workpackage: usize,
    /// Failing step.
    pub step: String,
    /// Runner-reported cause.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workpackage {:06} step {}: {}",
            self.workpackage, self.step, self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// A completed sweep: the benchmark name and every workpackage.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Benchmark name from the configuration.
    pub benchmark: String,
    /// All workpackages in id order.
    pub workpackages: Vec<Workpackage>,
}

impl Workspace {
    /// JUBE-style run-tree listing (`<bench>/000000/run_stdout` …).
    #[must_use]
    pub fn tree(&self) -> Vec<String> {
        let mut paths = Vec::new();
        for wp in &self.workpackages {
            for (step, _) in &wp.outputs {
                paths.push(format!("{}/{:06}/{step}_stdout", self.benchmark, wp.id));
            }
        }
        paths
    }

    /// Write the run tree to disk exactly as JUBE does: one numbered
    /// directory per workpackage holding a `<step>_stdout` file per step
    /// plus a `configuration.txt` with the parameter values and the
    /// executed commands. Returns the created root directory.
    pub fn materialize(&self, root: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let bench_root = root.join(&self.benchmark);
        for wp in &self.workpackages {
            let dir = bench_root.join(format!("{:06}", wp.id));
            std::fs::create_dir_all(&dir)?;
            let mut configuration = String::new();
            for (name, value) in &wp.params {
                configuration.push_str(&format!("{name} = {value}\n"));
            }
            for (step, command) in &wp.commands {
                configuration.push_str(&format!("step {step}: {command}\n"));
            }
            std::fs::write(dir.join("configuration.txt"), configuration)?;
            for (step, output) in &wp.outputs {
                std::fs::write(dir.join(format!("{step}_stdout")), output)?;
            }
        }
        Ok(bench_root)
    }

    /// Extract the declared patterns from every workpackage's outputs and
    /// build the result table: one row per workpackage, parameter columns
    /// first, then one column per metric (first match wins; empty when a
    /// pattern never matched).
    #[must_use]
    pub fn result_table(&self, config: &JubeConfig) -> TextTable {
        let param_names: Vec<&str> = config.params.iter().map(|(n, _)| n.as_str()).collect();
        let metric_names: Vec<&str> = config.patterns.iter().map(|(n, _)| n.as_str()).collect();
        let mut header: Vec<String> = vec!["wp".to_owned()];
        header.extend(param_names.iter().map(|n| (*n).to_owned()));
        header.extend(metric_names.iter().map(|n| (*n).to_owned()));
        let mut table = TextTable::new(header);
        for wp in &self.workpackages {
            let mut row = vec![format!("{:06}", wp.id)];
            for pname in &param_names {
                row.push(wp.params.get(*pname).cloned().unwrap_or_default());
            }
            let combined: String = wp
                .outputs
                .iter()
                .map(|(_, out)| out.as_str())
                .collect::<Vec<&str>>()
                .join("\n");
            for (metric, pattern) in &config.patterns {
                let value = pattern
                    .first_match(&combined)
                    .and_then(|(_, caps)| caps.values().next().cloned())
                    .unwrap_or_default();
                let _ = metric;
                row.push(value);
            }
            table.push_row(row);
        }
        table
    }

    /// Extract one numeric metric across workpackages: (params, value).
    #[must_use]
    pub fn metric_series(
        &self,
        config: &JubeConfig,
        metric: &str,
    ) -> Vec<(BTreeMap<String, String>, f64)> {
        let Some((_, pattern)) = config.patterns.iter().find(|(n, _)| n == metric) else {
            return Vec::new();
        };
        self.workpackages
            .iter()
            .filter_map(|wp| {
                let combined: String = wp
                    .outputs
                    .iter()
                    .map(|(_, out)| out.as_str())
                    .collect::<Vec<&str>>()
                    .join("\n");
                let (_, caps) = pattern.first_match(&combined)?;
                let value: f64 = caps.values().next()?.parse().ok()?;
                Some((wp.params.clone(), value))
            })
            .collect()
    }
}

/// Execute a configuration sequentially. The runner receives the
/// workpackage id, the step name and the concrete command, and returns
/// the captured output.
pub fn run_sweep<F>(config: &JubeConfig, mut runner: F) -> Result<Workspace, SweepError>
where
    F: FnMut(usize, &str, &str) -> Result<String, String>,
{
    let combos = config.expand();
    let mut workpackages = Vec::with_capacity(combos.len());
    for (id, params) in combos.into_iter().enumerate() {
        workpackages.push(run_workpackage(config, id, params, &mut runner)?);
    }
    Ok(Workspace {
        benchmark: config.name.clone(),
        workpackages,
    })
}

/// Execute a configuration with workpackages in parallel (Rayon). The
/// runner factory is called once per workpackage so each parallel lane
/// owns its state (e.g. its own simulated world).
pub fn run_sweep_parallel<F, R>(
    config: &JubeConfig,
    runner_factory: F,
) -> Result<Workspace, SweepError>
where
    F: Fn() -> R + Sync,
    R: FnMut(usize, &str, &str) -> Result<String, String>,
{
    let combos = config.expand();
    let results: Result<Vec<Workpackage>, SweepError> = combos
        .into_par_iter()
        .enumerate()
        .map(|(id, params)| {
            let mut runner = runner_factory();
            run_workpackage(config, id, params, &mut runner)
        })
        .collect();
    Ok(Workspace {
        benchmark: config.name.clone(),
        workpackages: results?,
    })
}

fn run_workpackage<F>(
    config: &JubeConfig,
    id: usize,
    params: BTreeMap<String, String>,
    runner: &mut F,
) -> Result<Workpackage, SweepError>
where
    F: FnMut(usize, &str, &str) -> Result<String, String>,
{
    let mut wp = Workpackage {
        id,
        params,
        commands: Vec::new(),
        outputs: Vec::new(),
    };
    // Make the workpackage id available for substitution (unique paths).
    let mut values = wp.params.clone();
    values.insert("wp".to_owned(), format!("{id:06}"));
    for step in &config.steps {
        let command = substitute(&step.template, &values);
        let output = runner(id, &step.name, &command).map_err(|message| SweepError {
            workpackage: id,
            step: step.name.clone(),
            message,
        })?;
        wp.commands.push((step.name.clone(), command));
        wp.outputs.push((step.name.clone(), output));
    }
    Ok(wp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JubeConfig;

    const CONFIG: &str = "\
benchmark demo
param n = 1, 2, 3
step run = work -n $n -o out$wp
pattern value = result {v:f}
";

    fn fake_runner(_: usize, _: &str, command: &str) -> Result<String, String> {
        // "work -n K ..." → result K*10
        let n: f64 = command
            .split_whitespace()
            .nth(2)
            .and_then(|v| v.parse().ok())
            .ok_or("bad command")?;
        Ok(format!("header\nresult {}\n", n * 10.0))
    }

    #[test]
    fn sequential_sweep_runs_all_workpackages() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let workspace = run_sweep(&config, fake_runner).unwrap();
        assert_eq!(workspace.workpackages.len(), 3);
        assert_eq!(
            workspace.workpackages[0].commands[0].1,
            "work -n 1 -o out000000"
        );
        assert_eq!(
            workspace.workpackages[2].commands[0].1,
            "work -n 3 -o out000002"
        );
        let tree = workspace.tree();
        assert_eq!(tree[0], "demo/000000/run_stdout");
    }

    #[test]
    fn result_table_extracts_metrics() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let workspace = run_sweep(&config, fake_runner).unwrap();
        let table = workspace.result_table(&config);
        let rendered = table.render();
        assert!(rendered.contains("wp"));
        assert!(rendered.contains("value"));
        assert!(rendered.contains("30"));
        let series = workspace.metric_series(&config, "value");
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].1, 20.0);
        assert!(workspace.metric_series(&config, "ghost").is_empty());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let sequential = run_sweep(&config, fake_runner).unwrap();
        let parallel = run_sweep_parallel(&config, || fake_runner).unwrap();
        let seq_series = sequential.metric_series(&config, "value");
        let par_series = parallel.metric_series(&config, "value");
        assert_eq!(seq_series, par_series);
    }

    #[test]
    fn step_failure_is_reported_with_location() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let err = run_sweep(&config, |id, _, _| {
            if id == 1 {
                Err("boom".to_owned())
            } else {
                Ok("result 1\n".to_owned())
            }
        })
        .unwrap_err();
        assert_eq!(err.workpackage, 1);
        assert_eq!(err.step, "run");
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn materialize_writes_the_jube_tree() {
        let config = JubeConfig::parse(CONFIG).unwrap();
        let workspace = run_sweep(&config, fake_runner).unwrap();
        let root = std::env::temp_dir().join("iokc-jube-materialize");
        let _ = std::fs::remove_dir_all(&root);
        let bench_root = workspace.materialize(&root).unwrap();
        assert!(bench_root.ends_with("demo"));
        for wp in 0..3 {
            let dir = bench_root.join(format!("{wp:06}"));
            let stdout = std::fs::read_to_string(dir.join("run_stdout")).unwrap();
            assert!(stdout.contains("result"));
            let configuration = std::fs::read_to_string(dir.join("configuration.txt")).unwrap();
            assert!(configuration.contains("n = "));
            assert!(configuration.contains("step run: work -n"));
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dependent_steps_execute_in_order() {
        let config =
            JubeConfig::parse("step first = alpha\nstep second after first = beta\n").unwrap();
        let mut order = Vec::new();
        let workspace = run_sweep(&config, |_, step, _| {
            order.push(step.to_owned());
            Ok(String::new())
        })
        .unwrap();
        assert_eq!(order, vec!["first", "second"]);
        assert_eq!(workspace.workpackages[0].outputs.len(), 2);
    }
}
