//! Durable campaign state: the write-ahead journal and its replay.
//!
//! A *campaign* is one sweep's worth of workpackages executed under the
//! supervised executor ([`crate::executor`]). Every state transition —
//! started, done (with captured outputs), failed, quarantined — is
//! appended to a checksummed journal (`campaign.journal` in the campaign
//! directory, via [`iokc_store::journal`]) *before* the executor acts on
//! it. A crashed or killed campaign therefore loses at most the work in
//! flight: resuming replays the journal, rebuilds every completed
//! workpackage from its `done` record without re-running it, keeps
//! quarantine decisions, and re-enqueues everything else.
//!
//! The journal opens with a header naming the benchmark and a
//! fingerprint of the configuration (parameters, steps, patterns), so a
//! resume against a *different* configuration is rejected instead of
//! silently mixing two campaigns' results.

use crate::config::JubeConfig;
use crate::sweep::Workpackage;
use iokc_core::phases::ErrorClass;
use iokc_util::json::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// File name of the journal inside a campaign directory.
pub const JOURNAL_FILE: &str = "campaign.journal";

/// File name of the configuration copy inside a campaign directory
/// (written on the first run so `--resume <dir>` needs no config path).
pub const CONFIG_FILE: &str = "config.jube";

/// The journal path inside a campaign directory.
#[must_use]
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// A deterministic fingerprint of everything that defines the sweep's
/// shape: benchmark name, parameters and their values, step names,
/// dependencies and templates, and pattern names. Two configs with the
/// same fingerprint expand to the same workpackages.
#[must_use]
pub fn config_fingerprint(config: &JubeConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |text: &str| {
        for b in text.bytes().chain([0xffu8]) {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&config.name);
    for (name, values) in &config.params {
        eat(name);
        for value in values {
            eat(value);
        }
    }
    for step in &config.steps {
        eat(&step.name);
        eat(step.after.as_deref().unwrap_or(""));
        eat(&step.template);
    }
    for (name, _) in &config.patterns {
        eat(name);
    }
    hash
}

/// One journal record: a campaign state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Journal header, written once when the campaign directory is
    /// created.
    Campaign {
        /// Benchmark name.
        benchmark: String,
        /// [`config_fingerprint`] of the configuration.
        fingerprint: u64,
        /// Total workpackage count.
        total: usize,
    },
    /// A worker claimed the workpackage. A `Start` without a later
    /// terminal record marks work that was in flight when the process
    /// died — it is re-enqueued on resume.
    Start {
        /// Workpackage id.
        wp: usize,
    },
    /// The workpackage completed; commands and outputs are captured so
    /// a resume rebuilds it without re-running.
    Done {
        /// Workpackage id.
        wp: usize,
        /// Attempts spent in the run that completed it.
        attempts: u32,
        /// Elapsed time (virtual when the runner reports it, wall
        /// otherwise), in milliseconds.
        elapsed_ms: u64,
        /// Executed commands, in step order.
        commands: Vec<(String, String)>,
        /// Captured outputs, in step order.
        outputs: Vec<(String, String)>,
    },
    /// One attempt failed.
    Fail {
        /// Workpackage id.
        wp: usize,
        /// Cumulative failed attempts for this workpackage (across
        /// resumes).
        attempt: u32,
        /// Failing step.
        step: String,
        /// Error classification.
        class: ErrorClass,
        /// Cause.
        message: String,
    },
    /// The workpackage was quarantined: it stays skipped on every
    /// resume and is reported, so one bad parameter combination cannot
    /// sink the campaign.
    Quarantine {
        /// Workpackage id.
        wp: usize,
        /// Why.
        reason: String,
    },
}

impl Record {
    /// Encode as a compact (single-line) JSON payload.
    #[must_use]
    pub fn encode(&self) -> String {
        let json = match self {
            Record::Campaign {
                benchmark,
                fingerprint,
                total,
            } => Json::obj(vec![
                ("rec", Json::from("campaign")),
                ("benchmark", Json::from(benchmark.as_str())),
                (
                    "fingerprint",
                    Json::from(format!("{fingerprint:016x}").as_str()),
                ),
                ("total", Json::from(*total as u64)),
            ]),
            Record::Start { wp } => Json::obj(vec![
                ("rec", Json::from("start")),
                ("wp", Json::from(*wp as u64)),
            ]),
            Record::Done {
                wp,
                attempts,
                elapsed_ms,
                commands,
                outputs,
            } => Json::obj(vec![
                ("rec", Json::from("done")),
                ("wp", Json::from(*wp as u64)),
                ("attempts", Json::from(u64::from(*attempts))),
                ("elapsed_ms", Json::from(*elapsed_ms)),
                ("commands", pairs_to_json(commands)),
                ("outputs", pairs_to_json(outputs)),
            ]),
            Record::Fail {
                wp,
                attempt,
                step,
                class,
                message,
            } => Json::obj(vec![
                ("rec", Json::from("fail")),
                ("wp", Json::from(*wp as u64)),
                ("attempt", Json::from(u64::from(*attempt))),
                ("step", Json::from(step.as_str())),
                ("class", Json::from(class.as_str())),
                ("message", Json::from(message.as_str())),
            ]),
            Record::Quarantine { wp, reason } => Json::obj(vec![
                ("rec", Json::from("quarantine")),
                ("wp", Json::from(*wp as u64)),
                ("reason", Json::from(reason.as_str())),
            ]),
        };
        json.to_compact()
    }

    /// Decode a journal payload. Unknown record kinds and malformed
    /// payloads decode to `None` (skipped on replay, for forward
    /// compatibility).
    #[must_use]
    pub fn decode(payload: &str) -> Option<Record> {
        let json = iokc_util::json::parse(payload).ok()?;
        let wp_of = |json: &Json| json.get("wp").and_then(Json::as_u64).map(|v| v as usize);
        match json.get("rec").and_then(Json::as_str)? {
            "campaign" => Some(Record::Campaign {
                benchmark: json.get("benchmark").and_then(Json::as_str)?.to_owned(),
                fingerprint: u64::from_str_radix(
                    json.get("fingerprint").and_then(Json::as_str)?,
                    16,
                )
                .ok()?,
                total: json.get("total").and_then(Json::as_u64)? as usize,
            }),
            "start" => Some(Record::Start { wp: wp_of(&json)? }),
            "done" => Some(Record::Done {
                wp: wp_of(&json)?,
                attempts: json.get("attempts").and_then(Json::as_u64)? as u32,
                elapsed_ms: json.get("elapsed_ms").and_then(Json::as_u64)?,
                commands: pairs_from_json(json.get("commands")?)?,
                outputs: pairs_from_json(json.get("outputs")?)?,
            }),
            "fail" => Some(Record::Fail {
                wp: wp_of(&json)?,
                attempt: json.get("attempt").and_then(Json::as_u64)? as u32,
                step: json.get("step").and_then(Json::as_str)?.to_owned(),
                class: match json.get("class").and_then(Json::as_str)? {
                    "transient" => ErrorClass::Transient,
                    _ => ErrorClass::Permanent,
                },
                message: json.get("message").and_then(Json::as_str)?.to_owned(),
            }),
            "quarantine" => Some(Record::Quarantine {
                wp: wp_of(&json)?,
                reason: json.get("reason").and_then(Json::as_str)?.to_owned(),
            }),
            _ => None,
        }
    }
}

fn pairs_to_json(pairs: &[(String, String)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|(a, b)| Json::Arr(vec![Json::from(a.as_str()), Json::from(b.as_str())]))
            .collect(),
    )
}

fn pairs_from_json(json: &Json) -> Option<Vec<(String, String)>> {
    json.as_arr()?
        .iter()
        .map(|pair| {
            Some((
                pair.at(0)?.as_str()?.to_owned(),
                pair.at(1)?.as_str()?.to_owned(),
            ))
        })
        .collect()
}

/// A completed workpackage recovered from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneRecord {
    /// Attempts spent in the run that completed it.
    pub attempts: u32,
    /// Elapsed milliseconds (virtual or wall).
    pub elapsed_ms: u64,
    /// Executed commands, in step order.
    pub commands: Vec<(String, String)>,
    /// Captured outputs, in step order.
    pub outputs: Vec<(String, String)>,
}

impl DoneRecord {
    /// Rebuild the workpackage this record captured.
    #[must_use]
    pub fn to_workpackage(&self, id: usize, params: BTreeMap<String, String>) -> Workpackage {
        Workpackage {
            id,
            params,
            commands: self.commands.clone(),
            outputs: self.outputs.clone(),
        }
    }
}

/// The replayed state of a campaign journal.
#[derive(Debug, Clone, Default)]
pub struct CampaignState {
    /// Header, when the journal has one.
    pub header: Option<(String, u64, usize)>,
    /// Completed workpackages with their captured outputs.
    pub done: BTreeMap<usize, DoneRecord>,
    /// Quarantined workpackages with the recorded reason.
    pub quarantined: BTreeMap<usize, String>,
    /// Cumulative failed attempts per workpackage.
    pub failures: BTreeMap<usize, u32>,
    /// Workpackages with a `Start` record (in flight or finished).
    pub started: BTreeSet<usize>,
    /// The journal ended in a torn record (the crash tore a write); the
    /// valid prefix was used.
    pub torn_tail: bool,
}

impl CampaignState {
    /// Workpackages a resume must re-run: started (in flight at the
    /// crash) or never started, and neither done nor quarantined.
    #[must_use]
    pub fn is_pending(&self, wp: usize) -> bool {
        !self.done.contains_key(&wp) && !self.quarantined.contains_key(&wp)
    }
}

/// Error opening or validating a campaign directory.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// Journal or directory I/O failed.
    Io(String),
    /// The journal belongs to a different configuration.
    Mismatch {
        /// Fingerprint of the configuration being run.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
    /// The sweep itself failed (invalid parameter combinations up
    /// front, or a fatal workpackage failure with quarantine disabled).
    Sweep(crate::sweep::SweepError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(message) => write!(f, "campaign journal I/O: {message}"),
            CampaignError::Mismatch { expected, found } => write!(
                f,
                "campaign directory belongs to a different configuration \
                 (journal fingerprint {found:016x}, config fingerprint {expected:016x})"
            ),
            CampaignError::Sweep(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<crate::sweep::SweepError> for CampaignError {
    fn from(error: crate::sweep::SweepError) -> CampaignError {
        CampaignError::Sweep(error)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(error: std::io::Error) -> CampaignError {
        CampaignError::Io(error.to_string())
    }
}

/// Replay a campaign journal into its current state. Records after a
/// torn tail are dropped (the executor re-runs that work); undecodable
/// records within the valid prefix are skipped.
pub fn replay(path: &Path) -> Result<CampaignState, CampaignError> {
    let report = iokc_store::journal::read_journal(path)?;
    let mut state = CampaignState {
        torn_tail: report.torn_tail,
        ..CampaignState::default()
    };
    for payload in &report.records {
        match Record::decode(payload) {
            Some(Record::Campaign {
                benchmark,
                fingerprint,
                total,
            }) => state.header = Some((benchmark, fingerprint, total)),
            Some(Record::Start { wp }) => {
                state.started.insert(wp);
            }
            Some(Record::Done {
                wp,
                attempts,
                elapsed_ms,
                commands,
                outputs,
            }) => {
                state.done.insert(
                    wp,
                    DoneRecord {
                        attempts,
                        elapsed_ms,
                        commands,
                        outputs,
                    },
                );
            }
            Some(Record::Fail { wp, attempt, .. }) => {
                let count = state.failures.entry(wp).or_insert(0);
                *count = (*count).max(attempt);
            }
            Some(Record::Quarantine { wp, reason }) => {
                state.quarantined.insert(wp, reason);
            }
            None => {}
        }
    }
    Ok(state)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn config() -> JubeConfig {
        JubeConfig::parse(
            "benchmark demo\nparam n = 1, 2\nstep run = work -n $n\npattern v = out {v:f}\n",
        )
        .expect("valid config")
    }

    #[test]
    fn fingerprint_is_stable_and_shape_sensitive() {
        let a = config_fingerprint(&config());
        let b = config_fingerprint(&config());
        assert_eq!(a, b);
        let other = JubeConfig::parse(
            "benchmark demo\nparam n = 1, 3\nstep run = work -n $n\npattern v = out {v:f}\n",
        )
        .expect("valid config");
        assert_ne!(a, config_fingerprint(&other), "param values matter");
        let renamed = JubeConfig::parse(
            "benchmark demo2\nparam n = 1, 2\nstep run = work -n $n\npattern v = out {v:f}\n",
        )
        .expect("valid config");
        assert_ne!(a, config_fingerprint(&renamed), "name matters");
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        let records = vec![
            Record::Campaign {
                benchmark: "demo".into(),
                fingerprint: 0xdead_beef_0042_1111,
                total: 16,
            },
            Record::Start { wp: 3 },
            Record::Done {
                wp: 3,
                attempts: 2,
                elapsed_ms: 450,
                commands: vec![("run".into(), "work -n 1".into())],
                outputs: vec![("run".into(), "line one\nline two\n".into())],
            },
            Record::Fail {
                wp: 4,
                attempt: 1,
                step: "run".into(),
                class: ErrorClass::Transient,
                message: "node dropped \"off\" the fabric".into(),
            },
            Record::Quarantine {
                wp: 4,
                reason: "failed 3 times".into(),
            },
        ];
        for record in &records {
            let encoded = record.encode();
            assert!(!encoded.contains('\n'), "journal payloads are one line");
            assert_eq!(Record::decode(&encoded).as_ref(), Some(record));
        }
    }

    #[test]
    fn unknown_records_decode_to_none() {
        assert!(Record::decode("{\"rec\":\"future-thing\",\"x\":1}").is_none());
        assert!(Record::decode("not json at all").is_none());
        assert!(Record::decode("{\"wp\":1}").is_none());
    }

    #[test]
    fn replay_reconstructs_state() {
        let dir = std::env::temp_dir().join(format!("iokc-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = journal_path(&dir);
        {
            let mut writer = iokc_store::journal::JournalWriter::open(&path).expect("open journal");
            let write = |w: &mut iokc_store::journal::JournalWriter, r: &Record| {
                w.append(&r.encode()).expect("append");
            };
            write(
                &mut writer,
                &Record::Campaign {
                    benchmark: "demo".into(),
                    fingerprint: 7,
                    total: 4,
                },
            );
            write(&mut writer, &Record::Start { wp: 0 });
            write(
                &mut writer,
                &Record::Done {
                    wp: 0,
                    attempts: 1,
                    elapsed_ms: 10,
                    commands: vec![("run".into(), "c0".into())],
                    outputs: vec![("run".into(), "o0".into())],
                },
            );
            write(&mut writer, &Record::Start { wp: 1 });
            write(
                &mut writer,
                &Record::Fail {
                    wp: 1,
                    attempt: 1,
                    step: "run".into(),
                    class: ErrorClass::Transient,
                    message: "boom".into(),
                },
            );
            write(&mut writer, &Record::Start { wp: 2 });
            write(
                &mut writer,
                &Record::Quarantine {
                    wp: 2,
                    reason: "always fails".into(),
                },
            );
            write(&mut writer, &Record::Start { wp: 3 });
            // wp 3 was in flight when the process died: no terminal record.
        }
        let state = replay(&path).expect("replay");
        assert_eq!(state.header, Some(("demo".into(), 7, 4)));
        assert!(!state.torn_tail);
        assert_eq!(state.done.len(), 1);
        assert_eq!(state.done[&0].outputs[0].1, "o0");
        assert_eq!(state.failures[&1], 1);
        assert_eq!(state.quarantined[&2], "always fails");
        assert!(!state.is_pending(0), "done");
        assert!(state.is_pending(1), "failed is re-runnable");
        assert!(!state.is_pending(2), "quarantined stays skipped");
        assert!(state.is_pending(3), "in-flight is re-enqueued");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
