//! `iokc-jube` — a JUBE-like benchmarking environment (§V-A).
//!
//! "JUBE is a generic, lightweight, configurable benchmarking environment
//! that supports systematic, automated execution, monitoring and analysis
//! of application execution." This reimplementation keeps JUBE's
//! concepts — parameter sets, Cartesian workpackage expansion, `$param`
//! substitution, step dependencies, numbered run workspaces, and
//! pattern-based result tables — behind a line-based configuration format
//! that the usage phase can generate mechanically. Independent
//! workpackages can execute in parallel through Rayon.

//!
//! ```
//! use iokc_jube::{run_sweep, JubeConfig};
//!
//! let config = JubeConfig::parse(
//!     "benchmark demo\nparam n = 1, 2\nstep run = tool -n $n\npattern v = out {v:f}\n",
//! )
//! .unwrap();
//! let workspace = run_sweep(&config, |_wp, _step, command| {
//!     let n: f64 = command.rsplit(' ').next().unwrap().parse().unwrap();
//!     Ok(format!("out {}", n * 10.0))
//! })
//! .unwrap();
//! let series = workspace.metric_series(&config, "v");
//! assert_eq!(series[1].1, 20.0);
//! ```

//! For overnight-scale studies, [`run_campaign`] runs the same
//! configuration under a supervised executor with a durable write-ahead
//! journal: killed campaigns resume from the journal, transient failures
//! are retried with bounded backoff, and repeatedly failing parameter
//! combinations are quarantined instead of sinking the sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod campaign;
pub mod config;
pub mod executor;
pub mod sweep;

pub use campaign::{config_fingerprint, journal_path, CampaignError, CampaignState};
pub use config::{substitute, ConfigError, JubeConfig, Step};
pub use executor::{run_campaign, CampaignOptions, CampaignReport, StepFailure, StepOutcome};
pub use sweep::{
    run_sweep, run_sweep_parallel, validate_combos, InvalidCombo, SweepError, Workpackage,
    Workspace,
};
