//! The off-loop handler pool: a fixed set of worker threads that
//! execute store-touching jobs submitted by the reactor and hand the
//! finished results back through a completion queue.
//!
//! The reactor never blocks: it submits with [`HandlerPool::try_submit`]
//! (refusing, not queueing unboundedly, when the backlog is full) and
//! collects with [`HandlerPool::drain_completions`] after the pool
//! rings the `notify` hook — in the server that hook is the reactor's
//! [`Waker`](crate::transport::Waker), so a finished response starts
//! draining onto its socket within one poll cycle. Shutdown is a flag
//! plus a broadcast: workers drain every job already accepted (each
//! request admitted before shutdown still gets a response) and exit
//! when the queue is empty.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

struct Shared<J, R> {
    jobs: Mutex<VecDeque<J>>,
    wake: Condvar,
    completions: Mutex<VecDeque<R>>,
    notify: Box<dyn Fn() + Send + Sync>,
    capacity: usize,
    shutdown: AtomicBool,
}

/// A bounded pool of handler threads with a completion queue.
pub struct HandlerPool<J: Send + 'static, R: Send + 'static> {
    shared: Arc<Shared<J, R>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<J: Send + 'static, R: Send + 'static> HandlerPool<J, R> {
    /// Spawn `workers` threads running `handler` over submitted jobs.
    /// `capacity` bounds the backlog of not-yet-started jobs; `notify`
    /// fires after each completion is queued.
    pub fn new<F>(
        workers: usize,
        capacity: usize,
        notify: impl Fn() + Send + Sync + 'static,
        handler: F,
    ) -> HandlerPool<J, R>
    where
        F: Fn(J) -> R + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            jobs: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            completions: Mutex::new(VecDeque::new()),
            notify: Box::new(notify),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        });
        let handler = Arc::new(handler);
        let threads = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                thread::Builder::new()
                    .name(format!("explorerd-handler-{i}"))
                    .spawn(move || worker_loop(&shared, handler.as_ref()))
                    .unwrap_or_else(|e| panic!("failed to spawn handler thread: {e}"))
            })
            .collect();
        HandlerPool {
            shared,
            workers: threads,
        }
    }

    /// Submit a job without blocking. Returns the job back when the
    /// backlog is at capacity or the pool is shutting down — the caller
    /// sheds the request instead of waiting.
    pub fn try_submit(&self, job: J) -> Result<(), J> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(job);
        }
        let Ok(mut jobs) = self.shared.jobs.lock() else {
            return Err(job);
        };
        if jobs.len() >= self.shared.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Take every finished result queued since the last drain.
    #[must_use]
    pub fn drain_completions(&self) -> Vec<R> {
        match self.shared.completions.lock() {
            Ok(mut done) => done.drain(..).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Jobs accepted but not yet started.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.jobs.lock().map(|q| q.len()).unwrap_or(0)
    }

    /// Stop accepting jobs, let workers drain the backlog, and join
    /// them. Results of drained jobs remain collectable via
    /// [`HandlerPool::drain_completions`] afterwards.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop<J, R>(shared: &Shared<J, R>, handler: &(impl Fn(J) -> R + ?Sized)) {
    loop {
        let job = {
            let Ok(mut jobs) = shared.jobs.lock() else {
                return;
            };
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                jobs = match shared.wake.wait(jobs) {
                    Ok(guard) => guard,
                    Err(_) => return,
                };
            }
        };
        let Some(job) = job else {
            return;
        };
        let result = handler(job);
        if let Ok(mut done) = shared.completions.lock() {
            done.push_back(result);
        }
        (shared.notify)();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn jobs_flow_through_to_completions_and_notify_fires() {
        let notified = Arc::new(AtomicUsize::new(0));
        let count = Arc::clone(&notified);
        let pool: HandlerPool<u32, u32> = HandlerPool::new(
            2,
            8,
            move || {
                count.fetch_add(1, Ordering::SeqCst);
            },
            |n| n * 2,
        );
        for n in 0..4u32 {
            pool.try_submit(n).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut results = Vec::new();
        while results.len() < 4 && std::time::Instant::now() < deadline {
            results.extend(pool.drain_completions());
            thread::sleep(Duration::from_millis(5));
        }
        results.sort_unstable();
        assert_eq!(results, vec![0, 2, 4, 6]);
        assert!(notified.load(Ordering::SeqCst) >= 4);
        pool.shutdown();
    }

    #[test]
    fn backlog_capacity_refuses_excess_jobs() {
        // A single worker parked on a gated job: capacity bounds what
        // piles up behind it.
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (started_w, release_w) = (Arc::clone(&started), Arc::clone(&release));
        let pool: HandlerPool<u32, u32> = HandlerPool::new(
            1,
            2,
            || {},
            move |n| {
                if n == 0 {
                    started_w.store(true, Ordering::SeqCst);
                    while !release_w.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(1));
                    }
                }
                n
            },
        );
        pool.try_submit(0).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !started.load(Ordering::SeqCst) && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        let refused = pool.try_submit(3);
        assert_eq!(refused, Err(3), "backlog at capacity sheds");
        release.store(true, Ordering::SeqCst);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let pool: HandlerPool<u32, u32> = HandlerPool::new(
            1,
            16,
            || {},
            |n| {
                thread::sleep(Duration::from_millis(10));
                n + 100
            },
        );
        for n in 0..5u32 {
            pool.try_submit(n).unwrap();
        }
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        let done = shared.completions.lock().unwrap();
        assert_eq!(done.len(), 5, "every accepted job completed");
    }
}
