//! A fixed worker pool behind a bounded queue.
//!
//! The server's backpressure story: one accept thread feeds connections
//! to `N` workers through a queue of bounded capacity. [`WorkerPool::try_submit`]
//! never blocks — when the queue is full it hands the item back so the
//! caller can shed load (the server answers `503 Retry-After`) instead
//! of letting every client's latency grow without bound.
//!
//! Shutdown is graceful: workers finish the item they are processing,
//! drain what is already queued (each connection handler observes the
//! cancellation token and exits quickly), then the pool joins them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    wake: Condvar,
    /// Signalled whenever a worker pops the queue empty, so waiters on
    /// [`WorkerPool::wait_queue_empty`] never have to poll a clock.
    drained: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

/// A fixed set of worker threads consuming items of type `T` from a
/// bounded queue via a shared handler.
pub struct WorkerPool<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `workers` threads that each run `handler` on received
    /// items. At most `capacity` items wait in the queue at once.
    pub fn new<F>(workers: usize, capacity: usize, handler: F) -> WorkerPool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            wake: Condvar::new(),
            drained: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        });
        let handler = Arc::new(handler);
        let mut handles = Vec::with_capacity(workers.max(1));
        for n in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            let thread = std::thread::Builder::new()
                .name(format!("explorerd-worker-{n}"))
                .spawn(move || worker_loop(&shared, handler.as_ref()));
            match thread {
                Ok(handle) => handles.push(handle),
                // Thread spawning only fails under resource exhaustion;
                // the pool still works with the workers that did start.
                Err(_) => break,
            }
        }
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Queue an item for a worker. Returns the item back when the queue
    /// is at capacity or the pool is shutting down — the caller decides
    /// how to shed it.
    pub fn try_submit(&self, item: T) -> Result<(), T> {
        try_submit(&self.shared, item)
    }

    /// A cloneable submission handle that can outlive borrows of the
    /// pool (e.g. live on the accept thread while the pool itself stays
    /// owned by the server for shutdown).
    #[must_use]
    pub fn submitter(&self) -> Submitter<T> {
        Submitter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Items currently waiting (not counting in-flight work).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().map(|q| q.len()).unwrap_or(0)
    }

    /// Block until the queue is empty (in-flight work may still be
    /// running) or `timeout` elapses; `true` when it emptied. This is
    /// event-driven — workers signal when they pop the last item — so
    /// callers never spin on a clock.
    #[must_use]
    pub fn wait_queue_empty(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let Ok(mut queue) = self.shared.queue.lock() else {
            return false;
        };
        while !queue.is_empty() {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            queue = match self.shared.drained.wait_timeout(queue, remaining) {
                Ok((guard, _)) => guard,
                Err(_) => return false,
            };
        }
        true
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stop accepting work, let workers drain the queue, and join them.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A handle that can only submit work — see [`WorkerPool::submitter`].
pub struct Submitter<T: Send + 'static> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + 'static> Clone for Submitter<T> {
    fn clone(&self) -> Submitter<T> {
        Submitter {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> Submitter<T> {
    /// Same contract as [`WorkerPool::try_submit`].
    pub fn try_submit(&self, item: T) -> Result<(), T> {
        try_submit(&self.shared, item)
    }
}

fn try_submit<T>(shared: &Shared<T>, item: T) -> Result<(), T> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(item);
    }
    let Ok(mut queue) = shared.queue.lock() else {
        return Err(item);
    };
    if queue.len() >= shared.capacity {
        return Err(item);
    }
    queue.push_back(item);
    drop(queue);
    shared.wake.notify_one();
    Ok(())
}

fn worker_loop<T, F: Fn(T) + ?Sized>(shared: &Shared<T>, handler: &F) {
    loop {
        let item = {
            let Ok(mut queue) = shared.queue.lock() else {
                return;
            };
            loop {
                if let Some(item) = queue.pop_front() {
                    if queue.is_empty() {
                        shared.drained.notify_all();
                    }
                    break item;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = match shared.wake.wait(queue) {
                    Ok(guard) => guard,
                    Err(_) => return,
                };
            }
        };
        handler(item);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn processes_all_submitted_items() {
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let seen = Arc::clone(&seen);
            WorkerPool::new(4, 64, move |n: usize| {
                seen.fetch_add(n, Ordering::SeqCst);
            })
        };
        for n in 1..=10 {
            while pool.try_submit(n).is_err() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        pool.shutdown();
        assert_eq!(seen.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(1, 1, move |_: u32| {
                let _wait = gate.lock();
            })
        };
        // First item occupies the worker, second fills the queue; wait
        // (event-driven, no polling) for the worker to pick the first up.
        pool.try_submit(1).unwrap();
        assert!(pool.wait_queue_empty(Duration::from_secs(5)));
        pool.try_submit(2).unwrap();
        assert_eq!(pool.try_submit(3), Err(3));
        drop(hold);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_items() {
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let seen = Arc::clone(&seen);
            WorkerPool::new(2, 32, move |_: u32| {
                std::thread::sleep(Duration::from_millis(2));
                seen.fetch_add(1, Ordering::SeqCst);
            })
        };
        let mut submitted = 0;
        for n in 0..16 {
            if pool.try_submit(n).is_ok() {
                submitted += 1;
            }
        }
        pool.shutdown();
        assert_eq!(seen.load(Ordering::SeqCst), submitted);
    }
}
