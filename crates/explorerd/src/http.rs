//! A minimal HTTP/1.1 layer over blocking sockets.
//!
//! Deliberately small: `GET` only (the explorer is read-only), no
//! request bodies, percent-decoded query strings, and two response body
//! shapes — fixed-length (`Content-Length`) and streamed
//! (`Transfer-Encoding: chunked`). Request parsing enforces a head-size
//! limit and a read deadline so a slow-loris client cannot pin a worker,
//! and polls a [`CancelToken`] so graceful shutdown is never blocked on
//! a silent peer.

use std::io::{self, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::transport::Conn;
use iokc_obs::CancelToken;

/// How often a blocked read wakes up to re-check the deadline and the
/// cancellation token.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Flush threshold for chunked response bodies.
const CHUNK_SIZE: usize = 8 * 1024;

/// Parsing limits: how big a request head may grow and how long a
/// client may take to deliver it.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers before the request is
    /// rejected with `400`.
    pub max_head_bytes: usize,
    /// Deadline for receiving the complete request head; exceeding it
    /// yields `408` and closes the connection.
    pub read_deadline: Duration,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 8 * 1024,
            read_deadline: Duration::from_secs(2),
        }
    }
}

/// A parsed request: method, percent-decoded path, and query pairs.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, …), uppercase as sent.
    pub method: String,
    /// Percent-decoded path component, always starting with `/`.
    pub path: String,
    /// Percent-decoded query pairs in arrival order.
    pub query: Vec<(String, String)>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The cache key: path plus query pairs sorted into a canonical
    /// order, so `?a=1&b=2` and `?b=2&a=1` share a cache entry.
    #[must_use]
    pub fn normalized(&self) -> String {
        let mut pairs = self.query.clone();
        pairs.sort();
        let mut key = self.path.clone();
        key.push('?');
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                key.push('&');
            }
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection before sending a request.
    Closed,
    /// The read deadline elapsed before the head completed.
    Timeout,
    /// The head exceeded [`Limits::max_head_bytes`].
    TooLarge,
    /// Shutdown was requested while waiting.
    Cancelled,
    /// The bytes received do not form a valid request.
    Malformed(String),
    /// A transport error other than a timeout.
    Io(io::Error),
}

/// Read and parse one request head from `stream`, honouring the limits
/// and the cancellation token. The stream's read timeout is set to a
/// short poll slice so the deadline and the token are both observed
/// promptly.
pub fn read_request(
    stream: &mut dyn Conn,
    limits: &Limits,
    cancel: &CancelToken,
) -> Result<Request, RecvError> {
    stream
        .set_read_timeout(Some(POLL_SLICE))
        .map_err(RecvError::Io)?;
    let started = Instant::now();
    let mut head: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(&head) {
            let text = std::str::from_utf8(&head[..end])
                .map_err(|_| RecvError::Malformed("request head is not UTF-8".to_owned()))?;
            return parse_head(text);
        }
        if cancel.is_cancelled() {
            return Err(RecvError::Cancelled);
        }
        if head.len() > limits.max_head_bytes {
            return Err(RecvError::TooLarge);
        }
        if started.elapsed() > limits.read_deadline {
            return Err(RecvError::Timeout);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Malformed("connection closed mid-request".into()))
                };
            }
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => return Err(RecvError::Closed),
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(text: &str) -> Result<Request, RecvError> {
    let malformed = |msg: &str| RecvError::Malformed(msg.to_owned());
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or_else(|| malformed("missing method"))?;
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if parts.next().is_some() || method.is_empty() || !target.starts_with('/') {
        return Err(malformed("bad request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(malformed("unsupported HTTP version")),
    };

    let mut connection = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => connection = Some(value.to_ascii_lowercase()),
            "content-length" if value != "0" => {
                return Err(malformed("request bodies are not supported"));
            }
            "transfer-encoding" => {
                return Err(malformed("request bodies are not supported"));
            }
            _ => {}
        }
    }
    let keep_alive = match connection.as_deref() {
        Some(c) => !c.contains("close") && (http11 || c.contains("keep-alive")),
        None => http11,
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path).ok_or_else(|| malformed("bad percent-encoding"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or_else(|| malformed("bad percent-encoding"))?;
        let v = percent_decode(v).ok_or_else(|| malformed("bad percent-encoding"))?;
        query.push((k, v));
    }
    Ok(Request {
        method: method.to_owned(),
        path,
        query,
        keep_alive,
    })
}

/// Decode `%XX` escapes and `+` (as space). Returns `None` on a
/// truncated or non-hex escape or invalid UTF-8.
fn percent_decode(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response body: fully materialized (served with `Content-Length`,
/// and shareable from the cache without copying) or produced on the fly
/// into the socket (served with chunked transfer encoding).
pub enum Body {
    /// Complete body bytes.
    Full(Arc<Vec<u8>>),
    /// A producer invoked with the (chunk-encoding) response writer.
    Stream(BodyProducer),
}

/// A streamed-body producer, invoked once with the chunk-encoding
/// response writer.
pub type BodyProducer = Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + Send>;

/// An HTTP response ready to be written.
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on `503`.
    pub headers: Vec<(&'static str, String)>,
    /// The body.
    pub body: Body,
}

impl Response {
    /// A `200` response with a fully materialized body.
    #[must_use]
    pub fn full(content_type: &'static str, body: Arc<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            body: Body::Full(body),
        }
    }

    /// A `200` JSON response.
    #[must_use]
    pub fn json(json: &iokc_util::json::Json) -> Response {
        Response::full("application/json", Arc::new(json.to_compact().into_bytes()))
    }

    /// A `200` HTML response.
    #[must_use]
    pub fn html(page: String) -> Response {
        Response::full("text/html; charset=utf-8", Arc::new(page.into_bytes()))
    }

    /// A `200` chunked response produced by `writer`.
    #[must_use]
    pub fn stream(content_type: &'static str, writer: BodyProducer) -> Response {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            body: Body::Stream(writer),
        }
    }

    /// A plain-text error response.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: Body::Full(Arc::new(format!("{message}\n").into_bytes())),
        }
    }

    /// `503 Service Unavailable` with a `Retry-After` hint — the
    /// load-shedding response sent when the accept queue is full.
    #[must_use]
    pub fn unavailable(retry_after_secs: u32) -> Response {
        let mut resp = Response::error(503, "server is at capacity, retry shortly");
        resp.headers
            .push(("Retry-After", retry_after_secs.to_string()));
        resp
    }

    /// Serialize onto `stream`. `keep_alive` decides the `Connection`
    /// header; a `Body::Stream` is sent with chunked encoding.
    pub fn write(self, stream: &mut dyn Conn, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            if keep_alive { "keep-alive" } else { "close" }
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        match self.body {
            Body::Full(bytes) => {
                head.push_str(&format!("Content-Length: {}\r\n\r\n", bytes.len()));
                stream.write_all(head.as_bytes())?;
                stream.write_all(&bytes)?;
            }
            Body::Stream(producer) => {
                head.push_str("Transfer-Encoding: chunked\r\n\r\n");
                stream.write_all(head.as_bytes())?;
                let mut chunker = ChunkWriter::new(stream);
                producer(&mut chunker)?;
                chunker.finish()?;
            }
        }
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

/// Encodes written bytes as HTTP/1.1 chunks, buffering up to
/// [`CHUNK_SIZE`] bytes per chunk.
struct ChunkWriter<'a> {
    out: &'a mut dyn Conn,
    buf: Vec<u8>,
}

impl<'a> ChunkWriter<'a> {
    fn new(out: &'a mut dyn Conn) -> ChunkWriter<'a> {
        ChunkWriter {
            out,
            buf: Vec::with_capacity(CHUNK_SIZE),
        }
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.out, "{:x}\r\n", self.buf.len())?;
        self.out.write_all(&self.buf)?;
        self.out.write_all(b"\r\n")?;
        self.buf.clear();
        Ok(())
    }

    fn finish(mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.out.write_all(b"0\r\n\r\n")
    }
}

impl Write for ChunkWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= CHUNK_SIZE {
            self.flush_chunk()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_chunk()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, RecvError> {
        parse_head(text)
    }

    #[test]
    fn parses_request_line_and_query() {
        let req = parse("GET /api/runs?api=MPIIO&min_tasks=4 HTTP/1.1\r\nHost: x\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/api/runs");
        assert_eq!(req.param("api"), Some("MPIIO"));
        assert_eq!(req.param("min_tasks"), Some("4"));
        assert!(req.keep_alive);
    }

    #[test]
    fn percent_decoding_and_plus() {
        let req = parse("GET /api/runs?command=ior%20-a+mpiio HTTP/1.1\r\n").unwrap();
        assert_eq!(req.param("command"), Some("ior -a mpiio"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(!parse("GET / HTTP/1.0\r\n").unwrap().keep_alive);
        assert!(
            parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn rejects_bodies_and_garbage() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            parse("nonsense\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET noslash HTTP/1.1\r\n"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn normalized_key_sorts_query() {
        let a = parse("GET /api/runs?b=2&a=1 HTTP/1.1\r\n").unwrap();
        let b = parse("GET /api/runs?a=1&b=2 HTTP/1.1\r\n").unwrap();
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(a.normalized(), "/api/runs?a=1&b=2");
    }
}
