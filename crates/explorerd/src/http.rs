//! A minimal HTTP/1.1 layer for the readiness-driven reactor.
//!
//! Deliberately small: `GET` only (the explorer is read-only), no
//! request bodies, percent-decoded query strings, and two response body
//! shapes — fully materialized (`Content-Length`, shareable from the
//! cache without copying) and incrementally pulled
//! (`Transfer-Encoding: chunked`, produced page by page as the socket
//! drains). Parsing is resumable: the reactor feeds whatever bytes have
//! arrived into [`parse_request`], which answers
//! [`Parsed::NeedMore`] until a complete head is buffered — deadlines
//! and slow-loris enforcement live on the reactor's timers, not in
//! blocking reads.

use std::io::{self, Write};
use std::sync::Arc;

use crate::transport::Conn;

/// Parsing limits: how big a request head may grow before rejection.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers before the request is
    /// rejected with `400`.
    pub max_head_bytes: usize,
    /// Deadline for receiving the complete request head, enforced by
    /// the reactor's timer wheel; exceeding it yields `408` and closes
    /// the connection.
    pub read_deadline: std::time::Duration,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 8 * 1024,
            read_deadline: std::time::Duration::from_secs(2),
        }
    }
}

/// A parsed request: method, percent-decoded path, and query pairs.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, …), uppercase as sent.
    pub method: String,
    /// Percent-decoded path component, always starting with `/`.
    pub path: String,
    /// Percent-decoded query pairs in arrival order.
    pub query: Vec<(String, String)>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// The `If-None-Match` validator, verbatim, for conditional GETs.
    pub if_none_match: Option<String>,
}

impl Request {
    /// First value of a query parameter.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The cache key: path plus query pairs sorted into a canonical
    /// order, so `?a=1&b=2` and `?b=2&a=1` share a cache entry.
    #[must_use]
    pub fn normalized(&self) -> String {
        let mut pairs = self.query.clone();
        pairs.sort();
        let mut key = self.path.clone();
        key.push('?');
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                key.push('&');
            }
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }
}

/// Why the buffered bytes cannot become a request. Transport-level
/// conditions (peer closed, deadline blown, cancelled) are classified
/// by the reactor, which owns the socket; the parser only judges bytes.
#[derive(Debug)]
pub enum RecvError {
    /// The head exceeded [`Limits::max_head_bytes`].
    TooLarge,
    /// The bytes received do not form a valid request.
    Malformed(String),
}

/// Outcome of feeding buffered bytes to the incremental parser.
#[derive(Debug)]
pub enum Parsed {
    /// No complete head yet — keep the buffer and read more.
    NeedMore,
    /// A complete head: the parsed request plus the byte count it
    /// consumed from the front of the buffer (anything after that is
    /// the start of the next pipelined request).
    Complete(Request, usize),
}

/// Try to parse one request head from the front of `buf`. The caller
/// keeps ownership of the buffer and, on [`Parsed::Complete`], drains
/// the consumed prefix itself.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, RecvError> {
    match find_head_end(buf) {
        Some(end) => {
            let text = std::str::from_utf8(&buf[..end])
                .map_err(|_| RecvError::Malformed("request head is not UTF-8".to_owned()))?;
            let req = parse_head(text)?;
            Ok(Parsed::Complete(req, end + 4))
        }
        None if buf.len() > limits.max_head_bytes => Err(RecvError::TooLarge),
        None => Ok(Parsed::NeedMore),
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(text: &str) -> Result<Request, RecvError> {
    let malformed = |msg: &str| RecvError::Malformed(msg.to_owned());
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or_else(|| malformed("missing method"))?;
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if parts.next().is_some() || method.is_empty() || !target.starts_with('/') {
        return Err(malformed("bad request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(malformed("unsupported HTTP version")),
    };

    let mut connection = None;
    let mut if_none_match = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => connection = Some(value.to_ascii_lowercase()),
            "if-none-match" => if_none_match = Some(value.to_owned()),
            "content-length" if value != "0" => {
                return Err(malformed("request bodies are not supported"));
            }
            "transfer-encoding" => {
                return Err(malformed("request bodies are not supported"));
            }
            _ => {}
        }
    }
    let keep_alive = match connection.as_deref() {
        Some(c) => !c.contains("close") && (http11 || c.contains("keep-alive")),
        None => http11,
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path).ok_or_else(|| malformed("bad percent-encoding"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or_else(|| malformed("bad percent-encoding"))?;
        let v = percent_decode(v).ok_or_else(|| malformed("bad percent-encoding"))?;
        query.push((k, v));
    }
    Ok(Request {
        method: method.to_owned(),
        path,
        query,
        keep_alive,
        if_none_match,
    })
}

/// Decode `%XX` escapes and `+` (as space). Returns `None` on a
/// truncated or non-hex escape or invalid UTF-8.
fn percent_decode(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// An incremental body producer for chunked responses.
///
/// The reactor pulls one chunk at a time, only when the socket has
/// drained the previous one — the backpressure that keeps a 100k-row
/// listing from ever being buffered whole.
pub trait BodySource: Send {
    /// Append the next run of body bytes to `out`. `Ok(true)` means
    /// more may follow (call again once `out` has drained); `Ok(false)`
    /// means the body is complete. Appending nothing while returning
    /// `Ok(true)` is not allowed — sources must make progress.
    fn next_chunk(&mut self, out: &mut Vec<u8>) -> io::Result<bool>;
}

/// A response body: fully materialized (served with `Content-Length`,
/// and shareable from the cache without copying) or pulled
/// incrementally (served with chunked transfer encoding).
pub enum Body {
    /// Complete body bytes.
    Full(Arc<Vec<u8>>),
    /// An incremental producer the reactor drains page by page.
    Pull(Box<dyn BodySource>),
}

/// The chunked-encoding stream terminator.
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// Chunk-encode `data` onto `out`. Empty input encodes nothing (an
/// empty chunk would terminate the stream).
pub fn encode_chunk(data: &[u8], out: &mut Vec<u8>) {
    if data.is_empty() {
        return;
    }
    let _ = write!(out, "{:x}\r\n", data.len());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// An HTTP response ready to be written.
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on `503`.
    pub headers: Vec<(&'static str, String)>,
    /// The body.
    pub body: Body,
}

impl Response {
    /// A `200` response with a fully materialized body.
    #[must_use]
    pub fn full(content_type: &'static str, body: Arc<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            body: Body::Full(body),
        }
    }

    /// A `200` JSON response.
    #[must_use]
    pub fn json(json: &iokc_util::json::Json) -> Response {
        Response::full("application/json", Arc::new(json.to_compact().into_bytes()))
    }

    /// A `200` HTML response.
    #[must_use]
    pub fn html(page: String) -> Response {
        Response::full("text/html; charset=utf-8", Arc::new(page.into_bytes()))
    }

    /// A `200` chunked response pulled incrementally from `source`.
    #[must_use]
    pub fn stream(content_type: &'static str, source: Box<dyn BodySource>) -> Response {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            body: Body::Pull(source),
        }
    }

    /// A `304 Not Modified` revalidation: no body, the validator echoed
    /// back so the client keeps its cached copy fresh.
    #[must_use]
    pub fn not_modified(content_type: &'static str, etag: String) -> Response {
        Response {
            status: 304,
            content_type,
            headers: vec![("ETag", etag)],
            body: Body::Full(Arc::new(Vec::new())),
        }
    }

    /// A plain-text error response.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: Body::Full(Arc::new(format!("{message}\n").into_bytes())),
        }
    }

    /// `503 Service Unavailable` with a `Retry-After` hint — the
    /// load-shedding response sent when the server is at capacity.
    #[must_use]
    pub fn unavailable(retry_after_secs: u32) -> Response {
        let mut resp = Response::error(503, "server is at capacity, retry shortly");
        resp.headers
            .push(("Retry-After", retry_after_secs.to_string()));
        resp
    }

    /// Serialize the status line, headers, and framing (Content-Length
    /// for [`Body::Full`], chunked for [`Body::Pull`]) through the
    /// terminating blank line. The reactor appends body bytes behind
    /// this and drains the whole buffer as the socket allows.
    #[must_use]
    pub fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            if keep_alive { "keep-alive" } else { "close" }
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        match &self.body {
            Body::Full(bytes) => {
                head.push_str(&format!("Content-Length: {}\r\n\r\n", bytes.len()));
            }
            Body::Pull(_) => head.push_str("Transfer-Encoding: chunked\r\n\r\n"),
        }
        head.into_bytes()
    }

    /// Blocking serialization onto `stream`, used only by the O(1) shed
    /// path (the socket never joins the reactor) and by tests. All
    /// served connections are written incrementally by the reactor.
    pub fn write(self, stream: &mut dyn Conn, keep_alive: bool) -> io::Result<()> {
        let head = self.head_bytes(keep_alive);
        stream.write_all(&head)?;
        match self.body {
            Body::Full(bytes) => stream.write_all(&bytes)?,
            Body::Pull(mut source) => {
                let mut raw = Vec::new();
                let mut encoded = Vec::new();
                loop {
                    raw.clear();
                    encoded.clear();
                    let more = source.next_chunk(&mut raw)?;
                    encode_chunk(&raw, &mut encoded);
                    stream.write_all(&encoded)?;
                    if !more {
                        break;
                    }
                }
                stream.write_all(CHUNK_TERMINATOR)?;
            }
        }
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, RecvError> {
        parse_head(text)
    }

    #[test]
    fn parses_request_line_and_query() {
        let req = parse("GET /api/runs?api=MPIIO&min_tasks=4 HTTP/1.1\r\nHost: x\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/api/runs");
        assert_eq!(req.param("api"), Some("MPIIO"));
        assert_eq!(req.param("min_tasks"), Some("4"));
        assert!(req.keep_alive);
        assert!(req.if_none_match.is_none());
    }

    #[test]
    fn percent_decoding_and_plus() {
        let req = parse("GET /api/runs?command=ior%20-a+mpiio HTTP/1.1\r\n").unwrap();
        assert_eq!(req.param("command"), Some("ior -a mpiio"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(!parse("GET / HTTP/1.0\r\n").unwrap().keep_alive);
        assert!(
            parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn rejects_bodies_and_garbage() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            parse("nonsense\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET noslash HTTP/1.1\r\n"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn normalized_key_sorts_query() {
        let a = parse("GET /api/runs?b=2&a=1 HTTP/1.1\r\n").unwrap();
        let b = parse("GET /api/runs?a=1&b=2 HTTP/1.1\r\n").unwrap();
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(a.normalized(), "/api/runs?a=1&b=2");
    }

    #[test]
    fn incremental_parse_resumes_and_reports_consumption() {
        let limits = Limits::default();
        let full = b"GET /api/runs HTTP/1.1\r\nHost: x\r\n\r\nGET /next";
        // Every proper prefix short of the blank line needs more bytes.
        for cut in 0..full.len() - 9 - 4 {
            assert!(matches!(
                parse_request(&full[..cut], &limits),
                Ok(Parsed::NeedMore)
            ));
        }
        match parse_request(full, &limits).unwrap() {
            Parsed::Complete(req, used) => {
                assert_eq!(req.path, "/api/runs");
                assert_eq!(&full[used..], b"GET /next", "pipelined tail preserved");
            }
            Parsed::NeedMore => panic!("head was complete"),
        }
    }

    #[test]
    fn incremental_parse_enforces_head_limit() {
        let limits = Limits {
            max_head_bytes: 16,
            ..Limits::default()
        };
        let body = vec![b'a'; 64];
        assert!(matches!(
            parse_request(&body, &limits),
            Err(RecvError::TooLarge)
        ));
    }

    #[test]
    fn captures_if_none_match() {
        let req = parse("GET / HTTP/1.1\r\nIf-None-Match: \"g4-abc\"\r\n").unwrap();
        assert_eq!(req.if_none_match.as_deref(), Some("\"g4-abc\""));
    }

    #[test]
    fn chunk_encoding_round_trip() {
        let mut out = Vec::new();
        encode_chunk(b"hello", &mut out);
        assert_eq!(out, b"5\r\nhello\r\n");
        let before = out.len();
        encode_chunk(b"", &mut out);
        assert_eq!(out.len(), before, "empty chunk encodes nothing");
        out.extend_from_slice(CHUNK_TERMINATOR);
        assert!(out.ends_with(b"0\r\n\r\n"));
    }
}
