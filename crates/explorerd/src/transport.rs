//! The socket-layer fault seam: [`Transport`]/[`Conn`] traits, the
//! production [`StdTransport`] veneer, and the deterministic
//! [`FaultTransport`] injector.
//!
//! This mirrors `store::vfs` one layer up: just as every file operation
//! the store performs flows through a `Vfs` so crash consistency can be
//! tested exhaustively, every byte the server reads from or writes to a
//! client flows through a [`Conn`] produced by the server's
//! [`Transport`]. Production wraps raw [`TcpStream`]s unchanged; the
//! chaos suite substitutes a [`FaultTransport`] whose [`NetFaultPlan`]
//! injects short reads/writes, RST-style resets, mid-response stalls,
//! slow-trickle bodies and connection drops at *op-indexed* points —
//! the op counter is global across every connection the transport
//! wraps, so one seeded plan exercises an entire mixed workload
//! reproducibly. Injected faults are counted and surface as
//! `explorerd.faults_injected` once a counter is attached.

use std::collections::BTreeSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use iokc_obs::Counter;

/// One bidirectional client connection, as the server sees it.
///
/// The trait is the narrow waist between the HTTP layer and the socket:
/// request parsing and response writing only ever touch a
/// `&mut dyn Conn`, so a fault-injecting wrapper slots under the whole
/// serving path without the HTTP code knowing.
pub trait Conn: Read + Write + Send {
    /// Set the read timeout (the handler's poll slice).
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// Set the write timeout.
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// The peer's address, when still known.
    fn peer_addr(&self) -> Option<SocketAddr>;
    /// Shut down both directions of the connection.
    fn shutdown(&self) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }

    fn peer_addr(&self) -> Option<SocketAddr> {
        TcpStream::peer_addr(self).ok()
    }

    fn shutdown(&self) -> io::Result<()> {
        TcpStream::shutdown(self, Shutdown::Both)
    }
}

/// The seam the server accepts connections through.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Wrap one accepted socket into the connection the workers serve.
    fn wrap(&self, stream: TcpStream) -> Box<dyn Conn>;

    /// Mirror injected faults into `counter`. The server calls this at
    /// startup with `explorerd.faults_injected`; fault-free transports
    /// ignore it.
    fn attach_fault_counter(&self, counter: Counter) {
        let _ = counter;
    }
}

/// The production veneer: connections are the raw sockets, untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdTransport;

impl Transport for StdTransport {
    fn wrap(&self, stream: TcpStream) -> Box<dyn Conn> {
        Box::new(stream)
    }
}

/// A deterministic plan of socket faults, keyed by the transport's
/// global op counter (each `read` and `write` call is one op, across
/// all connections in acceptance order).
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Ops at which a read delivers at most one byte.
    pub short_read_ops: BTreeSet<u64>,
    /// Ops at which a write persists only half the buffer, then fails —
    /// the torn-response case.
    pub short_write_ops: BTreeSet<u64>,
    /// Ops at which a read fails with `ECONNRESET` (peer sent RST).
    pub reset_read_ops: BTreeSet<u64>,
    /// Ops at which a write fails with `ECONNRESET`.
    pub reset_write_ops: BTreeSet<u64>,
    /// Ops that stall for [`NetFaultPlan::stall`] before proceeding —
    /// a mid-response hiccup, not a failure.
    pub stall_ops: BTreeSet<u64>,
    /// Ops at which a write delivers a single byte (slow-trickle body;
    /// the caller's `write_all` loop continues with later ops).
    pub trickle_ops: BTreeSet<u64>,
    /// Ops at which the connection drops entirely: both directions are
    /// shut down and every later op on that connection fails.
    pub drop_ops: BTreeSet<u64>,
    /// How long a stalled op sleeps (zero by default; tests pick tens
    /// of milliseconds so suites stay fast).
    pub stall: Duration,
}

impl NetFaultPlan {
    /// No faults: behaves exactly like [`StdTransport`].
    #[must_use]
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// A short read at op `op`.
    #[must_use]
    pub fn short_read_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.short_read_ops.insert(op);
        plan
    }

    /// A torn (half-then-fail) write at op `op`.
    #[must_use]
    pub fn short_write_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.short_write_ops.insert(op);
        plan
    }

    /// A connection reset on read at op `op`.
    #[must_use]
    pub fn reset_read_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.reset_read_ops.insert(op);
        plan
    }

    /// A connection reset on write at op `op`.
    #[must_use]
    pub fn reset_write_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.reset_write_ops.insert(op);
        plan
    }

    /// A stall of `stall` at op `op`.
    #[must_use]
    pub fn stall_at(op: u64, stall: Duration) -> NetFaultPlan {
        let mut plan = NetFaultPlan {
            stall,
            ..NetFaultPlan::default()
        };
        plan.stall_ops.insert(op);
        plan
    }

    /// A full connection drop at op `op`.
    #[must_use]
    pub fn drop_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.drop_ops.insert(op);
        plan
    }

    /// A reproducible chaos plan: scatter `faults` fault points over the
    /// op range `0..horizon`, drawn from a seeded xorshift64* stream —
    /// the same generator `store::vfs` uses, so a failing seed prints in
    /// one number and replays exactly.
    #[must_use]
    pub fn seeded_chaos(seed: u64, horizon: u64, faults: usize) -> NetFaultPlan {
        let mut plan = NetFaultPlan {
            stall: Duration::from_millis(30),
            ..NetFaultPlan::default()
        };
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut placed = 0usize;
        while placed < faults && horizon > 0 {
            let op = next() % horizon;
            let bucket = next() % 7;
            let inserted = match bucket {
                0 => plan.short_read_ops.insert(op),
                1 => plan.short_write_ops.insert(op),
                2 => plan.reset_read_ops.insert(op),
                3 => plan.reset_write_ops.insert(op),
                4 => plan.stall_ops.insert(op),
                5 => plan.trickle_ops.insert(op),
                _ => plan.drop_ops.insert(op),
            };
            if inserted {
                placed += 1;
            }
        }
        plan
    }
}

/// Shared transport state: the global op counter, the injected-fault
/// tally, and the optional obs counter the tally mirrors into.
#[derive(Debug, Default)]
struct FaultState {
    ops: AtomicU64,
    faults: AtomicU64,
    counter: Mutex<Option<Counter>>,
}

impl FaultState {
    fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::SeqCst)
    }

    fn fault(&self) {
        self.faults.fetch_add(1, Ordering::SeqCst);
        if let Ok(counter) = self.counter.lock() {
            if let Some(counter) = counter.as_ref() {
                counter.inc();
            }
        }
    }
}

/// The fault-injecting transport: wraps every accepted socket in a
/// [`Conn`] that consults the shared [`NetFaultPlan`] on each op.
///
/// Clones share state, so a test can keep one handle for assertions
/// while the server owns another.
#[derive(Debug, Clone, Default)]
pub struct FaultTransport {
    plan: Arc<NetFaultPlan>,
    state: Arc<FaultState>,
}

impl FaultTransport {
    /// A transport executing `plan`.
    #[must_use]
    pub fn new(plan: NetFaultPlan) -> FaultTransport {
        FaultTransport {
            plan: Arc::new(plan),
            state: Arc::new(FaultState::default()),
        }
    }

    /// Socket ops performed so far (reads + writes, all connections).
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.state.faults.load(Ordering::SeqCst)
    }

    /// Mirror the fault tally into `counter` (`explorerd.faults_injected`
    /// when the server attaches it). Faults injected before attachment
    /// are backfilled, so the counter never under-reports.
    pub fn attach_fault_counter(&self, counter: Counter) {
        let already = self.state.faults.load(Ordering::SeqCst);
        if already > counter.get() {
            counter.add(already - counter.get());
        }
        if let Ok(mut slot) = self.state.counter.lock() {
            *slot = Some(counter);
        }
    }
}

impl Transport for FaultTransport {
    fn wrap(&self, stream: TcpStream) -> Box<dyn Conn> {
        Box::new(FaultConn {
            stream,
            plan: Arc::clone(&self.plan),
            state: Arc::clone(&self.state),
            dropped: false,
        })
    }

    fn attach_fault_counter(&self, counter: Counter) {
        FaultTransport::attach_fault_counter(self, counter);
    }
}

/// One fault-wrapped connection.
struct FaultConn {
    stream: TcpStream,
    plan: Arc<NetFaultPlan>,
    state: Arc<FaultState>,
    dropped: bool,
}

impl FaultConn {
    /// Drop the connection: shut both directions and poison every
    /// later op.
    fn drop_conn(&mut self) -> io::Error {
        self.dropped = true;
        let _ = self.stream.shutdown(Shutdown::Both);
        io::Error::new(io::ErrorKind::ConnectionAborted, "injected connection drop")
    }
}

impl Read for FaultConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dropped {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connection already dropped",
            ));
        }
        let op = self.state.next_op();
        if self.plan.stall_ops.contains(&op) {
            self.state.fault();
            std::thread::sleep(self.plan.stall);
        }
        if self.plan.drop_ops.contains(&op) {
            self.state.fault();
            return Err(self.drop_conn());
        }
        if self.plan.reset_read_ops.contains(&op) {
            self.state.fault();
            let _ = self.stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected reset on read",
            ));
        }
        if self.plan.short_read_ops.contains(&op) && buf.len() > 1 {
            self.state.fault();
            return self.stream.read(&mut buf[..1]);
        }
        self.stream.read(buf)
    }
}

impl Write for FaultConn {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.dropped {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection already dropped",
            ));
        }
        let op = self.state.next_op();
        if self.plan.stall_ops.contains(&op) {
            self.state.fault();
            std::thread::sleep(self.plan.stall);
        }
        if self.plan.drop_ops.contains(&op) {
            self.state.fault();
            return Err(self.drop_conn());
        }
        if self.plan.reset_write_ops.contains(&op) {
            self.state.fault();
            let _ = self.stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected reset on write",
            ));
        }
        if self.plan.short_write_ops.contains(&op) && data.len() > 1 {
            // The torn write: half the bytes reach the wire, then the
            // call fails — the caller must treat the response as
            // unsalvageable and close.
            self.state.fault();
            let half = data.len() / 2;
            self.stream.write_all(&data[..half])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        if self.plan.trickle_ops.contains(&op) && data.len() > 1 {
            // Slow trickle: deliver one byte; the caller's write_all
            // loop continues, each continuation being a fresh op.
            self.state.fault();
            return self.stream.write(&data[..1]);
        }
        self.stream.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Conn for FaultConn {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(dur)
    }

    fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.peer_addr().ok()
    }

    fn shutdown(&self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Both)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A loopback socket pair: (server side, client side).
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (server, client)
    }

    #[test]
    fn std_transport_passes_bytes_through() {
        let (server, mut client) = pair();
        let mut conn = StdTransport.wrap(server);
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        conn.write_all(b"pong").unwrap();
        let mut back = [0u8; 4];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"pong");
        assert!(conn.peer_addr().is_some());
    }

    #[test]
    fn short_read_delivers_one_byte_and_counts() {
        let (server, mut client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::short_read_at(0));
        let mut conn = transport.wrap(server);
        client.write_all(b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(conn.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'a');
        // Op 1 is clean: the rest arrives.
        assert!(conn.read(&mut buf).unwrap() >= 1);
        assert_eq!(transport.faults_injected(), 1);
    }

    #[test]
    fn torn_write_sends_half_then_fails() {
        let (server, mut client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::short_write_at(0));
        let mut conn = transport.wrap(server);
        let err = conn.write(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        drop(conn);
        let mut received = Vec::new();
        client.read_to_end(&mut received).unwrap();
        assert_eq!(received, b"01234", "exactly half reached the wire");
        assert_eq!(transport.faults_injected(), 1);
    }

    #[test]
    fn reset_and_drop_poison_the_connection() {
        let (server, _client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::drop_at(0));
        let mut conn = transport.wrap(server);
        let err = conn.write(b"xx").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        // Every later op fails without touching the plan.
        let err = conn.write(b"yy").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 4];
        assert!(conn.read(&mut buf).is_err());
        assert_eq!(transport.faults_injected(), 1);

        let (server, _client2) = pair();
        let transport = FaultTransport::new(NetFaultPlan::reset_read_at(0));
        let mut conn = transport.wrap(server);
        let err = conn.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn trickle_delivers_one_byte_per_op() {
        let (server, mut client) = pair();
        let mut plan = NetFaultPlan::default();
        plan.trickle_ops.insert(0);
        plan.trickle_ops.insert(1);
        let transport = FaultTransport::new(plan);
        let mut conn = transport.wrap(server);
        conn.write_all(b"abc").unwrap();
        drop(conn);
        let mut received = Vec::new();
        client.read_to_end(&mut received).unwrap();
        assert_eq!(received, b"abc", "trickle is slow, never lossy");
        assert_eq!(transport.faults_injected(), 2);
        assert!(transport.op_count() >= 3);
    }

    #[test]
    fn seeded_chaos_is_reproducible_and_counter_backfills() {
        let a = NetFaultPlan::seeded_chaos(42, 100, 12);
        let b = NetFaultPlan::seeded_chaos(42, 100, 12);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Not 43: the generator ors the low bit in, so 42 and 43 are
        // the same seed stream.
        let c = NetFaultPlan::seeded_chaos(1234, 100, 12);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        let total = a.short_read_ops.len()
            + a.short_write_ops.len()
            + a.reset_read_ops.len()
            + a.reset_write_ops.len()
            + a.stall_ops.len()
            + a.trickle_ops.len()
            + a.drop_ops.len();
        assert_eq!(total, 12);

        // Counter attach backfills faults injected before attachment.
        let (server, _client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::drop_at(0));
        let mut conn = transport.wrap(server);
        let _ = conn.write(b"xx");
        assert_eq!(transport.faults_injected(), 1);
        let counter = Counter::default();
        transport.attach_fault_counter(counter.clone());
        assert_eq!(counter.get(), 1);
    }
}
