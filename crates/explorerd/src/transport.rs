//! The socket layer: [`Transport`]/[`Conn`] traits, the production
//! [`StdTransport`] veneer, the deterministic [`FaultTransport`]
//! injector, and the readiness primitives ([`Poller`]/[`Waker`]) the
//! reactor drives every connection through.
//!
//! This mirrors `store::vfs` one layer up: just as every file operation
//! the store performs flows through a `Vfs` so crash consistency can be
//! tested exhaustively, every byte the server reads from or writes to a
//! client flows through a [`Conn`] produced by the server's
//! [`Transport`]. Production wraps raw [`TcpStream`]s unchanged; the
//! chaos suite substitutes a [`FaultTransport`] whose [`NetFaultPlan`]
//! injects short reads/writes, RST-style resets, mid-response stalls,
//! slow-trickle bodies and connection drops at *op-indexed* points —
//! the op counter is global across every connection the transport
//! wraps, so one seeded plan exercises an entire mixed workload
//! reproducibly. Injected faults are counted and surface as
//! `explorerd.faults_injected` once a counter is attached.

use std::collections::BTreeSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use iokc_obs::Counter;

/// One bidirectional client connection, as the server sees it.
///
/// The trait is the narrow waist between the HTTP layer and the socket:
/// request parsing and response writing only ever touch a
/// `&mut dyn Conn`, so a fault-injecting wrapper slots under the whole
/// serving path without the HTTP code knowing.
pub trait Conn: Read + Write + Send {
    /// Set the write timeout (used by the blocking shed path only; the
    /// reactor's writes are non-blocking).
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// Switch the connection between blocking and non-blocking mode.
    /// The reactor owns every admitted socket in non-blocking mode.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// The peer's address, when still known.
    fn peer_addr(&self) -> Option<SocketAddr>;
    /// Shut down both directions of the connection.
    fn shutdown(&self) -> io::Result<()>;
    /// The underlying OS descriptor for readiness polling, when the
    /// platform exposes one. `None` makes the [`Poller`] fall back to
    /// treating the connection as always ready.
    fn raw_fd(&self) -> Option<i32>;
}

/// The platform descriptor of a socket, when one exists.
#[cfg(unix)]
fn stream_fd(stream: &TcpStream) -> Option<i32> {
    use std::os::unix::io::AsRawFd;
    Some(stream.as_raw_fd())
}

#[cfg(not(unix))]
fn stream_fd(_stream: &TcpStream) -> Option<i32> {
    None
}

impl Conn for TcpStream {
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }

    fn peer_addr(&self) -> Option<SocketAddr> {
        TcpStream::peer_addr(self).ok()
    }

    fn shutdown(&self) -> io::Result<()> {
        TcpStream::shutdown(self, Shutdown::Both)
    }

    fn raw_fd(&self) -> Option<i32> {
        stream_fd(self)
    }
}

/// The seam the server accepts connections through.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Wrap one accepted socket into the connection the workers serve.
    fn wrap(&self, stream: TcpStream) -> Box<dyn Conn>;

    /// Mirror injected faults into `counter`. The server calls this at
    /// startup with `explorerd.faults_injected`; fault-free transports
    /// ignore it.
    fn attach_fault_counter(&self, counter: Counter) {
        let _ = counter;
    }
}

/// The production veneer: connections are the raw sockets, untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdTransport;

impl Transport for StdTransport {
    fn wrap(&self, stream: TcpStream) -> Box<dyn Conn> {
        Box::new(stream)
    }
}

/// A deterministic plan of socket faults, keyed by the transport's
/// global op counter (each `read` and `write` call is one op, across
/// all connections in acceptance order).
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Ops at which a read delivers at most one byte.
    pub short_read_ops: BTreeSet<u64>,
    /// Ops at which a write persists only half the buffer, then fails —
    /// the torn-response case.
    pub short_write_ops: BTreeSet<u64>,
    /// Ops at which a read fails with `ECONNRESET` (peer sent RST).
    pub reset_read_ops: BTreeSet<u64>,
    /// Ops at which a write fails with `ECONNRESET`.
    pub reset_write_ops: BTreeSet<u64>,
    /// Ops that stall for [`NetFaultPlan::stall`] before proceeding —
    /// a mid-response hiccup, not a failure.
    pub stall_ops: BTreeSet<u64>,
    /// Ops at which a write delivers a single byte (slow-trickle body;
    /// the caller's `write_all` loop continues with later ops).
    pub trickle_ops: BTreeSet<u64>,
    /// Ops at which the connection drops entirely: both directions are
    /// shut down and every later op on that connection fails.
    pub drop_ops: BTreeSet<u64>,
    /// How long a stalled op sleeps (zero by default; tests pick tens
    /// of milliseconds so suites stay fast).
    pub stall: Duration,
}

impl NetFaultPlan {
    /// No faults: behaves exactly like [`StdTransport`].
    #[must_use]
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// A short read at op `op`.
    #[must_use]
    pub fn short_read_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.short_read_ops.insert(op);
        plan
    }

    /// A torn (half-then-fail) write at op `op`.
    #[must_use]
    pub fn short_write_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.short_write_ops.insert(op);
        plan
    }

    /// A connection reset on read at op `op`.
    #[must_use]
    pub fn reset_read_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.reset_read_ops.insert(op);
        plan
    }

    /// A connection reset on write at op `op`.
    #[must_use]
    pub fn reset_write_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.reset_write_ops.insert(op);
        plan
    }

    /// A stall of `stall` at op `op`.
    #[must_use]
    pub fn stall_at(op: u64, stall: Duration) -> NetFaultPlan {
        let mut plan = NetFaultPlan {
            stall,
            ..NetFaultPlan::default()
        };
        plan.stall_ops.insert(op);
        plan
    }

    /// A full connection drop at op `op`.
    #[must_use]
    pub fn drop_at(op: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        plan.drop_ops.insert(op);
        plan
    }

    /// A reproducible chaos plan: scatter `faults` fault points over the
    /// op range `0..horizon`, drawn from a seeded xorshift64* stream —
    /// the same generator `store::vfs` uses, so a failing seed prints in
    /// one number and replays exactly.
    #[must_use]
    pub fn seeded_chaos(seed: u64, horizon: u64, faults: usize) -> NetFaultPlan {
        let mut plan = NetFaultPlan {
            stall: Duration::from_millis(30),
            ..NetFaultPlan::default()
        };
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut placed = 0usize;
        while placed < faults && horizon > 0 {
            let op = next() % horizon;
            let bucket = next() % 7;
            let inserted = match bucket {
                0 => plan.short_read_ops.insert(op),
                1 => plan.short_write_ops.insert(op),
                2 => plan.reset_read_ops.insert(op),
                3 => plan.reset_write_ops.insert(op),
                4 => plan.stall_ops.insert(op),
                5 => plan.trickle_ops.insert(op),
                _ => plan.drop_ops.insert(op),
            };
            if inserted {
                placed += 1;
            }
        }
        plan
    }
}

/// Shared transport state: the global op counter, the injected-fault
/// tally, and the optional obs counter the tally mirrors into.
#[derive(Debug, Default)]
struct FaultState {
    ops: AtomicU64,
    faults: AtomicU64,
    counter: Mutex<Option<Counter>>,
}

impl FaultState {
    fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::SeqCst)
    }

    fn fault(&self) {
        self.faults.fetch_add(1, Ordering::SeqCst);
        if let Ok(counter) = self.counter.lock() {
            if let Some(counter) = counter.as_ref() {
                counter.inc();
            }
        }
    }
}

/// The fault-injecting transport: wraps every accepted socket in a
/// [`Conn`] that consults the shared [`NetFaultPlan`] on each op.
///
/// Clones share state, so a test can keep one handle for assertions
/// while the server owns another.
#[derive(Debug, Clone, Default)]
pub struct FaultTransport {
    plan: Arc<NetFaultPlan>,
    state: Arc<FaultState>,
}

impl FaultTransport {
    /// A transport executing `plan`.
    #[must_use]
    pub fn new(plan: NetFaultPlan) -> FaultTransport {
        FaultTransport {
            plan: Arc::new(plan),
            state: Arc::new(FaultState::default()),
        }
    }

    /// Socket ops performed so far (reads + writes, all connections).
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.state.faults.load(Ordering::SeqCst)
    }

    /// Mirror the fault tally into `counter` (`explorerd.faults_injected`
    /// when the server attaches it). Faults injected before attachment
    /// are backfilled, so the counter never under-reports.
    pub fn attach_fault_counter(&self, counter: Counter) {
        let already = self.state.faults.load(Ordering::SeqCst);
        if already > counter.get() {
            counter.add(already - counter.get());
        }
        if let Ok(mut slot) = self.state.counter.lock() {
            *slot = Some(counter);
        }
    }
}

impl Transport for FaultTransport {
    fn wrap(&self, stream: TcpStream) -> Box<dyn Conn> {
        Box::new(FaultConn {
            stream,
            plan: Arc::clone(&self.plan),
            state: Arc::clone(&self.state),
            dropped: false,
        })
    }

    fn attach_fault_counter(&self, counter: Counter) {
        FaultTransport::attach_fault_counter(self, counter);
    }
}

/// One fault-wrapped connection.
struct FaultConn {
    stream: TcpStream,
    plan: Arc<NetFaultPlan>,
    state: Arc<FaultState>,
    dropped: bool,
}

impl FaultConn {
    /// Drop the connection: shut both directions and poison every
    /// later op.
    fn drop_conn(&mut self) -> io::Error {
        self.dropped = true;
        let _ = self.stream.shutdown(Shutdown::Both);
        io::Error::new(io::ErrorKind::ConnectionAborted, "injected connection drop")
    }
}

impl Read for FaultConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dropped {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connection already dropped",
            ));
        }
        let op = self.state.next_op();
        if self.plan.stall_ops.contains(&op) {
            self.state.fault();
            std::thread::sleep(self.plan.stall);
        }
        if self.plan.drop_ops.contains(&op) {
            self.state.fault();
            return Err(self.drop_conn());
        }
        if self.plan.reset_read_ops.contains(&op) {
            self.state.fault();
            let _ = self.stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected reset on read",
            ));
        }
        if self.plan.short_read_ops.contains(&op) && buf.len() > 1 {
            self.state.fault();
            return self.stream.read(&mut buf[..1]);
        }
        self.stream.read(buf)
    }
}

impl Write for FaultConn {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.dropped {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection already dropped",
            ));
        }
        let op = self.state.next_op();
        if self.plan.stall_ops.contains(&op) {
            self.state.fault();
            std::thread::sleep(self.plan.stall);
        }
        if self.plan.drop_ops.contains(&op) {
            self.state.fault();
            return Err(self.drop_conn());
        }
        if self.plan.reset_write_ops.contains(&op) {
            self.state.fault();
            let _ = self.stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected reset on write",
            ));
        }
        if self.plan.short_write_ops.contains(&op) && data.len() > 1 {
            // The torn write: half the bytes reach the wire, then the
            // call fails — the caller must treat the response as
            // unsalvageable and close.
            self.state.fault();
            let half = data.len() / 2;
            self.stream.write_all(&data[..half])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        if self.plan.trickle_ops.contains(&op) && data.len() > 1 {
            // Slow trickle: deliver one byte; the caller's write_all
            // loop continues, each continuation being a fresh op.
            self.state.fault();
            return self.stream.write(&data[..1]);
        }
        self.stream.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Conn for FaultConn {
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(dur)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.stream.set_nonblocking(nonblocking)
    }

    fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.peer_addr().ok()
    }

    fn shutdown(&self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Both)
    }

    fn raw_fd(&self) -> Option<i32> {
        stream_fd(&self.stream)
    }
}

/// Raw `poll(2)` bindings. The crate otherwise denies unsafe code; this
/// module is the single audited exception, kept to one `#[repr(C)]`
/// struct and one foreign call so the reactor can sleep until a socket
/// is actually ready instead of burning a thread per connection.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::io;

    /// Mirror of the kernel's `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Safe wrapper over `poll(2)`: blocks until a descriptor is ready
    /// or `timeout_ms` elapses, filling `revents` in place.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is an exclusively borrowed slice of `#[repr(C)]`
        // pollfd records valid for the whole call, and `nfds` matches
        // its length, so the kernel writes only within bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(usize::try_from(rc).unwrap_or(0))
        }
    }
}

/// Interest registration and readiness report for one descriptor in a
/// [`Poller::wait`] call. Error/hangup conditions are folded into both
/// `readable()` and `writable()` so the connection's state machine
/// advances, performs the I/O, and classifies the failure it gets back.
#[derive(Debug, Clone, Copy, Default)]
pub struct PollSlot {
    fd: Option<i32>,
    want_read: bool,
    want_write: bool,
    got_read: bool,
    got_write: bool,
    got_error: bool,
}

impl PollSlot {
    /// Register read interest on `fd`.
    #[must_use]
    pub fn read(fd: Option<i32>) -> PollSlot {
        PollSlot {
            fd,
            want_read: true,
            ..PollSlot::default()
        }
    }

    /// Register write interest on `fd`.
    #[must_use]
    pub fn write(fd: Option<i32>) -> PollSlot {
        PollSlot {
            fd,
            want_write: true,
            ..PollSlot::default()
        }
    }

    /// The descriptor became readable (or errored/hung up).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.got_read || self.got_error
    }

    /// The descriptor became writable (or errored/hung up).
    #[must_use]
    pub fn writable(&self) -> bool {
        self.got_write || self.got_error
    }
}

/// A thin readiness poller over `poll(2)`.
///
/// On Linux this is a real level-triggered kernel poll; descriptors
/// stay reported ready until their buffers drain, which is what lets
/// the reactor park pipelined bytes in the kernel while a response is
/// still being written. On other platforms (and for [`Conn`]s without
/// a descriptor) it degrades to a bounded sleep that reports every
/// slot ready — correct, because all reactor I/O is non-blocking and
/// simply returns `WouldBlock`, just less efficient.
#[derive(Debug, Default)]
pub struct Poller {
    #[cfg(target_os = "linux")]
    fds: Vec<sys::PollFd>,
    #[cfg(target_os = "linux")]
    slot_index: Vec<usize>,
}

impl Poller {
    /// A fresh poller with no registered interest.
    #[must_use]
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Wait until a slot is ready or `timeout` elapses, filling each
    /// slot's readiness flags. Returns the number of ready slots.
    #[cfg(target_os = "linux")]
    pub fn wait(&mut self, slots: &mut [PollSlot], timeout: Duration) -> io::Result<usize> {
        self.fds.clear();
        self.slot_index.clear();
        let mut fallback_ready = 0usize;
        for (i, slot) in slots.iter_mut().enumerate() {
            slot.got_read = false;
            slot.got_write = false;
            slot.got_error = false;
            match slot.fd {
                Some(fd) => {
                    let mut events = 0i16;
                    if slot.want_read {
                        events |= sys::POLLIN;
                    }
                    if slot.want_write {
                        events |= sys::POLLOUT;
                    }
                    self.fds.push(sys::PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                    self.slot_index.push(i);
                }
                None => {
                    // No descriptor: report requested readiness and do
                    // not let the kernel sleep past it.
                    slot.got_read = slot.want_read;
                    slot.got_write = slot.want_write;
                    fallback_ready += 1;
                }
            }
        }
        let timeout_ms = if fallback_ready > 0 {
            0
        } else {
            i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX)
        };
        if self.fds.is_empty() {
            if fallback_ready == 0 && !timeout.is_zero() {
                std::thread::sleep(timeout);
            }
            return Ok(fallback_ready);
        }
        match sys::poll_fds(&mut self.fds, timeout_ms) {
            Ok(_) => {}
            Err(err) if err.kind() == io::ErrorKind::Interrupted => return Ok(fallback_ready),
            Err(err) => return Err(err),
        }
        let mut ready = fallback_ready;
        for (pf, &i) in self.fds.iter().zip(&self.slot_index) {
            let slot = &mut slots[i];
            if pf.revents & sys::POLLIN != 0 {
                slot.got_read = true;
            }
            if pf.revents & sys::POLLOUT != 0 {
                slot.got_write = true;
            }
            if pf.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0 {
                slot.got_error = true;
            }
            if slot.readable() || slot.writable() {
                ready += 1;
            }
        }
        Ok(ready)
    }

    /// Portable fallback: bounded sleep, then report every slot ready.
    #[cfg(not(target_os = "linux"))]
    pub fn wait(&mut self, slots: &mut [PollSlot], timeout: Duration) -> io::Result<usize> {
        std::thread::sleep(timeout.min(Duration::from_millis(5)));
        for slot in slots.iter_mut() {
            slot.got_read = slot.want_read;
            slot.got_write = slot.want_write;
            slot.got_error = false;
        }
        Ok(slots.len())
    }
}

/// A self-pipe that unblocks [`Poller::wait`] from another thread.
///
/// The handler pool rings it after pushing each completion so finished
/// responses start draining immediately instead of waiting out the
/// poll slice.
#[cfg(unix)]
#[derive(Debug)]
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    /// A connected, non-blocking socketpair waker.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// Wake the poller. A full pipe means a wake-up is already pending,
    /// so the failed write is deliberately ignored.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// The readable end's descriptor, registered as a read slot.
    #[must_use]
    pub fn fd(&self) -> Option<i32> {
        use std::os::unix::io::AsRawFd;
        Some(self.rx.as_raw_fd())
    }

    /// Consume any pending wake-up bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

/// Portable stand-in: the fallback poller never sleeps long, so a
/// no-op waker only costs a bounded delay.
#[cfg(not(unix))]
#[derive(Debug)]
pub struct Waker;

#[cfg(not(unix))]
impl Waker {
    /// A no-op waker.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker)
    }

    /// No-op: the fallback poller wakes itself every few milliseconds.
    pub fn wake(&self) {}

    /// No descriptor to register.
    #[must_use]
    pub fn fd(&self) -> Option<i32> {
        None
    }

    /// No-op.
    pub fn drain(&self) {}
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A loopback socket pair: (server side, client side).
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (server, client)
    }

    #[test]
    fn std_transport_passes_bytes_through() {
        let (server, mut client) = pair();
        let mut conn = StdTransport.wrap(server);
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        conn.write_all(b"pong").unwrap();
        let mut back = [0u8; 4];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"pong");
        assert!(conn.peer_addr().is_some());
    }

    #[test]
    fn short_read_delivers_one_byte_and_counts() {
        let (server, mut client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::short_read_at(0));
        let mut conn = transport.wrap(server);
        client.write_all(b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(conn.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'a');
        // Op 1 is clean: the rest arrives.
        assert!(conn.read(&mut buf).unwrap() >= 1);
        assert_eq!(transport.faults_injected(), 1);
    }

    #[test]
    fn torn_write_sends_half_then_fails() {
        let (server, mut client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::short_write_at(0));
        let mut conn = transport.wrap(server);
        let err = conn.write(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        drop(conn);
        let mut received = Vec::new();
        client.read_to_end(&mut received).unwrap();
        assert_eq!(received, b"01234", "exactly half reached the wire");
        assert_eq!(transport.faults_injected(), 1);
    }

    #[test]
    fn reset_and_drop_poison_the_connection() {
        let (server, _client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::drop_at(0));
        let mut conn = transport.wrap(server);
        let err = conn.write(b"xx").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        // Every later op fails without touching the plan.
        let err = conn.write(b"yy").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 4];
        assert!(conn.read(&mut buf).is_err());
        assert_eq!(transport.faults_injected(), 1);

        let (server, _client2) = pair();
        let transport = FaultTransport::new(NetFaultPlan::reset_read_at(0));
        let mut conn = transport.wrap(server);
        let err = conn.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn trickle_delivers_one_byte_per_op() {
        let (server, mut client) = pair();
        let mut plan = NetFaultPlan::default();
        plan.trickle_ops.insert(0);
        plan.trickle_ops.insert(1);
        let transport = FaultTransport::new(plan);
        let mut conn = transport.wrap(server);
        conn.write_all(b"abc").unwrap();
        drop(conn);
        let mut received = Vec::new();
        client.read_to_end(&mut received).unwrap();
        assert_eq!(received, b"abc", "trickle is slow, never lossy");
        assert_eq!(transport.faults_injected(), 2);
        assert!(transport.op_count() >= 3);
    }

    #[test]
    fn poller_reports_readiness_and_waker_unblocks() {
        let (server, mut client) = pair();
        server.set_nonblocking(true).unwrap();
        let conn = StdTransport.wrap(server);
        let mut poller = Poller::new();

        // Write interest on an empty send buffer is immediately ready.
        let mut slots = [PollSlot::write(conn.raw_fd())];
        let n = poller.wait(&mut slots, Duration::from_millis(200)).unwrap();
        assert!(n >= 1);
        assert!(slots[0].writable());

        // Read interest becomes ready once the peer sends a byte.
        client.write_all(b"x").unwrap();
        let mut slots = [PollSlot::read(conn.raw_fd())];
        let n = poller.wait(&mut slots, Duration::from_millis(500)).unwrap();
        assert!(n >= 1);
        assert!(slots[0].readable());

        // The waker's pipe registers like any other descriptor.
        let waker = Waker::new().unwrap();
        waker.wake();
        let mut slots = [PollSlot::read(waker.fd())];
        let n = poller.wait(&mut slots, Duration::from_millis(500)).unwrap();
        assert!(n >= 1);
        assert!(slots[0].readable());
        waker.drain();
    }

    #[test]
    fn seeded_chaos_is_reproducible_and_counter_backfills() {
        let a = NetFaultPlan::seeded_chaos(42, 100, 12);
        let b = NetFaultPlan::seeded_chaos(42, 100, 12);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Not 43: the generator ors the low bit in, so 42 and 43 are
        // the same seed stream.
        let c = NetFaultPlan::seeded_chaos(1234, 100, 12);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        let total = a.short_read_ops.len()
            + a.short_write_ops.len()
            + a.reset_read_ops.len()
            + a.reset_write_ops.len()
            + a.stall_ops.len()
            + a.trickle_ops.len()
            + a.drop_ops.len();
        assert_eq!(total, 12);

        // Counter attach backfills faults injected before attachment.
        let (server, _client) = pair();
        let transport = FaultTransport::new(NetFaultPlan::drop_at(0));
        let mut conn = transport.wrap(server);
        let _ = conn.write(b"xx");
        assert_eq!(transport.faults_injected(), 1);
        let counter = Counter::default();
        transport.attach_fault_counter(counter.clone());
        assert_eq!(counter.get(), 1);
    }
}
