//! Admission control beyond the binary accept queue: per-peer caps, a
//! token-bucket rate limiter, priority shedding, and a circuit breaker.
//!
//! The bounded worker queue (PR 4) answers one question — "is there any
//! capacity at all?" — with a binary yes/no. This module answers the
//! finer-grained ones a shared explorer needs under overload:
//!
//! * **Per-peer concurrency caps**: one misbehaving client opening
//!   hundreds of keep-alive connections cannot monopolize the worker
//!   pool; connections beyond `max_per_peer` are answered `503` at
//!   accept time.
//! * **Token-bucket rate limiting, keyed on peer address**: sustained
//!   request rates above `rate_per_peer` drain the peer's bucket and
//!   further requests get `429 Retry-After` until it refills.
//! * **Priority shedding**: `/healthz` and `/metrics` are always
//!   admitted (operators must be able to see *into* an overloaded
//!   server), while the expensive compare/boxplot renders are shed
//!   first — as soon as the accept queue is more than half full.
//! * **A circuit breaker** over the expensive endpoints: while the
//!   store reports `Degraded`, or after a run of server-side failures,
//!   expensive requests fast-fail `503` without touching the store,
//!   then a cooldown admits a probe request to test recovery.
//!
//! Decisions surface as counters: `explorerd.admission.peer_capped`,
//! `.rate_limited`, `.shed_expensive`, and `explorerd.breaker.opened` /
//! `.fast_fail`.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use iokc_obs::{Counter, MetricsRegistry};

/// Tuning knobs for [`Admission`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum simultaneous connections per peer address (0 = no cap).
    pub max_per_peer: usize,
    /// Sustained requests/second per peer address (0 = unlimited).
    pub rate_per_peer: f64,
    /// Token-bucket capacity (burst size); 0 picks `max(2×rate, 1)`.
    pub burst: f64,
    /// Consecutive expensive-endpoint failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long an opened breaker fast-fails before admitting a probe.
    pub breaker_cooldown: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_per_peer: 0,
            rate_per_peer: 0.0,
            burst: 0.0,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(5),
        }
    }
}

/// How a request path ranks when the server has to choose whom to serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointClass {
    /// Health and metrics: always admitted, never rate limited — an
    /// overloaded server must stay observable.
    Critical,
    /// The fan-out renders (compare, boxplot): shed first under
    /// pressure, guarded by the circuit breaker.
    Expensive,
    /// Everything else.
    Normal,
}

/// Classify a request path.
#[must_use]
pub fn classify(path: &str) -> EndpointClass {
    match path.trim_end_matches('/') {
        "/healthz" | "/metrics" => EndpointClass::Critical,
        "/api/compare" | "/api/boxplot" | "/compare" | "/boxplot" => EndpointClass::Expensive,
        _ => EndpointClass::Normal,
    }
}

/// The verdict for one parsed request. Refusals carry a derived
/// `Retry-After` hint: bucket refill time for rate limits, remaining
/// cooldown for the breaker — so well-behaved clients back off for
/// exactly as long as the server needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Serve it.
    Admit,
    /// The peer's token bucket is empty — `429 Retry-After`.
    RateLimited {
        /// Seconds until the bucket refills to one token.
        retry_after_secs: u32,
    },
    /// The queue is backlogged and this endpoint is expensive — `503`.
    ShedExpensive {
        /// Suggested back-off; the backlog drains at worker speed, so
        /// this stays the minimum hint.
        retry_after_secs: u32,
    },
    /// The circuit breaker is open (or the store is degraded) — `503`
    /// without touching the store.
    BreakerOpen {
        /// Seconds until the cooldown admits a probe.
        retry_after_secs: u32,
    },
}

impl AdmitDecision {
    /// The `Retry-After` hint carried by a refusal (`None` for
    /// [`AdmitDecision::Admit`]).
    #[must_use]
    pub fn retry_after_secs(&self) -> Option<u32> {
        match self {
            AdmitDecision::Admit => None,
            AdmitDecision::RateLimited { retry_after_secs }
            | AdmitDecision::ShedExpensive { retry_after_secs }
            | AdmitDecision::BreakerOpen { retry_after_secs } => Some(*retry_after_secs),
        }
    }
}

/// Per-peer bookkeeping: live connections and the rate-limit bucket.
#[derive(Debug)]
struct PeerState {
    active: usize,
    tokens: f64,
    refilled: Instant,
}

#[derive(Debug)]
enum BreakerState {
    /// Normal operation; counts consecutive expensive-endpoint failures.
    Closed { failures: u32 },
    /// Fast-failing until the cooldown elapses; the first request after
    /// that is admitted as a probe (half-open).
    Open { until: Instant },
}

/// Shared per-peer accounting, referenced by both the controller and
/// the RAII permits it hands out.
type PeerTable = Arc<Mutex<HashMap<IpAddr, PeerState>>>;

/// The admission controller shared by the accept thread and the workers.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    peers: PeerTable,
    breaker: Mutex<BreakerState>,
    queue_depth: AtomicUsize,
    queue_capacity: usize,
    peer_capped: Counter,
    rate_limited: Counter,
    shed_expensive: Counter,
    breaker_opened: Counter,
    breaker_fast_fail: Counter,
}

/// Entries to keep per-peer state for before pruning idle peers — a
/// bound on memory, not a behavioral knob.
const PEER_TABLE_LIMIT: usize = 4096;

impl Admission {
    /// Build a controller for a queue of `queue_capacity` slots,
    /// registering its counters with `metrics`.
    #[must_use]
    pub fn new(
        config: AdmissionConfig,
        queue_capacity: usize,
        metrics: &MetricsRegistry,
    ) -> Admission {
        Admission {
            config,
            peers: Arc::new(Mutex::new(HashMap::new())),
            breaker: Mutex::new(BreakerState::Closed { failures: 0 }),
            queue_depth: AtomicUsize::new(0),
            queue_capacity: queue_capacity.max(1),
            peer_capped: metrics.counter("explorerd.admission.peer_capped"),
            rate_limited: metrics.counter("explorerd.admission.rate_limited"),
            shed_expensive: metrics.counter("explorerd.admission.shed_expensive"),
            breaker_opened: metrics.counter("explorerd.breaker.opened"),
            breaker_fast_fail: metrics.counter("explorerd.breaker.fast_fail"),
        }
    }

    /// Admit one new connection from `peer`, or refuse it when the peer
    /// is at its concurrency cap. The returned permit releases the slot
    /// on drop; hold it for the connection's whole lifetime.
    pub fn admit_conn(&self, peer: Option<IpAddr>) -> Option<ConnPermit> {
        let Some(ip) = peer else {
            // Peer unknown (socket already gone): nothing to key on.
            return Some(ConnPermit { peers: None });
        };
        let Ok(mut peers) = self.peers.lock() else {
            return Some(ConnPermit { peers: None });
        };
        if peers.len() >= PEER_TABLE_LIMIT {
            peers.retain(|_, p| p.active > 0);
        }
        let burst = self.effective_burst();
        let state = peers.entry(ip).or_insert_with(|| PeerState {
            active: 0,
            tokens: burst,
            refilled: Instant::now(),
        });
        if self.config.max_per_peer > 0 && state.active >= self.config.max_per_peer {
            self.peer_capped.inc();
            return None;
        }
        state.active += 1;
        Some(ConnPermit {
            peers: Some((Arc::clone(&self.peers), ip)),
        })
    }

    /// One connection left the accept queue for a worker.
    pub fn note_dequeued(&self) {
        // Saturating: a shed path may never have queued.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// One connection entered the accept queue.
    pub fn note_queued(&self) {
        self.queue_depth.fetch_add(1, Ordering::SeqCst);
    }

    /// Connections currently waiting in the accept queue (mirror).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::SeqCst)
    }

    /// Decide one parsed request. `degraded` is the store's current
    /// health (a degraded store forces the breaker open for expensive
    /// endpoints).
    pub fn admit_request(
        &self,
        peer: Option<IpAddr>,
        class: EndpointClass,
        degraded: bool,
    ) -> AdmitDecision {
        if class == EndpointClass::Critical {
            return AdmitDecision::Admit;
        }
        if class == EndpointClass::Expensive {
            if degraded || !self.breaker_probe() {
                self.breaker_fast_fail.inc();
                return AdmitDecision::BreakerOpen {
                    retry_after_secs: self.breaker_retry_hint(),
                };
            }
            // Priority shedding: a backlogged queue (over half full)
            // means workers are saturated — stop paying for fan-out
            // renders before touching cheap requests.
            if self.queue_depth() * 2 > self.queue_capacity {
                self.shed_expensive.inc();
                return AdmitDecision::ShedExpensive {
                    retry_after_secs: 1,
                };
            }
        }
        if let Err(retry_after_secs) = self.take_token(peer) {
            self.rate_limited.inc();
            return AdmitDecision::RateLimited { retry_after_secs };
        }
        AdmitDecision::Admit
    }

    /// Feed the circuit breaker with the outcome of an admitted
    /// expensive request (`success` = the response was not a 5xx).
    pub fn record_outcome(&self, class: EndpointClass, success: bool) {
        if class != EndpointClass::Expensive {
            return;
        }
        let Ok(mut breaker) = self.breaker.lock() else {
            return;
        };
        match (&mut *breaker, success) {
            (BreakerState::Closed { failures }, true) => *failures = 0,
            (BreakerState::Closed { failures }, false) => {
                *failures += 1;
                if *failures >= self.config.breaker_threshold {
                    self.breaker_opened.inc();
                    *breaker = BreakerState::Open {
                        until: Instant::now() + self.config.breaker_cooldown,
                    };
                }
            }
            // A probe outcome while open: success closes, failure
            // restarts the cooldown.
            (BreakerState::Open { .. }, true) => {
                *breaker = BreakerState::Closed { failures: 0 };
            }
            (BreakerState::Open { until }, false) => {
                *until = Instant::now() + self.config.breaker_cooldown;
            }
        }
    }

    /// Is the breaker currently fast-failing (ignoring store health)?
    #[must_use]
    pub fn breaker_open(&self) -> bool {
        match self.breaker.lock() {
            Ok(breaker) => match &*breaker {
                BreakerState::Closed { .. } => false,
                BreakerState::Open { until } => Instant::now() < *until,
            },
            Err(_) => false,
        }
    }

    /// May an expensive request proceed past the breaker? Admits
    /// everything while closed, and the first request after the
    /// cooldown as a half-open probe.
    fn breaker_probe(&self) -> bool {
        let Ok(breaker) = self.breaker.lock() else {
            return true;
        };
        match &*breaker {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } => Instant::now() >= *until,
        }
    }

    fn effective_burst(&self) -> f64 {
        if self.config.burst > 0.0 {
            self.config.burst
        } else {
            (self.config.rate_per_peer * 2.0).max(1.0)
        }
    }

    /// Seconds until the breaker cooldown admits a probe: the remaining
    /// `Open` window, or (when the store itself is degraded with the
    /// breaker closed) one full cooldown as the recheck interval.
    fn breaker_retry_hint(&self) -> u32 {
        let cooldown = duration_ceil_secs(self.config.breaker_cooldown);
        let Ok(breaker) = self.breaker.lock() else {
            return cooldown;
        };
        match &*breaker {
            BreakerState::Closed { .. } => cooldown,
            BreakerState::Open { until } => {
                duration_ceil_secs(until.saturating_duration_since(Instant::now()))
            }
        }
    }

    /// Take one token from the peer's bucket; on refusal returns the
    /// seconds until the bucket refills to a whole token.
    fn take_token(&self, peer: Option<IpAddr>) -> Result<(), u32> {
        if self.config.rate_per_peer <= 0.0 {
            return Ok(());
        }
        let Some(ip) = peer else {
            return Ok(());
        };
        let Ok(mut peers) = self.peers.lock() else {
            return Ok(());
        };
        let burst = self.effective_burst();
        let now = Instant::now();
        let state = peers.entry(ip).or_insert_with(|| PeerState {
            active: 0,
            tokens: burst,
            refilled: now,
        });
        let dt = now.duration_since(state.refilled).as_secs_f64();
        state.tokens = (state.tokens + dt * self.config.rate_per_peer).min(burst);
        state.refilled = now;
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - state.tokens;
            let secs = (deficit / self.config.rate_per_peer).ceil();
            Err(clamp_secs(secs))
        }
    }
}

/// Round a duration up to whole seconds, never below 1.
fn duration_ceil_secs(dur: Duration) -> u32 {
    clamp_secs(dur.as_secs_f64().ceil())
}

/// Clamp a (already ceiled) second count into `1..=u32::MAX`.
fn clamp_secs(secs: f64) -> u32 {
    if secs.is_finite() && secs >= 1.0 {
        if secs >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            // Representable: finite, >= 1, < u32::MAX after the guard.
            secs as u32
        }
    } else {
        1
    }
}

/// A held per-peer connection slot; dropping it releases the slot.
#[derive(Debug)]
pub struct ConnPermit {
    peers: Option<(PeerTable, IpAddr)>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        if let Some((peers, ip)) = self.peers.take() {
            if let Ok(mut peers) = peers.lock() {
                if let Some(state) = peers.get_mut(&ip) {
                    state.active = state.active.saturating_sub(1);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    fn controller(config: AdmissionConfig, queue: usize) -> Admission {
        Admission::new(config, queue, &MetricsRegistry::new())
    }

    #[test]
    fn classifies_endpoints() {
        assert_eq!(classify("/healthz"), EndpointClass::Critical);
        assert_eq!(classify("/metrics"), EndpointClass::Critical);
        assert_eq!(classify("/api/compare"), EndpointClass::Expensive);
        assert_eq!(classify("/boxplot"), EndpointClass::Expensive);
        assert_eq!(classify("/api/runs"), EndpointClass::Normal);
        assert_eq!(classify("/"), EndpointClass::Normal);
    }

    #[test]
    fn per_peer_cap_releases_on_drop() {
        let admission = controller(
            AdmissionConfig {
                max_per_peer: 2,
                ..AdmissionConfig::default()
            },
            8,
        );
        let a = admission.admit_conn(Some(ip(1))).unwrap();
        let _b = admission.admit_conn(Some(ip(1))).unwrap();
        assert!(admission.admit_conn(Some(ip(1))).is_none(), "cap reached");
        // A different peer is unaffected.
        assert!(admission.admit_conn(Some(ip(2))).is_some());
        drop(a);
        assert!(
            admission.admit_conn(Some(ip(1))).is_some(),
            "slot released on drop"
        );
    }

    #[test]
    fn token_bucket_limits_sustained_rate() {
        let admission = controller(
            AdmissionConfig {
                rate_per_peer: 1.0,
                burst: 2.0,
                ..AdmissionConfig::default()
            },
            8,
        );
        let peer = Some(ip(1));
        assert_eq!(
            admission.admit_request(peer, EndpointClass::Normal, false),
            AdmitDecision::Admit
        );
        assert_eq!(
            admission.admit_request(peer, EndpointClass::Normal, false),
            AdmitDecision::Admit
        );
        let refused = admission.admit_request(peer, EndpointClass::Normal, false);
        assert!(
            matches!(refused, AdmitDecision::RateLimited { .. }),
            "burst of 2 exhausted, got {refused:?}"
        );
        assert_eq!(
            refused.retry_after_secs(),
            Some(1),
            "one token refills within a second at 1 rps"
        );
        // Critical endpoints bypass the bucket entirely.
        assert_eq!(
            admission.admit_request(peer, EndpointClass::Critical, false),
            AdmitDecision::Admit
        );
    }

    #[test]
    fn backlog_sheds_expensive_first() {
        let admission = controller(AdmissionConfig::default(), 4);
        for _ in 0..3 {
            admission.note_queued();
        }
        assert!(matches!(
            admission.admit_request(Some(ip(1)), EndpointClass::Expensive, false),
            AdmitDecision::ShedExpensive { .. }
        ));
        assert_eq!(
            admission.admit_request(Some(ip(1)), EndpointClass::Normal, false),
            AdmitDecision::Admit,
            "cheap endpoints still served"
        );
        admission.note_dequeued();
        admission.note_dequeued();
        assert_eq!(
            admission.admit_request(Some(ip(1)), EndpointClass::Expensive, false),
            AdmitDecision::Admit,
            "backlog cleared"
        );
    }

    #[test]
    fn degraded_store_forces_breaker_for_expensive_only() {
        let admission = controller(AdmissionConfig::default(), 8);
        let refused = admission.admit_request(Some(ip(1)), EndpointClass::Expensive, true);
        assert!(matches!(refused, AdmitDecision::BreakerOpen { .. }));
        assert_eq!(
            refused.retry_after_secs(),
            Some(5),
            "degraded store with a closed breaker hints one full cooldown"
        );
        assert_eq!(
            admission.admit_request(Some(ip(1)), EndpointClass::Normal, true),
            AdmitDecision::Admit
        );
        assert_eq!(
            admission.admit_request(Some(ip(1)), EndpointClass::Critical, true),
            AdmitDecision::Admit
        );
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_probes_after_cooldown() {
        let admission = controller(
            AdmissionConfig {
                breaker_threshold: 3,
                breaker_cooldown: Duration::from_millis(20),
                ..AdmissionConfig::default()
            },
            8,
        );
        let peer = Some(ip(1));
        for _ in 0..2 {
            admission.record_outcome(EndpointClass::Expensive, false);
        }
        assert!(!admission.breaker_open(), "below threshold");
        // A success resets the run.
        admission.record_outcome(EndpointClass::Expensive, true);
        for _ in 0..3 {
            admission.record_outcome(EndpointClass::Expensive, false);
        }
        assert!(admission.breaker_open());
        let refused = admission.admit_request(peer, EndpointClass::Expensive, false);
        assert!(matches!(refused, AdmitDecision::BreakerOpen { .. }));
        assert_eq!(
            refused.retry_after_secs(),
            Some(1),
            "a 20ms cooldown rounds up to the 1s floor"
        );
        // Normal traffic is untouched by the breaker.
        assert_eq!(
            admission.admit_request(peer, EndpointClass::Normal, false),
            AdmitDecision::Admit
        );
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown over: a probe is admitted; its success closes.
        assert_eq!(
            admission.admit_request(peer, EndpointClass::Expensive, false),
            AdmitDecision::Admit
        );
        admission.record_outcome(EndpointClass::Expensive, true);
        assert!(!admission.breaker_open());
    }

    #[test]
    fn retry_after_tracks_bucket_refill_time() {
        // At 0.25 rps an empty bucket needs 4s to mint one token.
        let admission = controller(
            AdmissionConfig {
                rate_per_peer: 0.25,
                burst: 1.0,
                ..AdmissionConfig::default()
            },
            8,
        );
        let peer = Some(ip(9));
        assert_eq!(
            admission.admit_request(peer, EndpointClass::Normal, false),
            AdmitDecision::Admit
        );
        let refused = admission.admit_request(peer, EndpointClass::Normal, false);
        let Some(secs) = refused.retry_after_secs() else {
            panic!("empty bucket must refuse, got {refused:?}");
        };
        assert!((3..=4).contains(&secs), "refill hint ~4s, got {secs}");
    }

    #[test]
    fn unknown_peers_are_admitted() {
        let admission = controller(
            AdmissionConfig {
                max_per_peer: 1,
                rate_per_peer: 1.0,
                ..AdmissionConfig::default()
            },
            8,
        );
        let _a = admission.admit_conn(None).unwrap();
        let _b = admission.admit_conn(None).unwrap();
        assert_eq!(
            admission.admit_request(None, EndpointClass::Normal, false),
            AdmitDecision::Admit
        );
    }
}
