//! The read-through query cache.
//!
//! Rendered responses are cached under their normalized query string
//! (path plus sorted parameters), tagged with the *store generation* —
//! the monotonic counter [`iokc_store::KnowledgeStore::generation`]
//! bumps on every successful persist or delete. A lookup presenting a
//! newer generation than the cache holds empties it wholesale: any
//! write may change any view, and full invalidation is cheap, correct,
//! and easy to reason about.
//!
//! Entries are evicted least-recently-used once the byte budget is
//! exceeded. Hit/miss/eviction/invalidation/revalidation counts feed
//! the `explorerd.cache.*` metrics.
//!
//! The same `(generation, cache key)` pair that addresses an entry also
//! derives its strong [`etag`] validator: a store write bumps the
//! generation, which both empties the cache and changes every ETag, so
//! a `304 Not Modified` can never outlive the body it vouches for.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use iokc_obs::{Counter, MetricsRegistry};

struct Entry {
    content_type: &'static str,
    body: Arc<Vec<u8>>,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    generation: u64,
    bytes: usize,
    tick: u64,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to render.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Wholesale invalidations triggered by a store write.
    pub invalidations: u64,
    /// Conditional GETs answered `304 Not Modified` without a body.
    pub not_modified: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Bytes currently cached (body bytes, excluding keys).
    pub bytes: usize,
}

/// An LRU byte-budget cache of rendered responses, invalidated by store
/// generation.
pub struct QueryCache {
    inner: Mutex<Inner>,
    budget: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    not_modified: Counter,
}

/// The strong ETag for a response rendered from `key` at store
/// generation `generation`: the generation in clear (cheap to audit in
/// a packet capture) plus an FNV-1a 64 digest of the canonical cache
/// key, quoted per RFC 9110.
#[must_use]
pub fn etag(generation: u64, key: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("\"g{generation}-{hash:016x}\"")
}

impl QueryCache {
    /// A cache holding at most `budget` body bytes, reporting its
    /// counters through `metrics` as `explorerd.cache.*`.
    #[must_use]
    pub fn new(budget: usize, metrics: &MetricsRegistry) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                generation: 0,
                bytes: 0,
                tick: 0,
            }),
            budget,
            hits: metrics.counter("explorerd.cache.hits"),
            misses: metrics.counter("explorerd.cache.misses"),
            evictions: metrics.counter("explorerd.cache.evictions"),
            invalidations: metrics.counter("explorerd.cache.invalidations"),
            not_modified: metrics.counter("explorerd.cache.not_modified"),
        }
    }

    /// The configured byte budget — also the cap a streaming tee uses
    /// to abandon an in-flight cache copy that could never be stored.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Record a conditional GET answered `304 Not Modified`.
    pub fn note_not_modified(&self) {
        self.not_modified.inc();
    }

    /// Look up `key` at store generation `generation`. A generation
    /// newer than the cached one clears everything first.
    pub fn get(&self, key: &str, generation: u64) -> Option<(&'static str, Arc<Vec<u8>>)> {
        let Ok(mut inner) = self.inner.lock() else {
            return None;
        };
        self.sync_generation(&mut inner, generation);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.inc();
                Some((entry.content_type, Arc::clone(&entry.body)))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a rendered body for `key` at `generation`, evicting LRU
    /// entries as needed to stay within the byte budget. Bodies larger
    /// than the whole budget are not cached.
    pub fn put(&self, key: &str, generation: u64, content_type: &'static str, body: Arc<Vec<u8>>) {
        if body.len() > self.budget {
            return;
        }
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        self.sync_generation(&mut inner, generation);
        if inner.generation != generation {
            // A writer moved the store past `generation` while this
            // response rendered; the body is already stale.
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key.to_owned(),
            Entry {
                content_type,
                body: Arc::clone(&body),
                last_used: tick,
            },
        ) {
            inner.bytes -= old.body.len();
        }
        inner.bytes += body.len();
        while inner.bytes > self.budget {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= entry.body.len();
                self.evictions.inc();
            }
        }
    }

    fn sync_generation(&self, inner: &mut Inner, generation: u64) {
        if generation > inner.generation {
            if !inner.map.is_empty() {
                self.invalidations.inc();
            }
            inner.map.clear();
            inner.bytes = 0;
            inner.generation = generation;
        }
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = self
            .inner
            .lock()
            .map(|inner| (inner.map.len(), inner.bytes))
            .unwrap_or((0, 0));
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            not_modified: self.not_modified.get(),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<Vec<u8>> {
        Arc::new(text.as_bytes().to_vec())
    }

    #[test]
    fn read_through_hit_after_put() {
        let metrics = MetricsRegistry::new();
        let cache = QueryCache::new(1024, &metrics);
        assert!(cache.get("/api/runs?", 0).is_none());
        cache.put("/api/runs?", 0, "application/json", body("[]"));
        let (ct, b) = cache.get("/api/runs?", 0).unwrap();
        assert_eq!(ct, "application/json");
        assert_eq!(b.as_slice(), b"[]");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn newer_generation_invalidates_everything() {
        let metrics = MetricsRegistry::new();
        let cache = QueryCache::new(1024, &metrics);
        cache.put("a", 0, "text/plain; charset=utf-8", body("one"));
        cache.put("b", 0, "text/plain; charset=utf-8", body("two"));
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get("a", 1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn stale_put_is_dropped() {
        let metrics = MetricsRegistry::new();
        let cache = QueryCache::new(1024, &metrics);
        // The store advanced to generation 2 while this body rendered
        // against generation 1.
        assert!(cache.get("x", 2).is_none());
        cache.put("x", 1, "text/plain; charset=utf-8", body("stale"));
        assert!(cache.get("x", 2).is_none());
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let metrics = MetricsRegistry::new();
        let cache = QueryCache::new(10, &metrics);
        cache.put("a", 0, "text/plain; charset=utf-8", body("aaaa"));
        cache.put("b", 0, "text/plain; charset=utf-8", body("bbbb"));
        // Touch `a` so `b` is the least recently used.
        assert!(cache.get("a", 0).is_some());
        cache.put("c", 0, "text/plain; charset=utf-8", body("cccc"));
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("b", 0).is_none());
        assert!(cache.get("c", 0).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 10);
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let metrics = MetricsRegistry::new();
        let cache = QueryCache::new(4, &metrics);
        cache.put("big", 0, "text/plain; charset=utf-8", body("too large"));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.budget(), 4);
    }

    #[test]
    fn etags_are_strong_per_generation_and_key() {
        let a = etag(4, "/api/runs?");
        assert!(a.starts_with("\"g4-") && a.ends_with('"'));
        assert_eq!(a, etag(4, "/api/runs?"), "deterministic");
        assert_ne!(a, etag(5, "/api/runs?"), "generation bump changes it");
        assert_ne!(a, etag(4, "/api/runs?kind=io500"), "key changes it");
    }

    #[test]
    fn not_modified_counter_surfaces_in_stats() {
        let metrics = MetricsRegistry::new();
        let cache = QueryCache::new(64, &metrics);
        cache.note_not_modified();
        cache.note_not_modified();
        assert_eq!(cache.stats().not_modified, 2);
    }
}
