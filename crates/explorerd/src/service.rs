//! Routing and rendering: the paper's explorer views over HTTP.
//!
//! JSON API (mirroring §V-D's views):
//!
//! * `GET /api/runs` — run listing with `kind`, `api`, `command`,
//!   `min_tasks`/`max_tasks`, `op` filters and `sort`/`order`/`limit`;
//!   streamed with chunked encoding through the incremental JSON
//!   serializer, teeing into the cache;
//! * `GET /api/runs/{id}` — one benchmark object with per-iteration
//!   detail;
//! * `GET /api/compare?x=..&y=..&op=..&ids=..` — the multi-object
//!   comparison with runtime-selectable axes;
//! * `GET /api/boxplot?op=..` — the per-run throughput distribution
//!   overview;
//! * `GET /api/io500/{id}` — one IO500 object;
//! * `GET /api/agg?group=..&factor=..` — corpus analytics: group-by
//!   aggregation (count/min/max/mean/stddev/percentiles) pushed down
//!   into the store — streamed from summary projections, no knowledge
//!   deserialization;
//! * `GET /api/dist?group=..&factor=..` — per-group log2 histograms and
//!   percentile bands;
//! * `GET /api/corr?correlate=f1,f2,..` — pairwise Pearson correlation
//!   over numeric run factors;
//! * `GET /metrics` — the schema-1 metrics JSON (never cached);
//! * `GET /healthz` — liveness and store health (never cached; a
//!   degraded store still answers 200 with `status: "degraded"`).
//!
//! HTML pages (`/`, `/runs/{id}`, `/io500/{id}`, `/compare`,
//! `/boxplot`, `/dist`, `/corr`) embed the `iokc-analysis` text viewers
//! and SVG charts.
//!
//! Every response except `/metrics` and `/healthz` flows through the
//! read-through [`QueryCache`], keyed on the normalized query and the
//! store's write generation — and carries a strong `ETag` derived from
//! the same pair, so a client presenting `If-None-Match` gets a
//! body-less `304 Not Modified` until the next store write bumps the
//! generation.

use std::io;
use std::sync::{Arc, RwLock};

use iokc_analysis::{
    compare_summaries, overview_series, write_bar_chart, write_box_plot, write_heat_map,
    write_io500, write_knowledge, write_line_chart, ChartOptions, MetricAxis, OptionAxis, Series,
};
use iokc_core::model::Knowledge;
use iokc_obs::{Counter, DeadlineToken, Recorder, SpanStatus};
use iokc_store::{
    AggregateQuery, AggregateResult, DbError, Factor, GroupBy, KnowledgeStore, Query, RunKind,
    RunOrder, RunPredicate, RunSummary, Snapshot,
};
use iokc_util::json::Json;

use crate::cache::{self, CacheStats, QueryCache};
use crate::http::{BodySource, Request, Response};

/// The explorer service: store access, cache, and observability.
pub struct Explorer {
    store: Arc<RwLock<KnowledgeStore>>,
    cache: Arc<QueryCache>,
    recorder: Arc<Recorder>,
    requests: Counter,
    errors: Counter,
    deadline_exceeded: Counter,
}

/// A handler failure that maps onto an HTTP status.
enum RouteError {
    NotFound(String),
    BadQuery(String),
    /// The request's deadline budget ran out mid-query; the counters
    /// carry the scan's partial progress into the `504` body.
    Deadline {
        examined: usize,
        matched: usize,
    },
    Store(DbError),
}

impl From<DbError> for RouteError {
    fn from(e: DbError) -> RouteError {
        match e {
            DbError::Cancelled { examined, matched } => RouteError::Deadline { examined, matched },
            other => RouteError::Store(other),
        }
    }
}

type RouteResult = Result<Response, RouteError>;

impl Explorer {
    /// Build the service over a shared store. Cache counters and
    /// request metrics register with the recorder's registry.
    #[must_use]
    pub fn new(
        store: Arc<RwLock<KnowledgeStore>>,
        cache_bytes: usize,
        recorder: Arc<Recorder>,
    ) -> Explorer {
        let metrics = recorder.metrics();
        Explorer {
            store,
            cache: Arc::new(QueryCache::new(cache_bytes, &metrics)),
            requests: metrics.counter("explorerd.requests"),
            errors: metrics.counter("explorerd.errors"),
            deadline_exceeded: metrics.counter("http.deadline_exceeded"),
            recorder,
        }
    }

    /// The shared store handle.
    #[must_use]
    pub fn store(&self) -> Arc<RwLock<KnowledgeStore>> {
        Arc::clone(&self.store)
    }

    /// Cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Handle one parsed request under `deadline`: route, render, record.
    /// Pass [`DeadlineToken::unbounded()`] for no budget. Store query
    /// scans poll the token; when the budget runs out mid-scan the
    /// request answers `504` with partial-progress counters instead of
    /// pinning the worker, and `http.deadline_exceeded` ticks. Never
    /// panics; failures become `4xx`/`5xx` responses.
    pub fn handle(&self, req: &Request, deadline: &DeadlineToken) -> Response {
        self.requests.inc();
        let span =
            self.recorder
                .start_span("http.request", None, Some("analysis"), Some("explorerd"));
        let response = match self.route(req, deadline) {
            Ok(response) => response,
            Err(RouteError::NotFound(what)) => Response::error(404, &what),
            Err(RouteError::BadQuery(what)) => Response::error(400, &what),
            Err(RouteError::Deadline { examined, matched }) => {
                self.deadline_exceeded.inc();
                let body = Json::obj(vec![
                    ("error", Json::from("deadline exceeded")),
                    ("rows_examined", Json::from(examined as u64)),
                    ("rows_matched", Json::from(matched as u64)),
                ]);
                let mut resp = Response::json(&body);
                resp.status = 504;
                resp
            }
            Err(RouteError::Store(e)) => {
                self.errors.inc();
                Response::error(500, &format!("store error: {e}"))
            }
        };
        let status = response.status;
        self.recorder.log(
            Some(span.id),
            &format!("{} {} -> {status}", req.method, req.path),
        );
        let ns = self.recorder.end_span(
            &span,
            if status < 500 {
                SpanStatus::Ok
            } else {
                SpanStatus::Failed
            },
        );
        self.recorder.observe("explorerd.request_ns", ns as f64);
        self.recorder
            .counter(&format!("explorerd.status.{}xx", status / 100))
            .inc();
        response
    }

    fn route(&self, req: &Request, deadline: &DeadlineToken) -> RouteResult {
        if req.method != "GET" {
            let mut resp = Response::error(405, "only GET is supported");
            resp.headers.push(("Allow", "GET".to_owned()));
            return Ok(resp);
        }
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match segments.as_slice() {
            [] => {
                let deadline = deadline.clone();
                self.cached_html(req, req.normalized(), move |store, out| {
                    index_page(store, &deadline, out)
                })
            }
            ["metrics"] => {
                self.export_health_gauges();
                Ok(Response::json(&self.recorder.metrics().to_json()))
            }
            ["healthz"] => self.healthz(),
            ["api", "runs"] => self.api_runs(req, deadline),
            ["api", "runs", id] => {
                let id = parse_run_id(id)?;
                self.cached_json(req, req.normalized(), move |store| {
                    let k = load_benchmark(store, id)?;
                    Ok(k.to_json())
                })
            }
            ["api", "io500", id] => {
                let id = parse_run_id(id)?;
                self.cached_json(req, req.normalized(), move |store| {
                    let k = store
                        .load_io500(id)?
                        .ok_or_else(|| RouteError::NotFound(format!("no io500 run {id}")))?;
                    Ok(k.to_json())
                })
            }
            ["api", "compare"] => {
                let spec = CompareSpec::from_request(req)?;
                let deadline = deadline.clone();
                self.cached_json(req, spec.cache_key("/api/compare"), move |store| {
                    compare_json(store, &spec, &deadline)
                })
            }
            ["api", "boxplot"] => {
                let op = req.param("op").unwrap_or("write").to_owned();
                let deadline = deadline.clone();
                self.cached_json(req, format!("/api/boxplot:op={op}"), move |store| {
                    boxplot_json(store, &op, &deadline)
                })
            }
            ["api", "agg"] => {
                let spec = AggSpec::from_request(req)?;
                let deadline = deadline.clone();
                self.cached_json(req, spec.cache_key("/api/agg"), move |store| {
                    let result = store.aggregate(&spec.query, &deadline)?;
                    Ok(agg_json(&spec, &result))
                })
            }
            ["api", "dist"] => {
                let spec = AggSpec::from_request(req)?;
                let deadline = deadline.clone();
                self.cached_json(req, spec.cache_key("/api/dist"), move |store| {
                    let result = store.aggregate(&spec.query, &deadline)?;
                    Ok(dist_json(&spec, &result))
                })
            }
            ["api", "corr"] => {
                let spec = AggSpec::from_request(req)?;
                let deadline = deadline.clone();
                self.cached_json(req, spec.cache_key("/api/corr"), move |store| {
                    let result = store.aggregate(&spec.query, &deadline)?;
                    corr_json(&result)
                })
            }
            ["dist"] => {
                let spec = AggSpec::from_request(req)?;
                let deadline = deadline.clone();
                self.cached_html(req, spec.cache_key("/dist"), move |store, out| {
                    dist_page(store, &spec, &deadline, out)
                })
            }
            ["corr"] => {
                let spec = AggSpec::from_request(req)?;
                let deadline = deadline.clone();
                self.cached_html(req, spec.cache_key("/corr"), move |store, out| {
                    corr_page(store, &spec, &deadline, out)
                })
            }
            ["runs", id] => {
                let id = parse_run_id(id)?;
                self.cached_html(req, req.normalized(), move |store, out| {
                    run_page(store, id, out)
                })
            }
            ["io500", id] => {
                let id = parse_run_id(id)?;
                self.cached_html(req, req.normalized(), move |store, out| {
                    io500_page(store, id, out)
                })
            }
            ["compare"] => {
                let spec = CompareSpec::from_request(req)?;
                let deadline = deadline.clone();
                self.cached_html(req, spec.cache_key("/compare"), move |store, out| {
                    compare_page(store, &spec, &deadline, out)
                })
            }
            ["boxplot"] => {
                let op = req.param("op").unwrap_or("write").to_owned();
                let deadline = deadline.clone();
                self.cached_html(req, format!("/boxplot:op={op}"), move |store, out| {
                    boxplot_page(store, &op, &deadline, out)
                })
            }
            _ => Err(RouteError::NotFound(format!(
                "no route for {} (try /, /api/runs, /api/compare, /api/boxplot, /api/agg, \
                 /api/dist, /api/corr, /metrics, /healthz)",
                req.path
            ))),
        }
    }

    /// `GET /healthz` — liveness + store health, never cached. Always
    /// answers 200: a degraded store still serves reads, and the body
    /// says so (`status: "degraded"`, `read_only: true`) so probes and
    /// load balancers can distinguish "up but wounded" from "down".
    fn healthz(&self) -> RouteResult {
        let store = self.store.read().map_err(|_| poisoned())?;
        let health = store.health();
        let mut fields = vec![
            ("status", Json::from(health.status())),
            ("read_only", Json::from(store.is_read_only())),
            ("generation", Json::from(store.generation())),
        ];
        if let Some(detail) = health.detail() {
            fields.push(("detail", Json::from(detail)));
        }
        Ok(Response::json(&Json::obj(fields)))
    }

    /// Mirror `/healthz` into gauges so `/metrics` alone tells the whole
    /// story: `store.health.{ok,recovered,degraded}` are a one-hot
    /// encoding of the store's health, and `store.read_only` flags
    /// read-only (degraded) operation.
    fn export_health_gauges(&self) {
        let Ok(store) = self.store.read() else {
            return;
        };
        let status = store.health().status();
        let metrics = self.recorder.metrics();
        metrics
            .gauge("store.health.ok")
            .set(u64::from(status == "ok"));
        metrics
            .gauge("store.health.recovered")
            .set(u64::from(status == "recovered"));
        metrics
            .gauge("store.health.degraded")
            .set(u64::from(status == "degraded"));
        metrics
            .gauge("store.read_only")
            .set(u64::from(store.is_read_only()));
    }

    /// Is the store currently degraded? The server's circuit breaker
    /// fast-fails expensive endpoints while this is true.
    #[must_use]
    pub fn store_degraded(&self) -> bool {
        self.store
            .read()
            .map(|store| store.health().status() == "degraded")
            .unwrap_or(true)
    }

    /// Pin a snapshot of the store and release the read lock
    /// immediately: rendering then runs entirely unlocked against the
    /// pinned generation, so a slow page never delays ingest (and
    /// concurrent saves or compaction never tear a response).
    fn pin(&self) -> Result<Snapshot, RouteError> {
        let store = self.store.read().map_err(|_| poisoned())?;
        Ok(store.snapshot())
    }

    /// The store's current write generation, read under the lock
    /// without pinning. Pinning clones the active generation — O(its
    /// size) — so the cache-hit and `304` fast paths, which only need
    /// the generation number for the validator, must not pay it.
    fn generation(&self) -> Result<u64, RouteError> {
        let store = self.store.read().map_err(|_| poisoned())?;
        Ok(store.generation())
    }

    /// The no-render fast path shared by every cacheable endpoint:
    /// compute the validator from the current generation, answer `304`
    /// if the client already holds the body, or serve it straight from
    /// the cache. Returns `None` on a miss — only then does the caller
    /// pin a snapshot and render.
    fn fast_path(
        &self,
        req: &Request,
        key: &str,
        content_type: &'static str,
    ) -> Result<Option<Response>, RouteError> {
        let generation = self.generation()?;
        let tag = cache::etag(generation, key);
        if let Some(resp) = self.check_not_modified(req, content_type, &tag) {
            return Ok(Some(resp));
        }
        if let Some((cached_type, body)) = self.cache.get(key, generation) {
            let mut resp = Response::full(cached_type, body);
            resp.headers.push(("ETag", tag));
            return Ok(Some(resp));
        }
        Ok(None)
    }

    /// Conditional-GET preamble shared by every cacheable endpoint: the
    /// strong validator for `key` at `generation`, and the `304` if the
    /// client already holds it. `/metrics` and `/healthz` never come
    /// through here.
    fn check_not_modified(
        &self,
        req: &Request,
        content_type: &'static str,
        tag: &str,
    ) -> Option<Response> {
        if req.if_none_match.as_deref() == Some(tag) {
            self.cache.note_not_modified();
            return Some(Response::not_modified(content_type, tag.to_owned()));
        }
        None
    }

    /// Read-through JSON endpoint: serve from cache or render against a
    /// pinned [`Snapshot`] — outside the store lock — and fill the
    /// cache. Typed-query endpoints pass a canonical key derived from
    /// the parsed query, so two request strings that parse identically
    /// share one entry (and one ETag).
    fn cached_json(
        &self,
        req: &Request,
        key: String,
        render: impl FnOnce(&Snapshot) -> Result<Json, RouteError>,
    ) -> RouteResult {
        if let Some(resp) = self.fast_path(req, &key, "application/json")? {
            return Ok(resp);
        }
        // Miss: pin and render. Re-derive the validator from the pinned
        // snapshot — a writer may have bumped the generation between the
        // fast-path read and the pin.
        let snapshot = self.pin()?;
        let generation = snapshot.generation();
        let tag = cache::etag(generation, &key);
        let json = render(&snapshot)?;
        let body = Arc::new(json.to_compact().into_bytes());
        self.cache
            .put(&key, generation, "application/json", Arc::clone(&body));
        let mut resp = Response::full("application/json", body);
        resp.headers.push(("ETag", tag));
        Ok(resp)
    }

    /// Read-through HTML endpoint: snapshot-then-render, unlocked.
    fn cached_html(
        &self,
        req: &Request,
        key: String,
        render: impl FnOnce(&Snapshot, &mut String) -> Result<(), RouteError>,
    ) -> RouteResult {
        if let Some(resp) = self.fast_path(req, &key, "text/html; charset=utf-8")? {
            return Ok(resp);
        }
        let snapshot = self.pin()?;
        let generation = snapshot.generation();
        let tag = cache::etag(generation, &key);
        let mut page = String::new();
        render(&snapshot, &mut page)?;
        let body = Arc::new(page.into_bytes());
        self.cache.put(
            &key,
            generation,
            "text/html; charset=utf-8",
            Arc::clone(&body),
        );
        let mut resp = Response::full("text/html; charset=utf-8", body);
        resp.headers.push(("ETag", tag));
        Ok(resp)
    }

    /// `GET /api/runs`: the one endpoint whose body grows with the
    /// store, so a cache miss *streams* — [`RunsStream`] pulls bounded
    /// pages from the pinned snapshot as the socket drains, teeing the
    /// bytes into the cache. The first page is fetched here, inside the
    /// handler, so query and deadline errors (`400`, `504`) surface as
    /// proper statuses before any body byte is committed.
    fn api_runs(&self, req: &Request, deadline: &DeadlineToken) -> RouteResult {
        let spec = RunsQuery::from_request(req)?;
        // The cache keys on the *typed* query: `?api=X&sort=id` and
        // `?sort=id&api=X` (or an explicit `order=asc`) land on the
        // same entry.
        let key = format!("/api/runs:{}", spec.to_query().cache_key());
        if let Some(resp) = self.fast_path(req, &key, "application/json")? {
            return Ok(resp);
        }
        let snapshot = self.pin()?;
        let generation = snapshot.generation();
        let tag = cache::etag(generation, &key);
        let stream = RunsStream::new(
            snapshot,
            spec,
            deadline.clone(),
            Arc::clone(&self.cache),
            key,
            generation,
        )?;
        let mut resp = Response::stream("application/json", Box::new(stream));
        resp.headers.push(("ETag", tag));
        Ok(resp)
    }
}

/// Rows per page pulled from the snapshot between socket writes: large
/// enough to amortize the query, small enough that a 100k-row listing
/// never holds more than one page of `Json` rows in memory.
const PAGE_ROWS: usize = 512;

/// The `/api/runs` body source: serializes the JSON array one bounded
/// page at a time against a pinned [`Snapshot`], so memory stays O(page)
/// no matter how many rows match. Bytes are teed into the cache while
/// the copy still fits the cache budget; the entry is committed only
/// when the whole body has been produced, so the cache never holds a
/// torn response.
struct RunsStream {
    snapshot: Snapshot,
    spec: RunsQuery,
    deadline: DeadlineToken,
    cache: Arc<QueryCache>,
    key: String,
    generation: u64,
    /// Rows pulled from the snapshot so far (relative to `spec.offset`).
    fetched: usize,
    /// The next page, fetched but not yet serialized.
    pending: Vec<Json>,
    /// No more pages after `pending`.
    finished_input: bool,
    opened: bool,
    first_row: bool,
    /// The cache tee; dropped once the body outgrows the cache budget.
    copy: Option<Vec<u8>>,
}

impl RunsStream {
    fn new(
        snapshot: Snapshot,
        spec: RunsQuery,
        deadline: DeadlineToken,
        cache: Arc<QueryCache>,
        key: String,
        generation: u64,
    ) -> Result<RunsStream, RouteError> {
        let mut stream = RunsStream {
            snapshot,
            spec,
            deadline,
            cache,
            key,
            generation,
            fetched: 0,
            pending: Vec::new(),
            finished_input: false,
            opened: false,
            first_row: true,
            copy: Some(Vec::new()),
        };
        // The first page runs under the handler: a deadline that is
        // already blown becomes a clean `504` instead of a torn stream.
        stream.fetch_page()?;
        Ok(stream)
    }

    fn fetch_page(&mut self) -> Result<(), RouteError> {
        let remaining = self.spec.limit.saturating_sub(self.fetched);
        let page = remaining.min(PAGE_ROWS);
        if page == 0 {
            self.finished_input = true;
            return Ok(());
        }
        let query = self
            .spec
            .page_query(self.spec.offset.saturating_add(self.fetched), page);
        let rows = self.snapshot.query_summaries(&query, &self.deadline)?;
        if rows.len() < page {
            self.finished_input = true;
        }
        self.fetched += rows.len();
        self.pending = rows.iter().map(summary_row).collect();
        Ok(())
    }

    fn tee(&mut self, bytes: &[u8]) {
        if let Some(copy) = self.copy.as_mut() {
            if copy.len() + bytes.len() > self.cache.budget() {
                // The full body can never be cached; stop copying.
                self.copy = None;
            } else {
                copy.extend_from_slice(bytes);
            }
        }
    }
}

/// A mid-stream failure: the chunked framing is simply never
/// terminated, so the client sees a truncated body, never a wrong one.
fn stream_error(e: RouteError) -> io::Error {
    let what = match e {
        RouteError::Deadline { .. } => "deadline exceeded mid-stream".to_owned(),
        RouteError::Store(err) => format!("store error: {err}"),
        RouteError::NotFound(what) | RouteError::BadQuery(what) => what,
    };
    io::Error::other(what)
}

impl BodySource for RunsStream {
    fn next_chunk(&mut self, out: &mut Vec<u8>) -> io::Result<bool> {
        if !self.opened {
            self.opened = true;
            out.push(b'[');
        }
        if self.pending.is_empty() && !self.finished_input {
            self.fetch_page().map_err(stream_error)?;
        }
        for row in self.pending.drain(..) {
            if self.first_row {
                self.first_row = false;
            } else {
                out.push(b',');
            }
            out.extend_from_slice(row.to_compact().as_bytes());
        }
        let more = !self.finished_input;
        if !more {
            out.push(b']');
        }
        self.tee(out);
        if !more {
            if let Some(copy) = self.copy.take() {
                self.cache.put(
                    &self.key,
                    self.generation,
                    "application/json",
                    Arc::new(copy),
                );
            }
        }
        Ok(more)
    }
}

fn poisoned() -> RouteError {
    RouteError::Store(DbError::Corrupt("store lock poisoned".to_owned()))
}

fn parse_run_id(raw: &str) -> Result<u64, RouteError> {
    raw.parse()
        .map_err(|_| RouteError::BadQuery(format!("`{raw}` is not a run id")))
}

fn load_benchmark(store: &Snapshot, id: u64) -> Result<Knowledge, RouteError> {
    store
        .load_knowledge(id)?
        .ok_or_else(|| RouteError::NotFound(format!("no benchmark run {id}")))
}

// ---------------------------------------------------------------- /api/runs

/// Parsed `/api/runs` query parameters; [`RunsQuery::to_query`] lowers
/// them onto the store's typed query engine.
struct RunsQuery {
    kind: Option<String>,
    api: Option<String>,
    command: Option<String>,
    op: Option<String>,
    min_tasks: u32,
    max_tasks: u32,
    sort: RunOrder,
    descending: bool,
    offset: usize,
    limit: usize,
}

impl RunsQuery {
    fn from_request(req: &Request) -> Result<RunsQuery, RouteError> {
        let sort = match req.param("sort").unwrap_or("id") {
            "id" => RunOrder::Id,
            "tasks" => RunOrder::Tasks,
            "command" => RunOrder::Command,
            "bw" => RunOrder::Bandwidth,
            other => {
                return Err(RouteError::BadQuery(format!(
                    "unknown sort `{other}` (expected id|tasks|command|bw)"
                )))
            }
        };
        let descending = match req.param("order").unwrap_or("asc") {
            "asc" => false,
            "desc" => true,
            other => {
                return Err(RouteError::BadQuery(format!(
                    "unknown order `{other}` (expected asc|desc)"
                )))
            }
        };
        if let Some(kind) = req.param("kind") {
            if kind != "benchmark" && kind != "io500" {
                return Err(RouteError::BadQuery(format!(
                    "unknown kind `{kind}` (expected benchmark|io500)"
                )));
            }
        }
        Ok(RunsQuery {
            kind: req.param("kind").map(str::to_owned),
            api: req.param("api").map(str::to_owned),
            command: req.param("command").map(str::to_owned),
            op: req.param("op").map(str::to_owned),
            min_tasks: parse_num(req, "min_tasks", 0)?,
            max_tasks: parse_num(req, "max_tasks", u32::MAX)?,
            sort,
            descending,
            offset: parse_num(req, "offset", 0)?,
            limit: parse_num(req, "limit", usize::MAX)?,
        })
    }

    /// The typed predicate. The api, command and op filters pin the
    /// benchmark kind — IO500 runs carry none of those fields, matching
    /// the endpoint's long-standing behavior of excluding them once
    /// such a filter is present.
    fn predicate(&self) -> RunPredicate {
        let mut conjuncts = Vec::new();
        match self.kind.as_deref() {
            Some("io500") => conjuncts.push(RunPredicate::Kind(RunKind::Io500)),
            Some(_) => conjuncts.push(RunPredicate::Kind(RunKind::Benchmark)),
            None => {}
        }
        if let Some(api) = &self.api {
            conjuncts.push(RunPredicate::Kind(RunKind::Benchmark));
            conjuncts.push(RunPredicate::ApiEq(api.clone()));
        }
        if let Some(text) = &self.command {
            conjuncts.push(RunPredicate::Kind(RunKind::Benchmark));
            conjuncts.push(RunPredicate::CommandContains(text.clone()));
        }
        if let Some(op) = &self.op {
            conjuncts.push(RunPredicate::HasOp(op.clone()));
        }
        if self.min_tasks > 0 || self.max_tasks < u32::MAX {
            conjuncts.push(RunPredicate::TasksBetween(self.min_tasks, self.max_tasks));
        }
        conjuncts
            .into_iter()
            .reduce(RunPredicate::and)
            .unwrap_or(RunPredicate::True)
    }

    /// The full requested query — used only for the canonical cache
    /// key; actual evaluation happens page by page.
    fn to_query(&self) -> Query {
        let mut query = Query::new(self.predicate())
            .order_by(self.sort)
            .offset(self.offset);
        if self.descending {
            query = query.descending();
        }
        if self.limit < usize::MAX {
            query = query.limit(self.limit);
        }
        query
    }

    /// One bounded window of the requested ordering, starting at the
    /// absolute store offset `offset`.
    fn page_query(&self, offset: usize, limit: usize) -> Query {
        let mut query = Query::new(self.predicate())
            .order_by(self.sort)
            .offset(offset)
            .limit(limit);
        if self.descending {
            query = query.descending();
        }
        query
    }
}

fn parse_num<T: std::str::FromStr>(req: &Request, name: &str, default: T) -> Result<T, RouteError> {
    match req.param(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| RouteError::BadQuery(format!("bad number for `{name}`: `{raw}`"))),
    }
}

fn summary_row(row: &RunSummary) -> Json {
    match row.kind {
        RunKind::Benchmark => Json::obj(vec![
            ("kind", Json::from("benchmark")),
            ("id", Json::from(row.id)),
            ("command", Json::from(row.command.as_str())),
            ("api", Json::from(row.api.as_str())),
            ("tasks", Json::from(u64::from(row.tasks))),
            ("block_size", Json::from(row.block_size)),
            ("transfer_size", Json::from(row.transfer_size)),
            (
                "write_mean_mib",
                row.op("write")
                    .map_or(Json::Null, |s| Json::from(s.mean_mib)),
            ),
            (
                "read_mean_mib",
                row.op("read")
                    .map_or(Json::Null, |s| Json::from(s.mean_mib)),
            ),
            ("warnings", Json::from(row.warning_count)),
        ]),
        RunKind::Io500 => Json::obj(vec![
            ("kind", Json::from("io500")),
            ("id", Json::from(row.id)),
            ("tasks", Json::from(u64::from(row.tasks))),
            ("bw_score", Json::from(row.bw_score)),
            ("md_score", Json::from(row.md_score)),
            ("total_score", Json::from(row.total_score)),
            ("warnings", Json::from(row.warning_count)),
        ]),
    }
}

// -------------------------------------------------------------- /api/compare

/// Parsed `/api/compare` parameters: axes, operation, and a typed
/// predicate pushed down into the query engine.
struct CompareSpec {
    x: OptionAxis,
    y: MetricAxis,
    op: String,
    predicate: RunPredicate,
}

impl CompareSpec {
    fn from_request(req: &Request) -> Result<CompareSpec, RouteError> {
        let op = req.param("op").unwrap_or("write").to_owned();
        let x = match req.param("x").unwrap_or("transfer_size") {
            "transfer_size" => OptionAxis::TransferSize,
            "block_size" => OptionAxis::BlockSize,
            "tasks" => OptionAxis::Tasks,
            "segments" => OptionAxis::Segments,
            "clients_per_node" => OptionAxis::ClientsPerNode,
            other => {
                return Err(RouteError::BadQuery(format!(
                    "unknown x axis `{other}` (expected transfer_size|block_size|tasks|segments|clients_per_node)"
                )))
            }
        };
        let y = match req.param("y").unwrap_or("mean_bw") {
            "mean_bw" => MetricAxis::MeanBandwidth(op.clone()),
            "max_bw" => MetricAxis::MaxBandwidth(op.clone()),
            "mean_ops" => MetricAxis::MeanOps(op.clone()),
            other => {
                return Err(RouteError::BadQuery(format!(
                    "unknown y axis `{other}` (expected mean_bw|max_bw|mean_ops)"
                )))
            }
        };
        let mut conjuncts = vec![RunPredicate::Kind(RunKind::Benchmark)];
        if let Some(raw) = req.param("ids") {
            let mut ids = Vec::new();
            for piece in raw.split(',').filter(|p| !p.is_empty()) {
                ids.push(piece.parse().map_err(|_| {
                    RouteError::BadQuery(format!("`{piece}` in ids is not a run id"))
                })?);
            }
            conjuncts.push(RunPredicate::IdIn(ids));
        }
        if let Some(api) = req.param("api") {
            conjuncts.push(RunPredicate::ApiEq(api.to_owned()));
        }
        if let Some(text) = req.param("command") {
            conjuncts.push(RunPredicate::CommandContains(text.to_owned()));
        }
        let predicate = conjuncts
            .into_iter()
            .reduce(RunPredicate::and)
            .unwrap_or(RunPredicate::True);
        Ok(CompareSpec {
            x,
            y,
            op,
            predicate,
        })
    }

    /// Canonical cache key: route prefix + typed predicate + axes.
    fn cache_key(&self, route: &str) -> String {
        format!(
            "{route}:{}|x={:?}|y={:?}",
            Query::new(self.predicate.clone()).cache_key(),
            self.x,
            self.y,
        )
    }

    fn points(
        &self,
        store: &Snapshot,
        deadline: &DeadlineToken,
    ) -> Result<Vec<iokc_analysis::ComparisonPoint>, RouteError> {
        let rows = store.query_summaries(&Query::new(self.predicate.clone()), deadline)?;
        Ok(compare_summaries(&rows, self.x, &self.y))
    }
}

fn compare_json(
    store: &Snapshot,
    spec: &CompareSpec,
    deadline: &DeadlineToken,
) -> Result<Json, RouteError> {
    let points = spec.points(store, deadline)?;
    Ok(Json::obj(vec![
        ("x_label", Json::from(spec.x.label())),
        ("y_label", Json::from(spec.y.label())),
        ("operation", Json::from(spec.op.as_str())),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("id", p.knowledge_id.map_or(Json::Null, Json::from)),
                            ("command", Json::from(p.command.as_str())),
                            ("x", Json::from(p.x)),
                            ("y", Json::from(p.y)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]))
}

// -------------------------------------------------------------- /api/boxplot

fn boxplot_json(store: &Snapshot, op: &str, deadline: &DeadlineToken) -> Result<Json, RouteError> {
    let boxes = overview_series(&store.boxplot_series(&RunPredicate::True, op, deadline)?);
    Ok(Json::obj(vec![
        ("operation", Json::from(op)),
        (
            "boxes",
            Json::Arr(
                boxes
                    .iter()
                    .map(|(label, d)| {
                        Json::obj(vec![
                            ("label", Json::from(label.as_str())),
                            ("n", Json::from(d.n)),
                            ("min", Json::from(d.min)),
                            ("q1", Json::from(d.q1)),
                            ("median", Json::from(d.median)),
                            ("q3", Json::from(d.q3)),
                            ("max", Json::from(d.max)),
                            ("mean", Json::from(d.mean)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]))
}

// ------------------------------------------------- /api/agg /api/dist /api/corr

/// Parsed corpus-analytics parameters, shared by `/api/agg`,
/// `/api/dist`, `/api/corr` and their HTML twins: a group-by dimension,
/// a metric factor, optional correlation factors, and an optional
/// `kind` filter — all lowered onto one [`AggregateQuery`] the store
/// evaluates without deserializing any knowledge.
struct AggSpec {
    group: GroupBy,
    factor: Factor,
    query: AggregateQuery,
}

impl AggSpec {
    fn from_request(req: &Request) -> Result<AggSpec, RouteError> {
        let group_raw = req.param("group").unwrap_or("api");
        let group = GroupBy::parse(group_raw).ok_or_else(|| {
            RouteError::BadQuery(format!(
                "unknown group `{group_raw}` (expected all|kind|api|tasks|xfer)"
            ))
        })?;
        let factor_raw = req.param("factor").unwrap_or("bw");
        let factor = Factor::parse(factor_raw).ok_or_else(|| {
            RouteError::BadQuery(format!(
                "unknown factor `{factor_raw}` \
                 (expected bw|bw_score|md_score|total_score|tasks|xfer|block|warnings)"
            ))
        })?;
        let mut query = AggregateQuery::new(group, factor);
        match req.param("kind") {
            Some("benchmark") => {
                query = query.with_predicate(RunPredicate::Kind(RunKind::Benchmark));
            }
            Some("io500") => query = query.with_predicate(RunPredicate::Kind(RunKind::Io500)),
            Some(other) => {
                return Err(RouteError::BadQuery(format!(
                    "unknown kind `{other}` (expected benchmark|io500)"
                )))
            }
            None => {}
        }
        // `/api/corr` defaults to the IO500 score factors; the others
        // correlate only on request.
        let correlate_raw = req.param("correlate").or(match req.path.as_str() {
            "/api/corr" | "/corr" => Some("bw_score,md_score,total_score,tasks"),
            _ => None,
        });
        if let Some(raw) = correlate_raw {
            let mut factors = Vec::new();
            for name in raw.split(',').filter(|n| !n.is_empty()) {
                factors.push(Factor::parse(name.trim()).ok_or_else(|| {
                    RouteError::BadQuery(format!("unknown correlation factor `{name}`"))
                })?);
            }
            query = query.with_correlation(&factors);
        }
        Ok(AggSpec {
            group,
            factor,
            query,
        })
    }

    /// Canonical cache key: route prefix + the typed aggregate query.
    fn cache_key(&self, route: &str) -> String {
        format!("{route}:{}", self.query.cache_key())
    }
}

/// Human label for a log2 histogram bin (`i32::MIN` is the ≤0 bin).
fn bin_label(bin: i32) -> String {
    if bin == i32::MIN {
        "<=0".to_owned()
    } else {
        format!("2^{bin}")
    }
}

fn percentiles_json(group: &iokc_store::GroupStats) -> Json {
    Json::Arr(
        group
            .percentiles
            .iter()
            .map(|(q, v)| Json::obj(vec![("q", Json::from(*q)), ("value", Json::from(*v))]))
            .collect(),
    )
}

fn agg_json(spec: &AggSpec, result: &AggregateResult) -> Json {
    let mut fields = vec![
        ("group_by", Json::from(spec.group.as_str())),
        ("factor", Json::from(spec.factor.as_str())),
        ("rows_aggregated", Json::from(result.rows_aggregated)),
        (
            "groups",
            Json::Arr(
                result
                    .groups
                    .iter()
                    .map(|g| {
                        Json::obj(vec![
                            ("key", Json::from(g.key.as_str())),
                            ("count", Json::from(g.count)),
                            ("min", Json::from(g.min)),
                            ("max", Json::from(g.max)),
                            ("mean", Json::from(g.mean)),
                            ("stddev", Json::from(g.stddev)),
                            ("percentiles", percentiles_json(g)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(corr) = &result.correlation {
        fields.push(("correlation", corr_matrix_json(corr)));
    }
    Json::obj(fields)
}

fn dist_json(spec: &AggSpec, result: &AggregateResult) -> Json {
    Json::obj(vec![
        ("group_by", Json::from(spec.group.as_str())),
        ("factor", Json::from(spec.factor.as_str())),
        ("rows_aggregated", Json::from(result.rows_aggregated)),
        (
            "groups",
            Json::Arr(
                result
                    .groups
                    .iter()
                    .map(|g| {
                        Json::obj(vec![
                            ("key", Json::from(g.key.as_str())),
                            ("count", Json::from(g.count)),
                            ("percentiles", percentiles_json(g)),
                            (
                                "histogram",
                                Json::Arr(
                                    g.histogram
                                        .iter()
                                        .map(|(bin, count)| {
                                            Json::obj(vec![
                                                ("bin", Json::from(bin_label(*bin))),
                                                ("count", Json::from(*count)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn corr_matrix_json(corr: &iokc_store::CorrelationMatrix) -> Json {
    Json::obj(vec![
        (
            "factors",
            Json::Arr(
                corr.factors
                    .iter()
                    .map(|f| Json::from(f.as_str()))
                    .collect(),
            ),
        ),
        (
            "matrix",
            Json::Arr(
                corr.matrix
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|r| Json::from(*r)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn corr_json(result: &AggregateResult) -> Result<Json, RouteError> {
    let corr = result
        .correlation
        .as_ref()
        .ok_or_else(|| RouteError::NotFound("no runs to correlate".to_owned()))?;
    Ok(Json::obj(vec![
        ("rows_aggregated", Json::from(result.rows_aggregated)),
        ("correlation", corr_matrix_json(corr)),
    ]))
}

// ----------------------------------------------------------------- HTML pages

fn html_escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn page_open(title: &str, out: &mut String) {
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>");
    out.push_str(&html_escape(title));
    out.push_str(
        "</title><style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}\
         td,th{border:1px solid #ccc;padding:4px 8px}</style></head><body>\n",
    );
    out.push_str(&format!("<h1>{}</h1>\n", html_escape(title)));
}

fn page_close(out: &mut String) {
    out.push_str("</body></html>\n");
}

fn index_page(
    store: &Snapshot,
    deadline: &DeadlineToken,
    out: &mut String,
) -> Result<(), RouteError> {
    // The listing needs only the projection rows, never the full join.
    let rows = store.query_summaries(&Query::all(), deadline)?;
    page_open("iokc knowledge explorer", out);
    out.push_str(
        "<p><a href=\"/api/runs\">/api/runs</a> · <a href=\"/compare\">/compare</a> · \
         <a href=\"/boxplot\">/boxplot</a> · <a href=\"/dist\">/dist</a> · \
         <a href=\"/corr\">/corr</a> · <a href=\"/metrics\">/metrics</a></p>\n",
    );
    out.push_str("<table><tr><th>kind</th><th>id</th><th>summary</th></tr>\n");
    for row in &rows {
        let id = row.id;
        match row.kind {
            RunKind::Benchmark => {
                out.push_str(&format!(
                    "<tr><td>benchmark</td><td><a href=\"/runs/{id}\">{id}</a></td><td>{}</td></tr>\n",
                    html_escape(&row.command)
                ));
            }
            RunKind::Io500 => {
                out.push_str(&format!(
                    "<tr><td>io500</td><td><a href=\"/io500/{id}\">{id}</a></td>\
                     <td>tasks {} | total score {:.4}</td></tr>\n",
                    row.tasks, row.total_score
                ));
            }
        }
    }
    out.push_str("</table>\n");
    page_close(out);
    Ok(())
}

fn run_page(store: &Snapshot, id: u64, out: &mut String) -> Result<(), RouteError> {
    let k = load_benchmark(store, id)?;
    page_open(&format!("run {id}"), out);
    let mut text = String::new();
    let _ = write_knowledge(&k, &mut text);
    out.push_str("<pre>");
    out.push_str(&html_escape(&text));
    out.push_str("</pre>\n");
    // Per-iteration bandwidth, one series per operation (Fig. 5 layout).
    let mut operations: Vec<&str> = Vec::new();
    for r in &k.results {
        if !operations.contains(&r.operation.as_str()) {
            operations.push(r.operation.as_str());
        }
    }
    let max_iter = k.results.iter().map(|r| r.iteration).max().unwrap_or(0);
    let categories: Vec<String> = (0..=max_iter).map(|i| format!("iter {i}")).collect();
    let series: Vec<Series> = operations
        .iter()
        .map(|op| Series {
            label: (*op).to_owned(),
            points: k
                .results
                .iter()
                .filter(|r| r.operation == **op)
                .map(|r| (f64::from(r.iteration), r.bw_mib))
                .collect(),
        })
        .collect();
    if !series.is_empty() {
        let _ = write_bar_chart(
            &categories,
            &series,
            &ChartOptions {
                title: format!("per-iteration bandwidth — run {id}"),
                x_label: "iteration".into(),
                y_label: "MiB/s".into(),
                ..ChartOptions::default()
            },
            out,
        );
    }
    page_close(out);
    Ok(())
}

fn io500_page(store: &Snapshot, id: u64, out: &mut String) -> Result<(), RouteError> {
    let k = store
        .load_io500(id)?
        .ok_or_else(|| RouteError::NotFound(format!("no io500 run {id}")))?;
    page_open(&format!("io500 run {id}"), out);
    let mut text = String::new();
    let _ = write_io500(&k, &mut text);
    out.push_str("<pre>");
    out.push_str(&html_escape(&text));
    out.push_str("</pre>\n");
    page_close(out);
    Ok(())
}

fn compare_page(
    store: &Snapshot,
    spec: &CompareSpec,
    deadline: &DeadlineToken,
    out: &mut String,
) -> Result<(), RouteError> {
    let points = spec.points(store, deadline)?;
    page_open("comparison", out);
    if points.is_empty() {
        out.push_str("<p>no comparable knowledge for this selection</p>\n");
    } else {
        let series = [Series {
            label: spec.y.label(),
            points: points.iter().map(|p| (p.x, p.y)).collect(),
        }];
        let _ = write_line_chart(
            &series,
            &ChartOptions {
                title: "comparison".into(),
                x_label: spec.x.label().to_owned(),
                y_label: spec.y.label(),
                ..ChartOptions::default()
            },
            out,
        );
    }
    page_close(out);
    Ok(())
}

/// `/dist` — the distribution page: per-group log2 histograms of the
/// selected factor as a grouped bar chart, plus the percentile table.
/// Everything is computed by the store's aggregation pushdown against
/// one pinned snapshot.
fn dist_page(
    store: &Snapshot,
    spec: &AggSpec,
    deadline: &DeadlineToken,
    out: &mut String,
) -> Result<(), RouteError> {
    let result = store.aggregate(&spec.query, deadline)?;
    page_open(
        &format!(
            "distribution — {} by {}",
            spec.factor.as_str(),
            spec.group.as_str()
        ),
        out,
    );
    if result.groups.is_empty() {
        out.push_str("<p>no matching runs</p>\n");
        page_close(out);
        return Ok(());
    }
    // Union of the populated bins across groups keeps the x axis shared.
    let mut bins: Vec<i32> = result
        .groups
        .iter()
        .flat_map(|g| g.histogram.iter().map(|(bin, _)| *bin))
        .collect();
    bins.sort_unstable();
    bins.dedup();
    let categories: Vec<String> = bins.iter().map(|b| bin_label(*b)).collect();
    let series: Vec<Series> = result
        .groups
        .iter()
        .map(|g| Series {
            label: g.key.clone(),
            points: bins
                .iter()
                .enumerate()
                .map(|(i, bin)| {
                    let count = g
                        .histogram
                        .iter()
                        .find(|(b, _)| b == bin)
                        .map_or(0.0, |(_, c)| *c as f64);
                    (i as f64, count)
                })
                .collect(),
        })
        .collect();
    let _ = write_bar_chart(
        &categories,
        &series,
        &ChartOptions {
            title: format!("{} distribution (log2 bins)", spec.factor.as_str()),
            x_label: spec.factor.as_str().to_owned(),
            y_label: "runs".into(),
            ..ChartOptions::default()
        },
        out,
    );
    out.push_str(
        "<table><tr><th>group</th><th>count</th><th>min</th><th>p50</th>\
         <th>mean</th><th>p99</th><th>max</th><th>stddev</th></tr>\n",
    );
    for g in &result.groups {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td>\
             <td>{:.3}</td><td>{:.3}</td><td>{:.3}</td><td>{:.3}</td></tr>\n",
            html_escape(&g.key),
            g.count,
            g.min,
            g.percentile(0.5).unwrap_or(f64::NAN),
            g.mean,
            g.percentile(0.99).unwrap_or(f64::NAN),
            g.max,
            g.stddev,
        ));
    }
    out.push_str("</table>\n");
    page_close(out);
    Ok(())
}

/// `/corr` — the pairwise correlation matrix of the requested factors
/// as an SVG heat map.
fn corr_page(
    store: &Snapshot,
    spec: &AggSpec,
    deadline: &DeadlineToken,
    out: &mut String,
) -> Result<(), RouteError> {
    let result = store.aggregate(&spec.query, deadline)?;
    page_open("factor correlation", out);
    match &result.correlation {
        None => out.push_str("<p>no runs to correlate</p>\n"),
        Some(corr) => {
            let _ = write_heat_map(
                &corr.matrix,
                &corr.factors,
                &ChartOptions {
                    title: format!("pairwise Pearson r over {} run(s)", result.rows_aggregated),
                    ..ChartOptions::default()
                },
                out,
            );
            out.push_str(&format!(
                "<p>factors: {}</p>\n",
                html_escape(&corr.factors.join(", "))
            ));
        }
    }
    page_close(out);
    Ok(())
}

fn boxplot_page(
    store: &Snapshot,
    op: &str,
    deadline: &DeadlineToken,
    out: &mut String,
) -> Result<(), RouteError> {
    let boxes = overview_series(&store.boxplot_series(&RunPredicate::True, op, deadline)?);
    page_open(&format!("throughput overview — {op}"), out);
    if boxes.is_empty() {
        out.push_str("<p>no runs with this operation</p>\n");
    } else {
        let _ = write_box_plot(
            &boxes,
            &ChartOptions {
                title: format!("{op} bandwidth distribution"),
                y_label: "MiB/s".into(),
                ..ChartOptions::default()
            },
            out,
        );
    }
    page_close(out);
    Ok(())
}
