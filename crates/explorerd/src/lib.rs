//! `iokc-explorerd` — the knowledge explorer as an HTTP service.
//!
//! The paper's Analysis phase (§V-D) is a *web-based* explorer: a
//! single-run viewer, per-iteration detail, multi-object comparison with
//! selectable axes, a box-plot overview, and an IO500 viewer. This crate
//! serves exactly those views over HTTP/1.1 from a [`KnowledgeStore`],
//! with no dependencies beyond the standard library:
//!
//! * [`http`] — a minimal HTTP/1.1 layer: request parsing with size and
//!   time limits, fixed-length and chunked responses, keep-alive;
//! * [`transport`] — the socket fault seam: every byte flows through a
//!   [`transport::Conn`] produced by the server's
//!   [`transport::Transport`], so a deterministic fault injector slots
//!   under the whole serving path in tests;
//! * [`pool`] — a fixed worker-thread pool behind a bounded queue; when
//!   the queue is full the server sheds load with `503 Retry-After`
//!   instead of stalling every client;
//! * [`admission`] — per-peer connection caps and rate limits, priority
//!   shedding of expensive endpoints, and a circuit breaker over them;
//! * [`cache`] — a read-through query cache keyed on the normalized
//!   query *and* the store's write generation, so persisting new
//!   knowledge invalidates every cached view;
//! * [`service`] — the routing table and JSON/HTML renderers, reusing
//!   the `iokc-analysis` viewers and charts;
//! * [`server`] — the accept loop wiring it together, with graceful
//!   shutdown through an `iokc-obs` [`iokc_obs::CancelToken`].
//!
//! Observability is first-class: every request runs under a span, the
//! request log streams through the recorder's `EventSink`, and
//! `GET /metrics` dumps the schema-1 metrics JSON.
//!
//! [`KnowledgeStore`]: iokc_store::KnowledgeStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod admission;
pub mod cache;
pub mod http;
pub mod pool;
pub mod server;
pub mod service;
pub mod transport;

pub use admission::{classify, Admission, AdmissionConfig, AdmitDecision, EndpointClass};
pub use cache::{CacheStats, QueryCache};
pub use http::{Body, Limits, Request, Response};
pub use pool::WorkerPool;
pub use server::{Server, ServerConfig};
pub use service::Explorer;
pub use transport::{Conn, FaultTransport, NetFaultPlan, StdTransport, Transport};
