//! `iokc-explorerd` — the knowledge explorer as an HTTP service.
//!
//! The paper's Analysis phase (§V-D) is a *web-based* explorer: a
//! single-run viewer, per-iteration detail, multi-object comparison with
//! selectable axes, a box-plot overview, and an IO500 viewer. This crate
//! serves exactly those views over HTTP/1.1 from a [`KnowledgeStore`],
//! with no dependencies beyond the standard library:
//!
//! * [`http`] — a minimal HTTP/1.1 layer: an incremental, resumable
//!   request parser with size limits, fixed-length and chunked
//!   responses, pull-based streaming bodies, keep-alive, and
//!   conditional-GET (`ETag` / `304 Not Modified`) plumbing;
//! * [`transport`] — the socket fault seam: every byte flows through a
//!   [`transport::Conn`] produced by the server's
//!   [`transport::Transport`], so a deterministic fault injector slots
//!   under the whole serving path in tests — plus the thin `poll(2)`
//!   readiness layer ([`transport::Poller`], [`transport::Waker`]) the
//!   reactor is built on;
//! * [`reactor`] — the readiness-driven event loop: one thread owns
//!   every socket in non-blocking mode and drives per-connection state
//!   machines (idle → reading → dispatched → writing → keep-alive),
//!   with idle-timeout and slow-loris enforcement on reactor timers;
//! * [`pool`] — the off-loop handler pool behind a bounded backlog with
//!   a completion queue; when the backlog is full the reactor sheds
//!   load with `503 Retry-After` instead of stalling every client;
//! * [`admission`] — per-peer connection caps and rate limits, priority
//!   shedding of expensive endpoints, and a circuit breaker over them,
//!   each refusal carrying a `Retry-After` derived from the limiter's
//!   actual refill or cooldown clock;
//! * [`cache`] — a read-through query cache keyed on the normalized
//!   query *and* the store's write generation, so persisting new
//!   knowledge invalidates every cached view — the same pair derives
//!   each response's strong ETag;
//! * [`service`] — the routing table and JSON/HTML renderers, reusing
//!   the `iokc-analysis` viewers and charts; `/api/runs` streams its
//!   rows in bounded pages pulled from a pinned snapshot as the socket
//!   drains;
//! * [`server`] — the assembly wiring it together, with graceful
//!   shutdown through an `iokc-obs` [`iokc_obs::CancelToken`].
//!
//! Observability is first-class: every request runs under a span, the
//! request log streams through the recorder's `EventSink`, connection
//! states surface as `explorerd.conns.*` gauges, and `GET /metrics`
//! dumps the schema-1 metrics JSON.
//!
//! [`KnowledgeStore`]: iokc_store::KnowledgeStore

// `deny`, not `forbid`: the one exception is the annotated FFI shim
// around `poll(2)` in `transport::sys`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod admission;
pub mod cache;
pub mod http;
pub mod pool;
pub mod reactor;
pub mod server;
pub mod service;
pub mod transport;

pub use admission::{classify, Admission, AdmissionConfig, AdmitDecision, EndpointClass};
pub use cache::{etag, CacheStats, QueryCache};
pub use http::{Body, BodySource, Limits, Parsed, Request, Response};
pub use pool::HandlerPool;
pub use server::{Server, ServerConfig};
pub use service::Explorer;
pub use transport::{
    Conn, FaultTransport, NetFaultPlan, PollSlot, Poller, StdTransport, Transport, Waker,
};
