//! The accept loop: listener, transport seam, admission control, worker
//! pool, load shedding, shutdown.
//!
//! One dedicated thread accepts connections, wraps them through the
//! configured [`Transport`] (production: raw sockets; chaos tests: the
//! fault injector), checks the per-peer connection cap, and feeds them
//! to the [`WorkerPool`]. A worker owns a connection for its whole
//! keep-alive lifetime, so the bounded queue gives real backpressure:
//! when all workers are busy and the queue is full, new connections are
//! answered `503 Retry-After` straight from the accept thread and
//! closed — shedding load in O(1) instead of letting every client queue
//! behind a stalled worker.
//!
//! Each parsed request runs under a wall-clock deadline budget
//! ([`ServerConfig::request_deadline`]) carried as an `iokc-obs`
//! [`DeadlineToken`] into the store's query scans; a request that blows
//! its budget answers `504` with partial-progress counters instead of
//! pinning the worker. The [`Admission`] controller layers per-peer
//! rate limits, priority shedding, and a circuit breaker on top — see
//! [`crate::admission`].
//!
//! Shutdown is cooperative through the shared [`CancelToken`]: the
//! accept loop stops admitting work, in-flight handlers notice the
//! token at their next read slice and close, and the pool drains and
//! joins. No thread is left hung on a silent peer.

use std::io;
use std::net::{IpAddr, SocketAddr, TcpListener};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use iokc_obs::{CancelToken, Counter, DeadlineToken, MetricsRegistry, Recorder};
use iokc_store::KnowledgeStore;

use crate::admission::{classify, Admission, AdmissionConfig, AdmitDecision, ConnPermit};
use crate::cache::CacheStats;
use crate::http::{read_request, Limits, RecvError, Response};
use crate::pool::{Submitter, WorkerPool};
use crate::service::Explorer;
use crate::transport::{Conn, StdTransport, Transport};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded accept-queue capacity; beyond it, load is shed with 503.
    pub queue: usize,
    /// Query-cache byte budget.
    pub cache_bytes: usize,
    /// Request parsing limits.
    pub limits: Limits,
    /// The socket seam every connection flows through. Production keeps
    /// the default [`StdTransport`]; chaos tests substitute a
    /// fault-injecting transport.
    pub transport: Arc<dyn Transport>,
    /// Wall-clock budget for one request, carried into store query
    /// scans; exceeding it answers `504`. Generous by default.
    pub request_deadline: Duration,
    /// Maximum simultaneous connections per peer address (0 = no cap).
    pub max_per_peer: usize,
    /// Sustained requests/second per peer address (0 = unlimited).
    pub rate_per_peer: f64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue: 64,
            cache_bytes: 1 << 20,
            limits: Limits::default(),
            transport: Arc::new(StdTransport),
            request_deadline: Duration::from_secs(30),
            max_per_peer: 0,
            rate_per_peer: 0.0,
        }
    }
}

/// One queued unit of work: a wrapped connection plus its per-peer
/// admission permit (released when the handler finishes).
struct ConnTask {
    conn: Box<dyn Conn>,
    permit: Option<ConnPermit>,
}

/// The classified connection-error counters — every accepted connection
/// that does not end in a clean response ends in exactly one of these.
#[derive(Clone)]
struct ConnObs {
    recv_closed: Counter,
    recv_timeout: Counter,
    recv_too_large: Counter,
    recv_malformed: Counter,
    recv_io: Counter,
    recv_cancelled: Counter,
    write_failed: Counter,
}

impl ConnObs {
    fn new(metrics: &MetricsRegistry) -> ConnObs {
        ConnObs {
            recv_closed: metrics.counter("explorerd.recv.closed"),
            recv_timeout: metrics.counter("explorerd.recv.timeout"),
            recv_too_large: metrics.counter("explorerd.recv.too_large"),
            recv_malformed: metrics.counter("explorerd.recv.malformed"),
            recv_io: metrics.counter("explorerd.recv.io"),
            recv_cancelled: metrics.counter("explorerd.recv.cancelled"),
            write_failed: metrics.counter("explorerd.write_failed"),
        }
    }
}

/// A running explorer server.
pub struct Server {
    local_addr: SocketAddr,
    explorer: Arc<Explorer>,
    recorder: Arc<Recorder>,
    cancel: CancelToken,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool<ConnTask>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept thread, and start
    /// serving `store`.
    pub fn start(
        config: ServerConfig,
        mut store: KnowledgeStore,
        recorder: Arc<Recorder>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cancel = CancelToken::new();
        // The store's query engine reports into the same registry the
        // service exposes at /metrics (index hits, full scans, pruning).
        store.attach_recorder(Arc::clone(&recorder));
        let store = Arc::new(RwLock::new(store));
        let explorer = Arc::new(Explorer::new(
            Arc::clone(&store),
            config.cache_bytes,
            Arc::clone(&recorder),
        ));
        let metrics = recorder.metrics();
        config
            .transport
            .attach_fault_counter(metrics.counter("explorerd.faults_injected"));
        let admission = Arc::new(Admission::new(
            AdmissionConfig {
                max_per_peer: config.max_per_peer,
                rate_per_peer: config.rate_per_peer,
                ..AdmissionConfig::default()
            },
            config.queue,
            &metrics,
        ));

        let pool = {
            let explorer = Arc::clone(&explorer);
            let limits = config.limits.clone();
            let cancel = cancel.clone();
            let admission = Arc::clone(&admission);
            let obs = ConnObs::new(&metrics);
            let request_deadline = config.request_deadline;
            WorkerPool::new(config.workers, config.queue, move |task: ConnTask| {
                admission.note_dequeued();
                handle_connection(
                    task.conn,
                    &explorer,
                    &limits,
                    &cancel,
                    &admission,
                    &obs,
                    request_deadline,
                );
                drop(task.permit);
            })
        };

        let accept = {
            let cancel = cancel.clone();
            let recorder = Arc::clone(&recorder);
            let submitter = pool.submitter();
            let transport = Arc::clone(&config.transport);
            let admission = Arc::clone(&admission);
            std::thread::Builder::new()
                .name("explorerd-accept".to_owned())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        transport.as_ref(),
                        &admission,
                        &submitter,
                        &cancel,
                        &recorder,
                    );
                })?
        };

        Ok(Server {
            local_addr,
            explorer,
            recorder,
            cancel,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared store — writes through this handle bump the
    /// generation and invalidate cached views.
    #[must_use]
    pub fn store(&self) -> Arc<RwLock<KnowledgeStore>> {
        self.explorer.store()
    }

    /// The metrics registry serving `/metrics`.
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.recorder.metrics()
    }

    /// Query-cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.explorer.cache_stats()
    }

    /// The cancellation token; `cancel()` initiates graceful shutdown.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (handlers observe the token within one read slice), join all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.cancel.cancel();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    transport: &dyn Transport,
    admission: &Admission,
    pool: &Submitter<ConnTask>,
    cancel: &CancelToken,
    recorder: &Arc<Recorder>,
) {
    let shed = recorder.counter("explorerd.shed");
    let accepted = recorder.counter("explorerd.connections");
    loop {
        if cancel.is_cancelled() {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                // The listener is non-blocking; accepted sockets get
                // their own timeouts in the handler.
                let _ = stream.set_nonblocking(false);
                accepted.inc();
                let conn = transport.wrap(stream);
                let Some(permit) = admission.admit_conn(Some(peer.ip())) else {
                    // Peer is over its concurrency cap: shed in O(1).
                    shed.inc();
                    shed_connection(conn);
                    continue;
                };
                let task = ConnTask {
                    conn,
                    permit: Some(permit),
                };
                match pool.try_submit(task) {
                    Ok(()) => admission.note_queued(),
                    Err(task) => {
                        shed.inc();
                        shed_connection(task.conn);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answer `503 Retry-After: 1` and close — the load-shedding path, run
/// on the accept thread so it stays O(1) regardless of worker state.
fn shed_connection(mut conn: Box<dyn Conn>) {
    let _ = conn.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = Response::unavailable(1).write(conn.as_mut(), false);
}

/// `429 Too Many Requests` with a `Retry-After` hint.
fn rate_limited() -> Response {
    let mut resp = Response::error(429, "per-peer rate limit exceeded, retry shortly");
    resp.headers.push(("Retry-After", "1".to_owned()));
    resp
}

/// Serve one connection for its keep-alive lifetime.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut conn: Box<dyn Conn>,
    explorer: &Explorer,
    limits: &Limits,
    cancel: &CancelToken,
    admission: &Admission,
    obs: &ConnObs,
    request_deadline: Duration,
) {
    let _ = conn.set_write_timeout(Some(Duration::from_secs(10)));
    let peer: Option<IpAddr> = conn.peer_addr().map(|a| a.ip());
    loop {
        if cancel.is_cancelled() {
            return;
        }
        match read_request(conn.as_mut(), limits, cancel) {
            Ok(req) => {
                let keep_alive = req.keep_alive && !cancel.is_cancelled();
                let class = classify(&req.path);
                let response = match admission.admit_request(peer, class, explorer.store_degraded())
                {
                    AdmitDecision::Admit => {
                        let deadline = DeadlineToken::with_budget(cancel.clone(), request_deadline);
                        let response = explorer.handle(&req, &deadline);
                        admission.record_outcome(class, response.status < 500);
                        response
                    }
                    AdmitDecision::RateLimited => rate_limited(),
                    AdmitDecision::ShedExpensive | AdmitDecision::BreakerOpen => {
                        Response::unavailable(1)
                    }
                };
                if response.write(conn.as_mut(), keep_alive).is_err() {
                    obs.write_failed.inc();
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Err(RecvError::Closed) => {
                obs.recv_closed.inc();
                return;
            }
            Err(RecvError::Cancelled) => {
                obs.recv_cancelled.inc();
                return;
            }
            Err(RecvError::Io(_)) => {
                obs.recv_io.inc();
                return;
            }
            Err(RecvError::Timeout) => {
                obs.recv_timeout.inc();
                let _ = Response::error(408, "request not received before the read deadline")
                    .write(conn.as_mut(), false);
                return;
            }
            Err(RecvError::TooLarge) => {
                obs.recv_too_large.inc();
                let _ = Response::error(400, "request head exceeds the size limit")
                    .write(conn.as_mut(), false);
                return;
            }
            Err(RecvError::Malformed(what)) => {
                obs.recv_malformed.inc();
                let _ = Response::error(400, &what).write(conn.as_mut(), false);
                return;
            }
        }
    }
}
