//! Server assembly: listener, transport seam, admission control, the
//! readiness-driven reactor, and the off-loop handler pool.
//!
//! One reactor thread owns every socket (see [`crate::reactor`]): it
//! accepts connections, wraps them through the configured
//! [`Transport`] (production: raw sockets; chaos tests: the fault
//! injector), enforces the global connection cap and the per-peer
//! concurrency cap, and multiplexes all connections through `poll(2)`
//! in non-blocking mode. Parsed requests are executed by a small
//! [`HandlerPool`] off the loop; finished
//! responses come back through a completion queue and are written
//! incrementally as each socket drains. When the pool's bounded
//! backlog is full, new requests are answered `503 Retry-After`
//! straight from the loop — shedding load in O(1) instead of letting
//! every client queue behind a stalled handler.
//!
//! Each admitted request runs under a wall-clock deadline budget
//! ([`ServerConfig::request_deadline`]) carried as an `iokc-obs`
//! [`DeadlineToken`] into the store's query scans; a request that blows
//! its budget answers `504` with partial-progress counters instead of
//! pinning a handler. The [`Admission`] controller layers per-peer
//! rate limits, priority shedding, and a circuit breaker on top — see
//! [`crate::admission`] — and every `429`/`503` derives its
//! `Retry-After` from the limiter's actual refill or cooldown clock.
//!
//! Shutdown is cooperative through the shared [`CancelToken`]: the
//! reactor stops accepting, reaps connections that are between
//! requests, drains dispatched and mid-write responses within a short
//! grace period, and joins the handler pool. No thread is left hung on
//! a silent peer.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use iokc_obs::{CancelToken, DeadlineToken, MetricsRegistry, Recorder};
use iokc_store::KnowledgeStore;

use crate::admission::{classify, Admission, AdmissionConfig};
use crate::cache::CacheStats;
use crate::http::Limits;
use crate::pool::HandlerPool;
use crate::reactor::{Completion, Job, Reactor, ReactorConfig};
use crate::service::Explorer;
use crate::transport::{StdTransport, Transport, Waker};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Handler threads executing store queries off the reactor loop.
    pub workers: usize,
    /// Bounded handler-backlog capacity; beyond it, load is shed with
    /// 503.
    pub queue: usize,
    /// Query-cache byte budget.
    pub cache_bytes: usize,
    /// Request parsing limits.
    pub limits: Limits,
    /// The socket seam every connection flows through. Production keeps
    /// the default [`StdTransport`]; chaos tests substitute a
    /// fault-injecting transport.
    pub transport: Arc<dyn Transport>,
    /// Wall-clock budget for one request, carried into store query
    /// scans; exceeding it answers `504`. Generous by default.
    pub request_deadline: Duration,
    /// Maximum simultaneous connections per peer address (0 = no cap).
    pub max_per_peer: usize,
    /// Sustained requests/second per peer address (0 = unlimited).
    pub rate_per_peer: f64,
    /// Maximum simultaneous open connections across all peers
    /// (0 = unlimited). Beyond it, new connections are shed with 503.
    pub max_conns: usize,
    /// How long a keep-alive connection may sit between requests before
    /// the reactor reaps it with a clean close.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue: 64,
            cache_bytes: 1 << 20,
            limits: Limits::default(),
            transport: Arc::new(StdTransport),
            request_deadline: Duration::from_secs(30),
            max_per_peer: 0,
            rate_per_peer: 0.0,
            max_conns: 0,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// A running explorer server.
pub struct Server {
    local_addr: SocketAddr,
    explorer: Arc<Explorer>,
    recorder: Arc<Recorder>,
    cancel: CancelToken,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the handler pool and the reactor thread, and start
    /// serving `store`.
    pub fn start(
        config: ServerConfig,
        mut store: KnowledgeStore,
        recorder: Arc<Recorder>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cancel = CancelToken::new();
        // The store's query engine reports into the same registry the
        // service exposes at /metrics (index hits, full scans, pruning).
        store.attach_recorder(Arc::clone(&recorder));
        let store = Arc::new(RwLock::new(store));
        let explorer = Arc::new(Explorer::new(
            Arc::clone(&store),
            config.cache_bytes,
            Arc::clone(&recorder),
        ));
        let metrics = recorder.metrics();
        config
            .transport
            .attach_fault_counter(metrics.counter("explorerd.faults_injected"));
        let admission = Arc::new(Admission::new(
            AdmissionConfig {
                max_per_peer: config.max_per_peer,
                rate_per_peer: config.rate_per_peer,
                ..AdmissionConfig::default()
            },
            config.queue,
            &metrics,
        ));
        let waker = Arc::new(Waker::new()?);

        let pool = {
            let explorer = Arc::clone(&explorer);
            let cancel = cancel.clone();
            let admission = Arc::clone(&admission);
            let request_deadline = config.request_deadline;
            let wake = Arc::clone(&waker);
            HandlerPool::new(
                config.workers,
                config.queue,
                move || wake.wake(),
                move |job: Job| {
                    admission.note_dequeued();
                    let class = classify(&job.request.path);
                    let deadline = DeadlineToken::with_budget(cancel.clone(), request_deadline);
                    let response = explorer.handle(&job.request, &deadline);
                    admission.record_outcome(class, response.status < 500);
                    Completion {
                        conn_id: job.conn_id,
                        response,
                    }
                },
            )
        };

        let reactor = Reactor {
            listener,
            transport: Arc::clone(&config.transport),
            admission,
            explorer: Arc::clone(&explorer),
            pool,
            waker: Arc::clone(&waker),
            cancel: cancel.clone(),
            recorder: Arc::clone(&recorder),
            config: ReactorConfig {
                limits: config.limits.clone(),
                idle_timeout: config.idle_timeout,
                max_conns: config.max_conns,
            },
        };
        let reactor = std::thread::Builder::new()
            .name("explorerd-reactor".to_owned())
            .spawn(move || reactor.run())?;

        Ok(Server {
            local_addr,
            explorer,
            recorder,
            cancel,
            waker,
            reactor: Some(reactor),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared store — writes through this handle bump the
    /// generation and invalidate cached views.
    #[must_use]
    pub fn store(&self) -> Arc<RwLock<KnowledgeStore>> {
        self.explorer.store()
    }

    /// The metrics registry serving `/metrics`.
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.recorder.metrics()
    }

    /// Query-cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.explorer.cache_stats()
    }

    /// The cancellation token; `cancel()` initiates graceful shutdown.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Graceful shutdown: stop accepting, drain in-flight responses
    /// within the reactor's grace period, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.cancel.cancel();
        self.waker.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}
