//! The accept loop: listener, worker pool, load shedding, shutdown.
//!
//! One dedicated thread accepts connections and feeds them to the
//! [`WorkerPool`]. A worker owns a connection for its whole keep-alive
//! lifetime, so the bounded queue gives real backpressure: when all
//! workers are busy and the queue is full, new connections are answered
//! `503 Retry-After` straight from the accept thread and closed —
//! shedding load in O(1) instead of letting every client queue behind a
//! stalled worker.
//!
//! Shutdown is cooperative through the shared [`CancelToken`]: the
//! accept loop stops admitting work, in-flight handlers notice the
//! token at their next read slice and close, and the pool drains and
//! joins. No thread is left hung on a silent peer.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use iokc_obs::{CancelToken, MetricsRegistry, Recorder};
use iokc_store::KnowledgeStore;

use crate::cache::CacheStats;
use crate::http::{read_request, Limits, RecvError, Response};
use crate::pool::{Submitter, WorkerPool};
use crate::service::Explorer;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded accept-queue capacity; beyond it, load is shed with 503.
    pub queue: usize,
    /// Query-cache byte budget.
    pub cache_bytes: usize,
    /// Request parsing limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue: 64,
            cache_bytes: 1 << 20,
            limits: Limits::default(),
        }
    }
}

/// A running explorer server.
pub struct Server {
    local_addr: SocketAddr,
    explorer: Arc<Explorer>,
    recorder: Arc<Recorder>,
    cancel: CancelToken,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool<TcpStream>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept thread, and start
    /// serving `store`.
    pub fn start(
        config: ServerConfig,
        mut store: KnowledgeStore,
        recorder: Arc<Recorder>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cancel = CancelToken::new();
        // The store's query engine reports into the same registry the
        // service exposes at /metrics (index hits, full scans, pruning).
        store.attach_recorder(Arc::clone(&recorder));
        let store = Arc::new(RwLock::new(store));
        let explorer = Arc::new(Explorer::new(
            Arc::clone(&store),
            config.cache_bytes,
            Arc::clone(&recorder),
        ));

        let pool = {
            let explorer = Arc::clone(&explorer);
            let limits = config.limits.clone();
            let cancel = cancel.clone();
            WorkerPool::new(config.workers, config.queue, move |stream: TcpStream| {
                handle_connection(stream, &explorer, &limits, &cancel);
            })
        };

        let accept = {
            let cancel = cancel.clone();
            let recorder = Arc::clone(&recorder);
            let submitter = pool.submitter();
            std::thread::Builder::new()
                .name("explorerd-accept".to_owned())
                .spawn(move || accept_loop(&listener, &submitter, &cancel, &recorder))?
        };

        Ok(Server {
            local_addr,
            explorer,
            recorder,
            cancel,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared store — writes through this handle bump the
    /// generation and invalidate cached views.
    #[must_use]
    pub fn store(&self) -> Arc<RwLock<KnowledgeStore>> {
        self.explorer.store()
    }

    /// The metrics registry serving `/metrics`.
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.recorder.metrics()
    }

    /// Query-cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.explorer.cache_stats()
    }

    /// The cancellation token; `cancel()` initiates graceful shutdown.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (handlers observe the token within one read slice), join all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.cancel.cancel();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    pool: &Submitter<TcpStream>,
    cancel: &CancelToken,
    recorder: &Arc<Recorder>,
) {
    let shed = recorder.counter("explorerd.shed");
    let accepted = recorder.counter("explorerd.connections");
    loop {
        if cancel.is_cancelled() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is non-blocking; accepted sockets get
                // their own timeouts in the handler.
                let _ = stream.set_nonblocking(false);
                accepted.inc();
                if let Err(stream) = pool.try_submit(stream) {
                    shed.inc();
                    shed_connection(stream);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answer `503 Retry-After: 1` and close — the load-shedding path, run
/// on the accept thread so it stays O(1) regardless of worker state.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = Response::unavailable(1).write(&mut stream, false);
}

/// Serve one connection for its keep-alive lifetime.
fn handle_connection(
    mut stream: TcpStream,
    explorer: &Explorer,
    limits: &Limits,
    cancel: &CancelToken,
) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    loop {
        if cancel.is_cancelled() {
            return;
        }
        match read_request(&mut stream, limits, cancel) {
            Ok(req) => {
                let keep_alive = req.keep_alive && !cancel.is_cancelled();
                let response = explorer.handle(&req);
                if response.write(&mut stream, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(RecvError::Closed | RecvError::Cancelled | RecvError::Io(_)) => return,
            Err(RecvError::Timeout) => {
                let _ = Response::error(408, "request not received before the read deadline")
                    .write(&mut stream, false);
                return;
            }
            Err(RecvError::TooLarge) => {
                let _ = Response::error(400, "request head exceeds the size limit")
                    .write(&mut stream, false);
                return;
            }
            Err(RecvError::Malformed(what)) => {
                let _ = Response::error(400, &what).write(&mut stream, false);
                return;
            }
        }
    }
}
