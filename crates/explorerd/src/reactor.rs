//! The readiness-driven connection engine.
//!
//! One thread owns every socket: it accepts, polls for readiness
//! through the [`Poller`], feeds buffered bytes to the incremental
//! parser, and drives each connection's state machine
//!
//! ```text
//!   accept → Idle ─first byte→ Reading ─head complete→ Dispatched
//!               ↑                                           │ completion
//!               └──────────── keep-alive ←─── Writing ←─────┘
//! ```
//!
//! Store-touching work never runs on the loop: parsed requests are
//! submitted to the [`HandlerPool`], whose workers execute
//! [`Explorer::handle`] and push the finished [`Response`] onto the
//! completion queue, ringing the [`Waker`] so the loop starts the
//! write within one poll cycle. Writes are incremental: the loop
//! drains a bounded `send_buf`, refilled from a [`BodySource`] one
//! page at a time, so a 100k-row listing is never materialized whole.
//!
//! Timers live on the loop too: `Reading` connections are bounded by
//! the head read deadline (slow-loris → `408`), `Idle` keep-alive
//! connections by the idle timeout (reaped with a clean close). Both
//! tick `explorerd.recv.timeout`.
//!
//! Counter identity is preserved exactly as under the old
//! thread-per-connection design: every accepted connection ticks
//! `explorerd.connections`, and a `Connection: close` client
//! contributes exactly one of `explorerd.shed`, `explorerd.requests`,
//! or one `explorerd.recv.*` counter. `explorerd.write_failed` stays
//! outside the identity and ticks only when a *served* (admitted or
//! admission-refused) response fails mid-write — best-effort error
//! responses (`400`/`408`) ignore write failures, as before.

use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iokc_obs::{CancelToken, Counter, Gauge, MetricsRegistry, Recorder};

use crate::admission::{classify, Admission, AdmitDecision, ConnPermit};
use crate::http::{
    encode_chunk, parse_request, Body, BodySource, Limits, Parsed, RecvError, Request, Response,
    CHUNK_TERMINATOR,
};
use crate::pool::HandlerPool;
use crate::service::Explorer;
use crate::transport::{Conn, PollSlot, Poller, Transport, Waker};

/// Upper bound on one poll sleep: cancellation, timers and (on the
/// portable fallback) completions are all observed within this slice.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// How long a shutting-down reactor waits for dispatched and writing
/// connections to finish before closing them outright.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(3);

/// One request handed to the handler pool.
pub(crate) struct Job {
    /// The reactor's connection id, echoed back in the completion.
    pub conn_id: u64,
    /// The parsed request.
    pub request: Request,
}

/// One finished response coming back from the handler pool.
pub(crate) struct Completion {
    /// The connection the response belongs to.
    pub conn_id: u64,
    /// The response to write.
    pub response: Response,
}

/// Reactor tuning, split off [`ServerConfig`](crate::ServerConfig).
pub(crate) struct ReactorConfig {
    pub limits: Limits,
    pub idle_timeout: Duration,
    pub max_conns: usize,
}

/// Everything the reactor thread owns.
pub(crate) struct Reactor {
    pub listener: TcpListener,
    pub transport: Arc<dyn Transport>,
    pub admission: Arc<Admission>,
    pub explorer: Arc<Explorer>,
    pub pool: HandlerPool<Job, Completion>,
    pub waker: Arc<Waker>,
    pub cancel: CancelToken,
    pub recorder: Arc<Recorder>,
    pub config: ReactorConfig,
}

/// The classified connection-error counters — every accepted connection
/// that does not end in a clean response ends in exactly one of these.
#[derive(Clone)]
struct ConnObs {
    recv_closed: Counter,
    recv_timeout: Counter,
    recv_too_large: Counter,
    recv_malformed: Counter,
    recv_io: Counter,
    recv_cancelled: Counter,
    write_failed: Counter,
}

impl ConnObs {
    fn new(metrics: &MetricsRegistry) -> ConnObs {
        ConnObs {
            recv_closed: metrics.counter("explorerd.recv.closed"),
            recv_timeout: metrics.counter("explorerd.recv.timeout"),
            recv_too_large: metrics.counter("explorerd.recv.too_large"),
            recv_malformed: metrics.counter("explorerd.recv.malformed"),
            recv_io: metrics.counter("explorerd.recv.io"),
            recv_cancelled: metrics.counter("explorerd.recv.cancelled"),
            write_failed: metrics.counter("explorerd.write_failed"),
        }
    }
}

/// Shared context the per-connection helpers borrow.
struct Ctx {
    transport: Arc<dyn Transport>,
    admission: Arc<Admission>,
    explorer: Arc<Explorer>,
    cancel: CancelToken,
    recorder: Arc<Recorder>,
    limits: Limits,
    idle_timeout: Duration,
    max_conns: usize,
    obs: ConnObs,
    connections: Counter,
    shed: Counter,
    conns_open: Gauge,
    conns_idle: Gauge,
    conns_reading: Gauge,
    conns_writing: Gauge,
}

/// Where a connection's state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Keep-alive parked between requests (or freshly accepted);
    /// bounded by the idle timeout.
    Idle,
    /// Mid-head; bounded by the read deadline.
    Reading,
    /// Request handed to the pool; no I/O interest until the
    /// completion comes back.
    Dispatched,
    /// Draining `send_buf` (refilled from `source`, if any).
    Writing,
}

struct ConnState {
    conn: Box<dyn Conn>,
    fd: Option<i32>,
    // Held for the connection's whole lifetime; released on close.
    #[allow(dead_code)]
    permit: Option<ConnPermit>,
    peer: Option<IpAddr>,
    phase: Phase,
    /// Timer for `Idle`/`Reading`; ignored in the other phases.
    deadline: Instant,
    recv_buf: Vec<u8>,
    send_buf: Vec<u8>,
    sent: usize,
    source: Option<Box<dyn BodySource>>,
    keep_alive_after_write: bool,
    /// Does a mid-write failure tick `write_failed`? True for served
    /// responses, false for best-effort error responses.
    counted_write: bool,
    accepted_at: Instant,
    saw_first_byte: bool,
}

/// What which slot in the poll set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOwner {
    Listener,
    Waker,
    Conn(u64),
}

/// What a readable connection produced.
enum ReadOutcome {
    /// Socket drained without a complete head; keep waiting.
    Continue,
    /// Terminal condition already counted; close silently.
    CloseNow,
    /// Answer an error response (best-effort) and close.
    Respond(Response),
    /// A complete request to run through admission and dispatch.
    Request(Request),
}

/// What a writable connection produced.
enum WriteOutcome {
    /// Socket full; keep the write interest.
    Continue,
    /// Response fully written.
    Done,
    /// The write (or the body source) failed; the response is torn.
    Failed,
}

impl Reactor {
    /// The event loop. Runs until cancellation, then drains dispatched
    /// and mid-write connections within [`SHUTDOWN_GRACE`] and shuts
    /// the handler pool down.
    pub(crate) fn run(self) {
        let Reactor {
            listener,
            transport,
            admission,
            explorer,
            pool,
            waker,
            cancel,
            recorder,
            config,
        } = self;
        let metrics = recorder.metrics();
        let ctx = Ctx {
            transport,
            admission,
            explorer,
            cancel,
            limits: config.limits,
            idle_timeout: config.idle_timeout,
            max_conns: config.max_conns,
            obs: ConnObs::new(&metrics),
            connections: metrics.counter("explorerd.connections"),
            shed: metrics.counter("explorerd.shed"),
            conns_open: metrics.gauge("explorerd.conns.open"),
            conns_idle: metrics.gauge("explorerd.conns.idle"),
            conns_reading: metrics.gauge("explorerd.conns.reading"),
            conns_writing: metrics.gauge("explorerd.conns.writing"),
            recorder,
        };
        let mut conns: HashMap<u64, ConnState> = HashMap::new();
        let mut next_id: u64 = 0;
        let mut poller = Poller::new();
        let mut slots: Vec<PollSlot> = Vec::new();
        let mut owners: Vec<SlotOwner> = Vec::new();
        let mut cancel_seen = false;
        let mut grace_until = Instant::now();

        loop {
            if !cancel_seen && ctx.cancel.is_cancelled() {
                cancel_seen = true;
                grace_until = Instant::now() + SHUTDOWN_GRACE;
                // Connections waiting for request bytes have nothing in
                // flight: reap them now so shutdown never waits on a
                // silent peer.
                let waiting: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| matches!(c.phase, Phase::Idle | Phase::Reading))
                    .map(|(&id, _)| id)
                    .collect();
                for id in waiting {
                    ctx.obs.recv_cancelled.inc();
                    close_conn(&mut conns, id);
                }
            }
            if cancel_seen && (conns.is_empty() || Instant::now() >= grace_until) {
                break;
            }

            update_gauges(&ctx, &conns);

            slots.clear();
            owners.clear();
            if !cancel_seen {
                slots.push(PollSlot::read(listener_fd(&listener)));
                owners.push(SlotOwner::Listener);
            }
            slots.push(PollSlot::read(waker.fd()));
            owners.push(SlotOwner::Waker);
            for (&id, conn) in &conns {
                match conn.phase {
                    Phase::Idle | Phase::Reading => {
                        slots.push(PollSlot::read(conn.fd));
                        owners.push(SlotOwner::Conn(id));
                    }
                    Phase::Writing => {
                        slots.push(PollSlot::write(conn.fd));
                        owners.push(SlotOwner::Conn(id));
                    }
                    Phase::Dispatched => {}
                }
            }
            let _ = poller.wait(&mut slots, POLL_SLICE);
            waker.drain();

            // Completions first: frees pool slots and starts the writes
            // this very cycle.
            for done in pool.drain_completions() {
                begin_response(&mut conns, done.conn_id, done.response, &ctx, &pool);
            }

            // Accept everything pending, then drive ready connections.
            if !cancel_seen {
                let listener_ready = slots
                    .iter()
                    .zip(&owners)
                    .any(|(s, o)| *o == SlotOwner::Listener && s.readable());
                if listener_ready {
                    accept_ready(&listener, &mut conns, &mut next_id, &ctx);
                }
            }
            for (slot, owner) in slots.iter().zip(&owners) {
                if let SlotOwner::Conn(id) = owner {
                    if slot.readable() || slot.writable() {
                        drive_conn(&mut conns, *id, &ctx, &pool);
                    }
                }
            }

            // Timer sweep: reap idle keep-alives, 408 slow heads.
            let now = Instant::now();
            let due: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    matches!(c.phase, Phase::Idle | Phase::Reading) && now >= c.deadline
                })
                .map(|(&id, _)| id)
                .collect();
            for id in due {
                expire_conn(&mut conns, id, &ctx, &pool);
            }
        }

        // Grace over (or nothing left): anything still open was already
        // accounted (its request counted in `explorerd.requests`).
        for (_, conn) in conns.drain() {
            let _ = conn.conn.shutdown();
        }
        ctx.conns_open.set(0);
        ctx.conns_idle.set(0);
        ctx.conns_reading.set(0);
        ctx.conns_writing.set(0);
        pool.shutdown();
    }
}

#[cfg(unix)]
fn listener_fd(listener: &TcpListener) -> Option<i32> {
    use std::os::unix::io::AsRawFd;
    Some(listener.as_raw_fd())
}

#[cfg(not(unix))]
fn listener_fd(_listener: &TcpListener) -> Option<i32> {
    None
}

fn update_gauges(ctx: &Ctx, conns: &HashMap<u64, ConnState>) {
    let mut idle = 0u64;
    let mut reading = 0u64;
    let mut writing = 0u64;
    for conn in conns.values() {
        match conn.phase {
            Phase::Idle => idle += 1,
            Phase::Reading => reading += 1,
            Phase::Writing => writing += 1,
            Phase::Dispatched => {}
        }
    }
    ctx.conns_open.set(conns.len() as u64);
    ctx.conns_idle.set(idle);
    ctx.conns_reading.set(reading);
    ctx.conns_writing.set(writing);
}

/// Accept until the listener reports `WouldBlock`.
fn accept_ready(
    listener: &TcpListener,
    conns: &mut HashMap<u64, ConnState>,
    next_id: &mut u64,
    ctx: &Ctx,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                ctx.connections.inc();
                let conn = ctx.transport.wrap(stream);
                if ctx.max_conns > 0 && conns.len() >= ctx.max_conns {
                    ctx.shed.inc();
                    shed_connection(conn);
                    continue;
                }
                let Some(permit) = ctx.admission.admit_conn(Some(peer.ip())) else {
                    // Peer over its concurrency cap: shed in O(1).
                    ctx.shed.inc();
                    shed_connection(conn);
                    continue;
                };
                if conn.set_nonblocking(true).is_err() {
                    ctx.obs.recv_io.inc();
                    let _ = conn.shutdown();
                    continue;
                }
                let fd = conn.raw_fd();
                let id = *next_id;
                *next_id += 1;
                let now = Instant::now();
                conns.insert(
                    id,
                    ConnState {
                        conn,
                        fd,
                        permit: Some(permit),
                        peer: Some(peer.ip()),
                        phase: Phase::Idle,
                        deadline: now + ctx.idle_timeout,
                        recv_buf: Vec::new(),
                        send_buf: Vec::new(),
                        sent: 0,
                        source: None,
                        keep_alive_after_write: false,
                        counted_write: false,
                        accepted_at: now,
                        saw_first_byte: false,
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Answer `503 Retry-After: 1` and close — the load-shedding path, run
/// inline so it stays O(1) regardless of handler state. The socket
/// never joins the poll set, so the write is blocking with a short
/// timeout.
fn shed_connection(mut conn: Box<dyn Conn>) {
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = Response::unavailable(1).write(conn.as_mut(), false);
}

/// `429 Too Many Requests` with the bucket's derived `Retry-After`.
fn rate_limited(retry_after_secs: u32) -> Response {
    let mut resp = Response::error(429, "per-peer rate limit exceeded, retry shortly");
    resp.headers
        .push(("Retry-After", retry_after_secs.to_string()));
    resp
}

fn close_conn(conns: &mut HashMap<u64, ConnState>, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        let _ = conn.conn.shutdown();
    }
}

/// Drive one connection as far as the socket allows right now.
fn drive_conn(
    conns: &mut HashMap<u64, ConnState>,
    id: u64,
    ctx: &Ctx,
    pool: &HandlerPool<Job, Completion>,
) {
    loop {
        let Some(conn) = conns.get_mut(&id) else {
            return;
        };
        match conn.phase {
            Phase::Dispatched => return,
            Phase::Idle | Phase::Reading => match read_ready(conn, ctx) {
                ReadOutcome::Continue => return,
                ReadOutcome::CloseNow => {
                    close_conn(conns, id);
                    return;
                }
                ReadOutcome::Respond(resp) => {
                    start_write(conn, resp, false, false);
                    // Loop: the Writing arm drains what it can now.
                }
                ReadOutcome::Request(req) => {
                    if !dispatch(conn, id, req, ctx, pool) {
                        return; // Parked in Dispatched.
                    }
                    // An admission refusal started a write; loop.
                }
            },
            Phase::Writing => match write_ready(conn) {
                WriteOutcome::Continue => return,
                WriteOutcome::Failed => {
                    if conn.counted_write {
                        ctx.obs.write_failed.inc();
                    }
                    close_conn(conns, id);
                    return;
                }
                WriteOutcome::Done => {
                    if !conn.keep_alive_after_write || ctx.cancel.is_cancelled() {
                        close_conn(conns, id);
                        return;
                    }
                    conn.counted_write = false;
                    conn.send_buf = Vec::new();
                    conn.sent = 0;
                    let now = Instant::now();
                    if conn.recv_buf.is_empty() {
                        conn.phase = Phase::Idle;
                        conn.deadline = now + ctx.idle_timeout;
                        return;
                    }
                    // Pipelined bytes already buffered: parse them now
                    // rather than waiting for the next poll event.
                    conn.phase = Phase::Reading;
                    conn.deadline = now + ctx.limits.read_deadline;
                    match parse_buffered(conn, ctx) {
                        None => return, // NeedMore: poll keeps watching.
                        Some(ReadOutcome::Request(req)) => {
                            if !dispatch(conn, id, req, ctx, pool) {
                                return;
                            }
                        }
                        Some(ReadOutcome::Respond(resp)) => {
                            start_write(conn, resp, false, false);
                        }
                        Some(ReadOutcome::Continue | ReadOutcome::CloseNow) => return,
                    }
                }
            },
        }
    }
}

/// Try to parse one request out of the connection's buffer, mapping
/// parse failures onto counted error responses.
fn parse_buffered(conn: &mut ConnState, ctx: &Ctx) -> Option<ReadOutcome> {
    match parse_request(&conn.recv_buf, &ctx.limits) {
        Ok(Parsed::NeedMore) => None,
        Ok(Parsed::Complete(req, used)) => {
            conn.recv_buf.drain(..used);
            Some(ReadOutcome::Request(req))
        }
        Err(RecvError::TooLarge) => {
            ctx.obs.recv_too_large.inc();
            Some(ReadOutcome::Respond(Response::error(
                400,
                "request head exceeds the size limit",
            )))
        }
        Err(RecvError::Malformed(what)) => {
            ctx.obs.recv_malformed.inc();
            Some(ReadOutcome::Respond(Response::error(400, &what)))
        }
    }
}

/// Pull whatever the socket holds, classifying terminal conditions the
/// same way the old blocking reader did.
fn read_ready(conn: &mut ConnState, ctx: &Ctx) -> ReadOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.conn.read(&mut chunk) {
            Ok(0) => {
                if conn.recv_buf.is_empty() {
                    ctx.obs.recv_closed.inc();
                    return ReadOutcome::CloseNow;
                }
                ctx.obs.recv_malformed.inc();
                return ReadOutcome::Respond(Response::error(400, "connection closed mid-request"));
            }
            Ok(n) => {
                if !conn.saw_first_byte {
                    conn.saw_first_byte = true;
                    ctx.recorder.observe(
                        "explorerd.accept_to_first_byte_ns",
                        conn.accepted_at.elapsed().as_nanos() as f64,
                    );
                }
                if conn.phase == Phase::Idle {
                    // First byte of a request: the head read deadline
                    // starts now (slow-loris enforcement).
                    conn.phase = Phase::Reading;
                    conn.deadline = Instant::now() + ctx.limits.read_deadline;
                }
                conn.recv_buf.extend_from_slice(&chunk[..n]);
                if let Some(outcome) = parse_buffered(conn, ctx) {
                    // Head complete (or unsalvageable): stop reading —
                    // pipelined bytes stay buffered until the response
                    // is out (backpressure).
                    return outcome;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return ReadOutcome::Continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                ctx.obs.recv_closed.inc();
                return ReadOutcome::CloseNow;
            }
            Err(_) => {
                ctx.obs.recv_io.inc();
                return ReadOutcome::CloseNow;
            }
        }
    }
}

/// Run admission and either park the connection in `Dispatched` (false)
/// or start writing a refusal/shed response (true).
fn dispatch(
    conn: &mut ConnState,
    id: u64,
    req: Request,
    ctx: &Ctx,
    pool: &HandlerPool<Job, Completion>,
) -> bool {
    let keep_alive = req.keep_alive && !ctx.cancel.is_cancelled();
    let class = classify(&req.path);
    match ctx
        .admission
        .admit_request(conn.peer, class, ctx.explorer.store_degraded())
    {
        AdmitDecision::Admit => {
            conn.keep_alive_after_write = keep_alive;
            match pool.try_submit(Job {
                conn_id: id,
                request: req,
            }) {
                Ok(()) => {
                    ctx.admission.note_queued();
                    conn.phase = Phase::Dispatched;
                    false
                }
                Err(_) => {
                    // Handler backlog full: shed, close after the 503.
                    ctx.shed.inc();
                    start_write(conn, Response::unavailable(1), false, false);
                    true
                }
            }
        }
        AdmitDecision::RateLimited { retry_after_secs } => {
            start_write(conn, rate_limited(retry_after_secs), keep_alive, true);
            true
        }
        AdmitDecision::ShedExpensive { retry_after_secs }
        | AdmitDecision::BreakerOpen { retry_after_secs } => {
            start_write(
                conn,
                Response::unavailable(retry_after_secs),
                keep_alive,
                true,
            );
            true
        }
    }
}

/// Queue a response for incremental writing.
fn start_write(conn: &mut ConnState, response: Response, keep_alive: bool, counted: bool) {
    conn.keep_alive_after_write = keep_alive;
    conn.counted_write = counted;
    conn.send_buf = response.head_bytes(keep_alive);
    conn.sent = 0;
    conn.source = None;
    match response.body {
        Body::Full(bytes) => conn.send_buf.extend_from_slice(&bytes),
        Body::Pull(source) => conn.source = Some(source),
    }
    conn.phase = Phase::Writing;
}

/// Drain the send buffer, refilling it from the body source one page
/// at a time.
fn write_ready(conn: &mut ConnState) -> WriteOutcome {
    loop {
        if conn.sent < conn.send_buf.len() {
            match conn.conn.write(&conn.send_buf[conn.sent..]) {
                Ok(0) => return WriteOutcome::Failed,
                Ok(n) => conn.sent += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return WriteOutcome::Continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return WriteOutcome::Failed,
            }
        } else if let Some(source) = conn.source.as_mut() {
            conn.send_buf.clear();
            conn.sent = 0;
            let mut raw = Vec::new();
            match source.next_chunk(&mut raw) {
                Ok(more) => {
                    encode_chunk(&raw, &mut conn.send_buf);
                    if !more {
                        conn.send_buf.extend_from_slice(CHUNK_TERMINATOR);
                        conn.source = None;
                    }
                }
                // A torn body (store error mid-stream): the chunked
                // framing never terminates, so the client sees a
                // truncated response, never a wrong one.
                Err(_) => return WriteOutcome::Failed,
            }
        } else {
            return WriteOutcome::Done;
        }
    }
}

/// A completion arrived from the handler pool: start writing it.
fn begin_response(
    conns: &mut HashMap<u64, ConnState>,
    id: u64,
    response: Response,
    ctx: &Ctx,
    pool: &HandlerPool<Job, Completion>,
) {
    let Some(conn) = conns.get_mut(&id) else {
        // The connection went away (shutdown cleanup); drop the body.
        return;
    };
    let keep_alive = conn.keep_alive_after_write && !ctx.cancel.is_cancelled();
    start_write(conn, response, keep_alive, true);
    drive_conn(conns, id, ctx, pool);
}

/// A timer fired: 408 a half-received head, reap an idle keep-alive.
fn expire_conn(
    conns: &mut HashMap<u64, ConnState>,
    id: u64,
    ctx: &Ctx,
    pool: &HandlerPool<Job, Completion>,
) {
    let Some(conn) = conns.get_mut(&id) else {
        return;
    };
    ctx.obs.recv_timeout.inc();
    match conn.phase {
        Phase::Reading => {
            // Slow-loris: bytes arrived but the head never completed.
            start_write(
                conn,
                Response::error(408, "request not received before the read deadline"),
                false,
                false,
            );
            drive_conn(conns, id, ctx, pool);
        }
        Phase::Idle => {
            // Keep-alive idle eviction: a clean close, no response.
            close_conn(conns, id);
        }
        Phase::Dispatched | Phase::Writing => {}
    }
}
