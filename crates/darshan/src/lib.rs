//! `iokc-darshan` — a Darshan-like I/O characterization log format.
//!
//! The reproduction band for this paper notes there are no trace-parsing
//! crates to lean on: this crate reimplements the pieces of the Darshan
//! ecosystem the knowledge cycle touches —
//!
//! * the runtime side ([`log::LogBuilder`]) that accumulates per-file
//!   counters and optional DXT trace segments while a job runs,
//! * the binary log format ([`binary::encode`] / [`binary::decode`]),
//! * `darshan-parser`-style text output ([`text::render_parser_output`]),
//! * and the PyDarshan-equivalent aggregation API ([`text::LogSummary`])
//!   that the knowledge extractor consumes (§V-B of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod binary;
pub mod counters;
pub mod log;
pub mod text;

pub use binary::{decode, decode_salvage, encode, DecodeError, Salvage};
pub use counters::Module;
pub use log::{DarshanLog, DxtSegment, FileRecord, JobHeader, LogBuilder, MetaKind, MpiioTransfer};
pub use text::{render_parser_output, LogSummary};
