//! The binary on-disk log format.
//!
//! Compact little-endian layout, self-describing enough for a reader to
//! validate structure without trusting lengths blindly:
//!
//! ```text
//! magic   u64  = 0x444f_4b43_4c4f_4731 ("DOKCLOG1")
//! version u32  = 1
//! job:    job_id u64, nprocs u32, start u64, end u64, exe str
//! names:  count u32, [record_id u64, path str] ...
//! modules: count u32, [module u8, nrecs u32,
//!            [record_id u64, rank i32,
//!             ncounters u32, i64..., nfcounters u32, f64...] ...] ...
//! dxt:    count u32, [record_id u64, rank i32, op u8,
//!          offset u64, length u64, start f64, end f64] ...
//! str   = len u32, utf8 bytes
//! ```

use crate::counters::Module;
use crate::log::{DarshanLog, DxtSegment, FileRecord, JobHeader};
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: u64 = 0x444f_4b43_4c4f_4731;
const VERSION: u32 = 1;

/// Error decoding a log.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are documented by the variant docs
pub enum DecodeError {
    /// Input ended before the structure was complete.
    Truncated { offset: usize },
    /// Bad magic number — not a log file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Unknown module id.
    BadModule(u8),
    /// A declared length is implausible for the remaining input.
    BadLength { offset: usize },
    /// A string was not valid UTF-8.
    BadUtf8 { offset: usize },
    /// Counter array length does not match the module's definition.
    CounterMismatch { module: &'static str },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { offset } => write!(f, "log truncated at byte {offset}"),
            DecodeError::BadMagic => write!(f, "not a darshan-style log (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported log version {v}"),
            DecodeError::BadModule(m) => write!(f, "unknown module id {m}"),
            DecodeError::BadLength { offset } => write!(f, "implausible length at byte {offset}"),
            DecodeError::BadUtf8 { offset } => write!(f, "invalid utf-8 at byte {offset}"),
            DecodeError::CounterMismatch { module } => {
                write!(f, "counter array size mismatch for module {module}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a log to bytes.
#[must_use]
pub fn encode(log: &DarshanLog) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024 + log.dxt.len() * 41);
    put_u64(&mut out, MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, log.job.job_id);
    put_u32(&mut out, log.job.nprocs);
    put_u64(&mut out, log.job.start_time);
    put_u64(&mut out, log.job.end_time);
    put_str(&mut out, &log.job.exe);
    put_u32(&mut out, log.names.len() as u32);
    for (id, path) in &log.names {
        put_u64(&mut out, *id);
        put_str(&mut out, path);
    }
    put_u32(&mut out, log.modules.len() as u32);
    for (module, records) in &log.modules {
        out.push(module.id());
        put_u32(&mut out, records.len() as u32);
        for rec in records {
            put_u64(&mut out, rec.record_id);
            put_u32(&mut out, rec.rank as u32);
            put_u32(&mut out, rec.counters.len() as u32);
            for c in &rec.counters {
                put_u64(&mut out, *c as u64);
            }
            put_u32(&mut out, rec.fcounters.len() as u32);
            for c in &rec.fcounters {
                put_u64(&mut out, c.to_bits());
            }
        }
    }
    put_u32(&mut out, log.dxt.len() as u32);
    for seg in &log.dxt {
        put_u64(&mut out, seg.record_id);
        put_u32(&mut out, seg.rank as u32);
        out.push(u8::from(seg.is_write));
        put_u64(&mut out, seg.offset);
        put_u64(&mut out, seg.length);
        put_u64(&mut out, seg.start.to_bits());
        put_u64(&mut out, seg.end.to_bits());
    }
    out
}

/// Deserialize a log from bytes. All-or-nothing: any structural problem
/// rejects the whole log. Use [`decode_salvage`] to keep the complete
/// records that precede a truncation.
pub fn decode(bytes: &[u8]) -> Result<DarshanLog, DecodeError> {
    let mut log = empty_log();
    let mut r = Reader { bytes, pos: 0 };
    decode_into(&mut r, &mut log)?;
    Ok(log)
}

/// The result of a best-effort decode: whatever was complete before the
/// first structural problem, plus that problem (if any).
#[derive(Debug, Clone, PartialEq)]
pub struct Salvage {
    /// Header, names, records and DXT segments that decoded completely.
    pub log: DarshanLog,
    /// The structural problem that ended the decode, when there was one.
    pub error: Option<DecodeError>,
}

/// Best-effort decode of a possibly truncated or corrupt log.
///
/// Decoding proceeds record by record; everything complete before the
/// first structural problem is kept, so a log torn mid-write still
/// surrenders its job header, resolved names, and the file records that
/// made it to disk. A log with bad magic salvages nothing but still
/// returns (with the error), never panics.
#[must_use]
pub fn decode_salvage(bytes: &[u8]) -> Salvage {
    let mut log = empty_log();
    let mut r = Reader { bytes, pos: 0 };
    let error = decode_into(&mut r, &mut log).err();
    Salvage { log, error }
}

fn empty_log() -> DarshanLog {
    DarshanLog {
        job: JobHeader {
            job_id: 0,
            nprocs: 0,
            start_time: 0,
            end_time: 0,
            exe: String::new(),
        },
        names: BTreeMap::new(),
        modules: BTreeMap::new(),
        dxt: Vec::new(),
    }
}

/// Decode `bytes` into `log` incrementally, so that on error everything
/// already placed in `log` is complete and usable.
fn decode_into(r: &mut Reader, log: &mut DarshanLog) -> Result<(), DecodeError> {
    if r.u64()? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let job = JobHeader {
        job_id: r.u64()?,
        nprocs: r.u32()?,
        start_time: r.u64()?,
        end_time: r.u64()?,
        exe: r.string()?,
    };
    log.job = job;
    let nnames = r.u32()? as usize;
    for _ in 0..nnames {
        let id = r.u64()?;
        let path = r.string()?;
        log.names.insert(id, path);
    }
    let nmodules = r.u32()? as usize;
    for _ in 0..nmodules {
        let module = Module::from_id(r.u8()?).ok_or(DecodeError::BadModule(0))?;
        let nrecs = r.u32()? as usize;
        log.modules.entry(module).or_default();
        for _ in 0..nrecs {
            let record_id = r.u64()?;
            let rank = r.u32()? as i32;
            let nc = r.len_checked(8)?;
            if nc != module.counter_names().len() {
                return Err(DecodeError::CounterMismatch {
                    module: module.as_str(),
                });
            }
            let mut counters = Vec::with_capacity(nc);
            for _ in 0..nc {
                counters.push(r.u64()? as i64);
            }
            let nf = r.len_checked(8)?;
            if nf != module.fcounter_names().len() {
                return Err(DecodeError::CounterMismatch {
                    module: module.as_str(),
                });
            }
            let mut fcounters = Vec::with_capacity(nf);
            for _ in 0..nf {
                fcounters.push(f64::from_bits(r.u64()?));
            }
            let record = FileRecord {
                record_id,
                rank,
                counters,
                fcounters,
            };
            log.modules.entry(module).or_default().push(record);
        }
    }
    let nsegs = r.u32()? as usize;
    for _ in 0..nsegs {
        let seg = DxtSegment {
            record_id: r.u64()?,
            rank: r.u32()? as i32,
            is_write: r.u8()? != 0,
            offset: r.u64()?,
            length: r.u64()?,
            start: f64::from_bits(r.u64()?),
            end: f64::from_bits(r.u64()?),
        };
        log.dxt.push(seg);
    }
    Ok(())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::Truncated { offset: self.pos });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a u32 count and reject counts that could not possibly fit in
    /// the remaining input given `min_item_size` — prevents huge
    /// pre-allocations from corrupt headers.
    fn len_checked(&mut self, min_item_size: usize) -> Result<usize, DecodeError> {
        let offset = self.pos;
        let n = self.u32()? as usize;
        if n * min_item_size.max(1) > self.bytes.len().saturating_sub(self.pos) {
            return Err(DecodeError::BadLength { offset });
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let offset = self.pos;
        let len = self.len_checked(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { offset })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::log::LogBuilder;

    fn sample() -> DarshanLog {
        let mut b = LogBuilder::new(4242, 8, "hacc_io", true);
        b.set_times(1_700_000_000, 1_700_000_060);
        for rank in 0..4 {
            let path = format!("/scratch/part.{rank}");
            b.open(Module::Posix, &path, rank, 0.5, 0.6);
            b.transfer(&path, rank, true, 0, 38 * 1_000_000, 0.6, 2.0, None);
            b.close(Module::Posix, &path, rank, 2.0, 2.1);
        }
        b.finish()
    }

    #[test]
    fn roundtrip_identity() {
        let log = sample();
        let bytes = encode(&log);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, log);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode(&sample());
        bytes[0] ^= 0xff;
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
        let mut bytes = encode(&sample());
        bytes[8] = 99;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode(&sample());
        // Chop the log at several points; every prefix must fail cleanly,
        // never panic.
        for cut in [1, 8, 12, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} did not error");
        }
    }

    #[test]
    fn rejects_corrupt_length() {
        let log = sample();
        let mut bytes = encode(&log);
        // The name-record count lives right after the exe string; blast a
        // huge value into it.
        let exe_pos = 8 + 4 + 8 + 4 + 8 + 8;
        let exe_len = log.job.exe.len();
        let count_pos = exe_pos + 4 + exe_len;
        bytes[count_pos..count_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::BadLength { .. }) | Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn salvage_keeps_complete_records_before_truncation() {
        let log = sample();
        let bytes = encode(&log);
        // Cut off the last DXT segment (41 bytes).
        let cut = bytes.len() - 20;
        let salvage = decode_salvage(&bytes[..cut]);
        assert!(matches!(salvage.error, Some(DecodeError::Truncated { .. })));
        assert_eq!(salvage.log.job, log.job);
        assert_eq!(salvage.log.names, log.names);
        assert_eq!(salvage.log.modules, log.modules);
        assert_eq!(salvage.log.dxt.len(), log.dxt.len() - 1);

        // Cut in the middle of the module records: the job header and
        // names survive, some records may.
        let salvage = decode_salvage(&bytes[..bytes.len() / 2]);
        assert!(salvage.error.is_some());
        assert_eq!(salvage.log.job, log.job);
        assert_eq!(salvage.log.names, log.names);
    }

    #[test]
    fn salvage_of_bad_magic_is_empty_but_clean() {
        let mut bytes = encode(&sample());
        bytes[0] ^= 0xff;
        let salvage = decode_salvage(&bytes);
        assert_eq!(salvage.error, Some(DecodeError::BadMagic));
        assert!(salvage.log.names.is_empty());
        assert!(salvage.log.modules.is_empty());
        assert_eq!(salvage.log.job.exe, "");
    }

    #[test]
    fn salvage_agrees_with_decode_on_intact_logs() {
        let log = sample();
        let salvage = decode_salvage(&encode(&log));
        assert_eq!(salvage.error, None);
        assert_eq!(salvage.log, log);
    }

    #[test]
    fn negative_rank_roundtrips() {
        // Shared records use rank -1.
        let mut log = sample();
        if let Some(recs) = log.modules.get_mut(&Module::Posix) {
            recs[0].rank = -1;
        }
        let decoded = decode(&encode(&log)).unwrap();
        assert_eq!(decoded.records(Module::Posix)[0].rank, -1);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn arbitrary_logs_roundtrip(
                job_id in any::<u64>(),
                nprocs in 1u32..512,
                files in proptest::collection::vec(
                    ("[a-z0-9/]{1,24}", 0u64..1_000_000, 1u64..100_000),
                    1..8
                ),
                dxt in any::<bool>(),
            ) {
                let mut b = LogBuilder::new(job_id, nprocs, "proptest", dxt);
                for (i, (path, offset, len)) in files.iter().enumerate() {
                    let rank = (i as u32 % nprocs) as i32;
                    b.open(Module::Posix, path, rank, 0.0, 0.01);
                    b.transfer(path, rank, i % 2 == 0, *offset, *len, 0.01, 0.5, None);
                    b.close(Module::Posix, path, rank, 0.5, 0.51);
                }
                let log = b.finish();
                let decoded = decode(&encode(&log)).unwrap();
                prop_assert_eq!(decoded, log);
            }

            #[test]
            fn decode_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = decode(&bytes);
                let _ = decode_salvage(&bytes);
            }

            #[test]
            fn salvage_of_any_truncation_is_self_consistent(
                fraction in 0f64..1f64,
            ) {
                let bytes = encode(&sample());
                let cut = ((bytes.len() as f64) * fraction) as usize;
                let salvage = decode_salvage(&bytes[..cut]);
                // A proper prefix always reports what stopped it, and
                // whatever was salvaged has well-formed counter arrays.
                prop_assert!(cut == bytes.len() || salvage.error.is_some());
                for (module, records) in &salvage.log.modules {
                    for rec in records {
                        prop_assert_eq!(rec.counters.len(), module.counter_names().len());
                        prop_assert_eq!(rec.fcounters.len(), module.fcounter_names().len());
                    }
                }
            }
        }
    }
}
