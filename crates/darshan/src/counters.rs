//! Counter definitions for the characterization modules.
//!
//! Mirrors the structure of Darshan's module counter arrays: each module
//! (POSIX, MPI-IO, STDIO) defines an ordered set of integer counters and
//! floating-point counters; every per-file record carries one value per
//! counter. Names follow Darshan's `MODULE_COUNTER` convention so tooling
//! built against real Darshan output reads naturally.

/// A characterization module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Module {
    /// POSIX I/O functions.
    Posix,
    /// MPI-IO functions.
    Mpiio,
    /// Buffered `stdio` streams.
    Stdio,
}

impl Module {
    /// All modules, in serialization order.
    pub const ALL: [Module; 3] = [Module::Posix, Module::Mpiio, Module::Stdio];

    /// Stable one-byte id for the binary format.
    #[must_use]
    pub fn id(self) -> u8 {
        match self {
            Module::Posix => 0,
            Module::Mpiio => 1,
            Module::Stdio => 2,
        }
    }

    /// Decode a module id.
    #[must_use]
    pub fn from_id(id: u8) -> Option<Module> {
        match id {
            0 => Some(Module::Posix),
            1 => Some(Module::Mpiio),
            2 => Some(Module::Stdio),
            _ => None,
        }
    }

    /// Display name as it appears in `darshan-parser` output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Module::Posix => "POSIX",
            Module::Mpiio => "MPI-IO",
            Module::Stdio => "STDIO",
        }
    }

    /// Integer counter names for this module, in record order.
    #[must_use]
    pub fn counter_names(self) -> &'static [&'static str] {
        match self {
            Module::Posix => POSIX_COUNTERS,
            Module::Mpiio => MPIIO_COUNTERS,
            Module::Stdio => STDIO_COUNTERS,
        }
    }

    /// Floating-point counter names for this module, in record order.
    #[must_use]
    pub fn fcounter_names(self) -> &'static [&'static str] {
        match self {
            Module::Posix => POSIX_FCOUNTERS,
            Module::Mpiio => MPIIO_FCOUNTERS,
            Module::Stdio => STDIO_FCOUNTERS,
        }
    }

    /// Index of a named integer counter.
    #[must_use]
    pub fn counter_index(self, name: &str) -> Option<usize> {
        self.counter_names().iter().position(|n| *n == name)
    }

    /// Index of a named floating-point counter.
    #[must_use]
    pub fn fcounter_index(self, name: &str) -> Option<usize> {
        self.fcounter_names().iter().position(|n| *n == name)
    }
}

/// POSIX integer counters (ordered subset of Darshan's set).
pub const POSIX_COUNTERS: &[&str] = &[
    "POSIX_OPENS",
    "POSIX_READS",
    "POSIX_WRITES",
    "POSIX_SEEKS",
    "POSIX_STATS",
    "POSIX_FSYNCS",
    "POSIX_BYTES_READ",
    "POSIX_BYTES_WRITTEN",
    "POSIX_MAX_BYTE_READ",
    "POSIX_MAX_BYTE_WRITTEN",
    "POSIX_CONSEC_READS",
    "POSIX_CONSEC_WRITES",
    "POSIX_SEQ_READS",
    "POSIX_SEQ_WRITES",
    "POSIX_SIZE_READ_0_100",
    "POSIX_SIZE_READ_100_1K",
    "POSIX_SIZE_READ_1K_10K",
    "POSIX_SIZE_READ_10K_100K",
    "POSIX_SIZE_READ_100K_1M",
    "POSIX_SIZE_READ_1M_4M",
    "POSIX_SIZE_READ_4M_10M",
    "POSIX_SIZE_READ_10M_PLUS",
    "POSIX_SIZE_WRITE_0_100",
    "POSIX_SIZE_WRITE_100_1K",
    "POSIX_SIZE_WRITE_1K_10K",
    "POSIX_SIZE_WRITE_10K_100K",
    "POSIX_SIZE_WRITE_100K_1M",
    "POSIX_SIZE_WRITE_1M_4M",
    "POSIX_SIZE_WRITE_4M_10M",
    "POSIX_SIZE_WRITE_10M_PLUS",
];

/// POSIX floating-point counters (timestamps and cumulative times, secs).
pub const POSIX_FCOUNTERS: &[&str] = &[
    "POSIX_F_OPEN_START_TIMESTAMP",
    "POSIX_F_CLOSE_END_TIMESTAMP",
    "POSIX_F_READ_TIME",
    "POSIX_F_WRITE_TIME",
    "POSIX_F_META_TIME",
    "POSIX_F_MAX_READ_TIME",
    "POSIX_F_MAX_WRITE_TIME",
];

/// MPI-IO integer counters.
pub const MPIIO_COUNTERS: &[&str] = &[
    "MPIIO_INDEP_OPENS",
    "MPIIO_COLL_OPENS",
    "MPIIO_INDEP_READS",
    "MPIIO_INDEP_WRITES",
    "MPIIO_COLL_READS",
    "MPIIO_COLL_WRITES",
    "MPIIO_SYNCS",
    "MPIIO_BYTES_READ",
    "MPIIO_BYTES_WRITTEN",
];

/// MPI-IO floating-point counters.
pub const MPIIO_FCOUNTERS: &[&str] = &[
    "MPIIO_F_OPEN_START_TIMESTAMP",
    "MPIIO_F_CLOSE_END_TIMESTAMP",
    "MPIIO_F_READ_TIME",
    "MPIIO_F_WRITE_TIME",
    "MPIIO_F_META_TIME",
];

/// STDIO integer counters.
pub const STDIO_COUNTERS: &[&str] = &[
    "STDIO_OPENS",
    "STDIO_READS",
    "STDIO_WRITES",
    "STDIO_BYTES_READ",
    "STDIO_BYTES_WRITTEN",
];

/// STDIO floating-point counters.
pub const STDIO_FCOUNTERS: &[&str] = &[
    "STDIO_F_OPEN_START_TIMESTAMP",
    "STDIO_F_CLOSE_END_TIMESTAMP",
];

/// Darshan-style access-size histogram bucket index for a read/write of
/// `len` bytes (8 buckets: 0–100, 100–1K, 1K–10K, 10K–100K, 100K–1M,
/// 1M–4M, 4M–10M, 10M+).
#[must_use]
pub fn size_bucket(len: u64) -> usize {
    match len {
        0..=100 => 0,
        101..=1_024 => 1,
        1_025..=10_240 => 2,
        10_241..=102_400 => 3,
        102_401..=1_048_576 => 4,
        1_048_577..=4_194_304 => 5,
        4_194_305..=10_485_760 => 6,
        _ => 7,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn module_ids_roundtrip() {
        for m in Module::ALL {
            assert_eq!(Module::from_id(m.id()), Some(m));
        }
        assert_eq!(Module::from_id(99), None);
    }

    #[test]
    fn counter_lookup() {
        assert_eq!(Module::Posix.counter_index("POSIX_OPENS"), Some(0));
        assert_eq!(Module::Posix.counter_index("POSIX_BYTES_WRITTEN"), Some(7));
        assert_eq!(Module::Posix.counter_index("NOPE"), None);
        assert_eq!(Module::Mpiio.fcounter_index("MPIIO_F_WRITE_TIME"), Some(3));
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(100), 0);
        assert_eq!(size_bucket(101), 1);
        assert_eq!(size_bucket(47_008), 3);
        assert_eq!(size_bucket(2 * 1024 * 1024), 5);
        assert_eq!(size_bucket(100 * 1024 * 1024), 7);
    }

    #[test]
    fn read_and_write_buckets_are_parallel() {
        // The write buckets must start exactly 8 entries after the read
        // buckets so `size_bucket` can index both.
        let read0 = Module::Posix
            .counter_index("POSIX_SIZE_READ_0_100")
            .unwrap();
        let write0 = Module::Posix
            .counter_index("POSIX_SIZE_WRITE_0_100")
            .unwrap();
        assert_eq!(write0 - read0, 8);
    }
}
