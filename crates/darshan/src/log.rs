//! The in-memory log model and its builder.
//!
//! A [`DarshanLog`] is what a real deployment would write at
//! `MPI_Finalize`: a job header, a name-record table mapping hashed record
//! ids to file paths, per-module per-file counter records, and (when
//! extended tracing is enabled) DXT segment lists. The [`LogBuilder`]
//! plays the role of the runtime instrumentation: callers feed it events
//! (`open`, `read`, `write`, …) and it maintains the counters.

use crate::counters::{size_bucket, Module};
use std::collections::BTreeMap;

/// A per-file, per-rank counter record.
#[derive(Debug, Clone, PartialEq)]
pub struct FileRecord {
    /// Hashed file record id (see [`record_id`]).
    pub record_id: u64,
    /// Rank that produced the record; `-1` marks a shared (reduced) record.
    pub rank: i32,
    /// Integer counters, ordered per [`Module::counter_names`].
    pub counters: Vec<i64>,
    /// Float counters, ordered per [`Module::fcounter_names`].
    pub fcounters: Vec<f64>,
}

impl FileRecord {
    /// A zeroed record for `module`.
    #[must_use]
    pub fn zeroed(module: Module, record_id: u64, rank: i32) -> FileRecord {
        FileRecord {
            record_id,
            rank,
            counters: vec![0; module.counter_names().len()],
            fcounters: vec![0.0; module.fcounter_names().len()],
        }
    }

    /// Read an integer counter by name.
    #[must_use]
    pub fn counter(&self, module: Module, name: &str) -> Option<i64> {
        module.counter_index(name).map(|i| self.counters[i])
    }

    /// Read a float counter by name.
    #[must_use]
    pub fn fcounter(&self, module: Module, name: &str) -> Option<f64> {
        module.fcounter_index(name).map(|i| self.fcounters[i])
    }
}

/// One DXT (extended tracing) segment: an individual read or write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DxtSegment {
    /// File record id.
    pub record_id: u64,
    /// Issuing rank.
    pub rank: i32,
    /// `true` for write, `false` for read.
    pub is_write: bool,
    /// File offset.
    pub offset: u64,
    /// Byte count.
    pub length: u64,
    /// Start timestamp, seconds from job start.
    pub start: f64,
    /// End timestamp, seconds from job start.
    pub end: f64,
}

/// Job-level header information.
#[derive(Debug, Clone, PartialEq)]
pub struct JobHeader {
    /// Job identifier (from the resource manager).
    pub job_id: u64,
    /// Number of MPI ranks.
    pub nprocs: u32,
    /// Job start, Unix seconds.
    pub start_time: u64,
    /// Job end, Unix seconds.
    pub end_time: u64,
    /// Executable name.
    pub exe: String,
}

/// A complete characterization log.
#[derive(Debug, Clone, PartialEq)]
pub struct DarshanLog {
    /// Job header.
    pub job: JobHeader,
    /// Record id → file path.
    pub names: BTreeMap<u64, String>,
    /// Per-module record lists.
    pub modules: BTreeMap<Module, Vec<FileRecord>>,
    /// DXT trace segments (empty when tracing was off).
    pub dxt: Vec<DxtSegment>,
}

impl DarshanLog {
    /// Resolve a record id to its path.
    #[must_use]
    pub fn path_of(&self, record_id: u64) -> Option<&str> {
        self.names.get(&record_id).map(String::as_str)
    }

    /// Records of one module.
    #[must_use]
    pub fn records(&self, module: Module) -> &[FileRecord] {
        self.modules.get(&module).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sum of an integer counter over all records of a module.
    #[must_use]
    pub fn total_counter(&self, module: Module, name: &str) -> i64 {
        let Some(idx) = module.counter_index(name) else {
            return 0;
        };
        self.records(module).iter().map(|r| r.counters[idx]).sum()
    }

    /// Sum of a float counter over all records of a module.
    #[must_use]
    pub fn total_fcounter(&self, module: Module, name: &str) -> f64 {
        let Some(idx) = module.fcounter_index(name) else {
            return 0.0;
        };
        self.records(module).iter().map(|r| r.fcounters[idx]).sum()
    }

    /// DXT segments touching one file.
    #[must_use]
    pub fn dxt_for(&self, record_id: u64) -> Vec<&DxtSegment> {
        self.dxt
            .iter()
            .filter(|s| s.record_id == record_id)
            .collect()
    }
}

impl DarshanLog {
    /// Reduce per-rank records of files touched by every rank into one
    /// shared record with `rank == -1`, exactly as Darshan's shared-file
    /// reduction does at `MPI_Finalize`: integer counters sum; `MAX_BYTE`
    /// counters take the maximum; timestamps take min (open start) / max
    /// (close end); cumulative times sum; max-times take the maximum.
    /// Files not touched by all ranks keep their per-rank records.
    #[must_use]
    pub fn reduce_shared(mut self) -> DarshanLog {
        let nprocs = i64::from(self.job.nprocs);
        for (&module, records) in &mut self.modules {
            // Group record indices by record id.
            let mut by_id: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
            for (i, rec) in records.iter().enumerate() {
                by_id.entry(rec.record_id).or_default().push(i);
            }
            let mut reduced: Vec<FileRecord> = Vec::with_capacity(records.len());
            let mut consumed = vec![false; records.len()];
            for (record_id, indices) in by_id {
                let distinct_ranks: std::collections::BTreeSet<i32> =
                    indices.iter().map(|i| records[*i].rank).collect();
                if (distinct_ranks.len() as i64) < nprocs || distinct_ranks.contains(&-1) {
                    continue; // not shared by every rank (or already reduced)
                }
                let mut shared = FileRecord::zeroed(module, record_id, -1);
                for &i in &indices {
                    consumed[i] = true;
                    let rec = &records[i];
                    for (ci, name) in module.counter_names().iter().enumerate() {
                        if name.contains("MAX_BYTE") {
                            shared.counters[ci] = shared.counters[ci].max(rec.counters[ci]);
                        } else {
                            shared.counters[ci] += rec.counters[ci];
                        }
                    }
                    for (ci, name) in module.fcounter_names().iter().enumerate() {
                        if name.contains("OPEN_START") {
                            if shared.fcounters[ci] == 0.0
                                || rec.fcounters[ci] < shared.fcounters[ci]
                            {
                                shared.fcounters[ci] = rec.fcounters[ci];
                            }
                        } else if name.contains("CLOSE_END") || name.contains("MAX") {
                            shared.fcounters[ci] = shared.fcounters[ci].max(rec.fcounters[ci]);
                        } else {
                            shared.fcounters[ci] += rec.fcounters[ci];
                        }
                    }
                }
                reduced.push(shared);
            }
            let mut kept: Vec<FileRecord> = records
                .iter()
                .zip(&consumed)
                .filter(|(_, used)| !**used)
                .map(|(rec, _)| rec.clone())
                .collect();
            kept.extend(reduced);
            *records = kept;
        }
        self
    }
}

/// Darshan hashes paths into 64-bit record ids; this implementation uses
/// FNV-1a, which is stable across platforms and runs.
#[must_use]
pub fn record_id(path: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in path.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runtime-instrumentation equivalent: feed events, harvest a log.
#[derive(Debug)]
pub struct LogBuilder {
    job: JobHeader,
    names: BTreeMap<u64, String>,
    /// (module, record_id, rank) → record.
    records: BTreeMap<(Module, u64, i32), FileRecord>,
    /// Last access end offset per (record, rank, write?) for sequential /
    /// consecutive detection.
    last_end: BTreeMap<(u64, i32, bool), u64>,
    dxt_enabled: bool,
    dxt: Vec<DxtSegment>,
}

impl LogBuilder {
    /// Start instrumenting a job. `dxt_enabled` turns on extended tracing.
    #[must_use]
    pub fn new(job_id: u64, nprocs: u32, exe: &str, dxt_enabled: bool) -> LogBuilder {
        LogBuilder {
            job: JobHeader {
                job_id,
                nprocs,
                start_time: 0,
                end_time: 0,
                exe: exe.to_owned(),
            },
            names: BTreeMap::new(),
            records: BTreeMap::new(),
            last_end: BTreeMap::new(),
            dxt_enabled,
            dxt: Vec::new(),
        }
    }

    /// Set job wall-clock bounds (Unix seconds).
    pub fn set_times(&mut self, start: u64, end: u64) {
        self.job.start_time = start;
        self.job.end_time = end;
    }

    fn rec(&mut self, module: Module, path: &str, rank: i32) -> &mut FileRecord {
        let id = record_id(path);
        self.names.entry(id).or_insert_with(|| path.to_owned());
        self.records
            .entry((module, id, rank))
            .or_insert_with(|| FileRecord::zeroed(module, id, rank))
    }

    fn bump(&mut self, module: Module, path: &str, rank: i32, name: &str, by: i64) {
        let idx = module
            .counter_index(name)
            .unwrap_or_else(|| panic!("unknown counter {name}"));
        self.rec(module, path, rank).counters[idx] += by;
    }

    fn bump_f(&mut self, module: Module, path: &str, rank: i32, name: &str, by: f64) {
        let idx = module
            .fcounter_index(name)
            .unwrap_or_else(|| panic!("unknown fcounter {name}"));
        self.rec(module, path, rank).fcounters[idx] += by;
    }

    fn set_f_min_or_first(&mut self, module: Module, path: &str, rank: i32, name: &str, v: f64) {
        let idx = module.fcounter_index(name).expect("known fcounter");
        let rec = self.rec(module, path, rank);
        if rec.fcounters[idx] == 0.0 || v < rec.fcounters[idx] {
            rec.fcounters[idx] = v;
        }
    }

    fn set_f_max(&mut self, module: Module, path: &str, rank: i32, name: &str, v: f64) {
        let idx = module.fcounter_index(name).expect("known fcounter");
        let rec = self.rec(module, path, rank);
        if v > rec.fcounters[idx] {
            rec.fcounters[idx] = v;
        }
    }

    /// Record an open (POSIX; add `mpiio` separately for MPI-IO jobs).
    pub fn open(&mut self, module: Module, path: &str, rank: i32, start: f64, end: f64) {
        match module {
            Module::Posix => {
                self.bump(module, path, rank, "POSIX_OPENS", 1);
                self.set_f_min_or_first(module, path, rank, "POSIX_F_OPEN_START_TIMESTAMP", start);
                self.bump_f(module, path, rank, "POSIX_F_META_TIME", end - start);
            }
            Module::Mpiio => {
                self.bump(module, path, rank, "MPIIO_INDEP_OPENS", 1);
                self.set_f_min_or_first(module, path, rank, "MPIIO_F_OPEN_START_TIMESTAMP", start);
                self.bump_f(module, path, rank, "MPIIO_F_META_TIME", end - start);
            }
            Module::Stdio => {
                self.bump(module, path, rank, "STDIO_OPENS", 1);
                self.set_f_min_or_first(module, path, rank, "STDIO_F_OPEN_START_TIMESTAMP", start);
            }
        }
    }

    /// Record a collective MPI-IO open.
    pub fn coll_open(&mut self, path: &str, rank: i32, start: f64, end: f64) {
        self.bump(Module::Mpiio, path, rank, "MPIIO_COLL_OPENS", 1);
        self.set_f_min_or_first(
            Module::Mpiio,
            path,
            rank,
            "MPIIO_F_OPEN_START_TIMESTAMP",
            start,
        );
        self.bump_f(Module::Mpiio, path, rank, "MPIIO_F_META_TIME", end - start);
    }

    /// Record a close.
    pub fn close(&mut self, module: Module, path: &str, rank: i32, start: f64, end: f64) {
        match module {
            Module::Posix => {
                self.set_f_max(module, path, rank, "POSIX_F_CLOSE_END_TIMESTAMP", end);
                self.bump_f(module, path, rank, "POSIX_F_META_TIME", end - start);
            }
            Module::Mpiio => {
                self.set_f_max(module, path, rank, "MPIIO_F_CLOSE_END_TIMESTAMP", end);
                self.bump_f(module, path, rank, "MPIIO_F_META_TIME", end - start);
            }
            Module::Stdio => {
                self.set_f_max(module, path, rank, "STDIO_F_CLOSE_END_TIMESTAMP", end);
            }
        }
    }

    /// Record a stat/fsync/seek style metadata op.
    pub fn meta(&mut self, path: &str, rank: i32, kind: MetaKind, start: f64, end: f64) {
        let name = match kind {
            MetaKind::Stat => "POSIX_STATS",
            MetaKind::Fsync => "POSIX_FSYNCS",
            MetaKind::Seek => "POSIX_SEEKS",
        };
        self.bump(Module::Posix, path, rank, name, 1);
        self.bump_f(Module::Posix, path, rank, "POSIX_F_META_TIME", end - start);
    }

    /// Record a data transfer. Updates POSIX counters, histograms,
    /// sequential/consecutive detection, and (optionally) an MPI-IO layer
    /// view and a DXT segment.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        path: &str,
        rank: i32,
        is_write: bool,
        offset: u64,
        len: u64,
        start: f64,
        end: f64,
        mpiio: Option<MpiioTransfer>,
    ) {
        let m = Module::Posix;
        let dur = end - start;
        if is_write {
            self.bump(m, path, rank, "POSIX_WRITES", 1);
            self.bump(m, path, rank, "POSIX_BYTES_WRITTEN", len as i64);
            let max_idx = m.counter_index("POSIX_MAX_BYTE_WRITTEN").expect("counter");
            let rec = self.rec(m, path, rank);
            rec.counters[max_idx] = rec.counters[max_idx].max((offset + len) as i64 - 1);
            let bucket_base = m.counter_index("POSIX_SIZE_WRITE_0_100").expect("counter");
            self.rec(m, path, rank).counters[bucket_base + size_bucket(len)] += 1;
            self.bump_f(m, path, rank, "POSIX_F_WRITE_TIME", dur);
            self.set_f_max(m, path, rank, "POSIX_F_MAX_WRITE_TIME", dur);
        } else {
            self.bump(m, path, rank, "POSIX_READS", 1);
            self.bump(m, path, rank, "POSIX_BYTES_READ", len as i64);
            let max_idx = m.counter_index("POSIX_MAX_BYTE_READ").expect("counter");
            let rec = self.rec(m, path, rank);
            rec.counters[max_idx] = rec.counters[max_idx].max((offset + len) as i64 - 1);
            let bucket_base = m.counter_index("POSIX_SIZE_READ_0_100").expect("counter");
            self.rec(m, path, rank).counters[bucket_base + size_bucket(len)] += 1;
            self.bump_f(m, path, rank, "POSIX_F_READ_TIME", dur);
            self.set_f_max(m, path, rank, "POSIX_F_MAX_READ_TIME", dur);
        }

        // Sequential (offset strictly increasing) / consecutive (exactly
        // adjacent) access detection, per Darshan's definitions.
        let id = record_id(path);
        let key = (id, rank, is_write);
        if let Some(prev_end) = self.last_end.get(&key).copied() {
            if offset == prev_end {
                let name = if is_write {
                    "POSIX_CONSEC_WRITES"
                } else {
                    "POSIX_CONSEC_READS"
                };
                self.bump(m, path, rank, name, 1);
            }
            if offset >= prev_end {
                let name = if is_write {
                    "POSIX_SEQ_WRITES"
                } else {
                    "POSIX_SEQ_READS"
                };
                self.bump(m, path, rank, name, 1);
            }
        }
        self.last_end.insert(key, offset + len);

        if let Some(mp) = mpiio {
            let (ops_name, bytes_name) = match (mp.collective, is_write) {
                (true, true) => ("MPIIO_COLL_WRITES", "MPIIO_BYTES_WRITTEN"),
                (true, false) => ("MPIIO_COLL_READS", "MPIIO_BYTES_READ"),
                (false, true) => ("MPIIO_INDEP_WRITES", "MPIIO_BYTES_WRITTEN"),
                (false, false) => ("MPIIO_INDEP_READS", "MPIIO_BYTES_READ"),
            };
            self.bump(Module::Mpiio, path, rank, ops_name, 1);
            self.bump(Module::Mpiio, path, rank, bytes_name, len as i64);
            let time_name = if is_write {
                "MPIIO_F_WRITE_TIME"
            } else {
                "MPIIO_F_READ_TIME"
            };
            self.bump_f(Module::Mpiio, path, rank, time_name, dur);
        }

        if self.dxt_enabled {
            self.dxt.push(DxtSegment {
                record_id: id,
                rank,
                is_write,
                offset,
                length: len,
                start,
                end,
            });
        }
    }

    /// Finish instrumentation and produce the log.
    #[must_use]
    pub fn finish(self) -> DarshanLog {
        let mut modules: BTreeMap<Module, Vec<FileRecord>> = BTreeMap::new();
        for ((module, _, _), record) in self.records {
            modules.entry(module).or_default().push(record);
        }
        DarshanLog {
            job: self.job,
            names: self.names,
            modules,
            dxt: self.dxt,
        }
    }
}

/// Metadata op classes tracked by [`LogBuilder::meta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaKind {
    /// `stat`/`fstat`.
    Stat,
    /// `fsync`/`fdatasync`.
    Fsync,
    /// `lseek`.
    Seek,
}

/// MPI-IO layer annotation for a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiioTransfer {
    /// Was the transfer collective?
    pub collective: bool,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_log() -> DarshanLog {
        let mut b = LogBuilder::new(991, 4, "ior", true);
        b.set_times(1_600_000_000, 1_600_000_100);
        for rank in 0..2 {
            b.open(Module::Posix, "/scratch/t", rank, 0.1, 0.2);
            b.transfer("/scratch/t", rank, true, 0, 4096, 0.2, 0.3, None);
            b.transfer("/scratch/t", rank, true, 4096, 4096, 0.3, 0.4, None);
            b.transfer("/scratch/t", rank, false, 0, 8192, 0.4, 0.6, None);
            b.meta("/scratch/t", rank, MetaKind::Fsync, 0.6, 0.65);
            b.close(Module::Posix, "/scratch/t", rank, 0.7, 0.75);
        }
        b.finish()
    }

    #[test]
    fn counters_accumulate() {
        let log = sample_log();
        assert_eq!(log.total_counter(Module::Posix, "POSIX_OPENS"), 2);
        assert_eq!(log.total_counter(Module::Posix, "POSIX_WRITES"), 4);
        assert_eq!(
            log.total_counter(Module::Posix, "POSIX_BYTES_WRITTEN"),
            16384
        );
        assert_eq!(log.total_counter(Module::Posix, "POSIX_BYTES_READ"), 16384);
        assert_eq!(log.total_counter(Module::Posix, "POSIX_FSYNCS"), 2);
        // Second write of each rank is consecutive to the first.
        assert_eq!(log.total_counter(Module::Posix, "POSIX_CONSEC_WRITES"), 2);
        assert_eq!(log.total_counter(Module::Posix, "POSIX_SEQ_WRITES"), 2);
    }

    #[test]
    fn histograms_bucket_by_size() {
        let log = sample_log();
        assert_eq!(
            log.total_counter(Module::Posix, "POSIX_SIZE_WRITE_1K_10K"),
            4
        );
        assert_eq!(
            log.total_counter(Module::Posix, "POSIX_SIZE_READ_1K_10K"),
            2
        );
        assert_eq!(
            log.total_counter(Module::Posix, "POSIX_SIZE_WRITE_0_100"),
            0
        );
    }

    #[test]
    fn timestamps_and_times() {
        let log = sample_log();
        let rec = &log.records(Module::Posix)[0];
        assert_eq!(
            rec.fcounter(Module::Posix, "POSIX_F_OPEN_START_TIMESTAMP"),
            Some(0.1)
        );
        assert_eq!(
            rec.fcounter(Module::Posix, "POSIX_F_CLOSE_END_TIMESTAMP"),
            Some(0.75)
        );
        let wt = rec.fcounter(Module::Posix, "POSIX_F_WRITE_TIME").unwrap();
        assert!((wt - 0.2).abs() < 1e-9);
    }

    #[test]
    fn dxt_segments_trace_every_transfer() {
        let log = sample_log();
        assert_eq!(log.dxt.len(), 6);
        let id = record_id("/scratch/t");
        assert_eq!(log.dxt_for(id).len(), 6);
        let writes = log.dxt.iter().filter(|s| s.is_write).count();
        assert_eq!(writes, 4);
    }

    #[test]
    fn dxt_disabled_produces_no_segments() {
        let mut b = LogBuilder::new(1, 1, "x", false);
        b.transfer("/f", 0, true, 0, 10, 0.0, 0.1, None);
        assert!(b.finish().dxt.is_empty());
    }

    #[test]
    fn mpiio_layer_counters() {
        let mut b = LogBuilder::new(1, 1, "ior", false);
        b.coll_open("/f", 0, 0.0, 0.1);
        b.transfer(
            "/f",
            0,
            true,
            0,
            1024,
            0.1,
            0.2,
            Some(MpiioTransfer { collective: true }),
        );
        b.transfer(
            "/f",
            0,
            false,
            0,
            1024,
            0.2,
            0.3,
            Some(MpiioTransfer { collective: false }),
        );
        let log = b.finish();
        assert_eq!(log.total_counter(Module::Mpiio, "MPIIO_COLL_OPENS"), 1);
        assert_eq!(log.total_counter(Module::Mpiio, "MPIIO_COLL_WRITES"), 1);
        assert_eq!(log.total_counter(Module::Mpiio, "MPIIO_INDEP_READS"), 1);
        assert_eq!(
            log.total_counter(Module::Mpiio, "MPIIO_BYTES_WRITTEN"),
            1024
        );
    }

    #[test]
    fn shared_reduction_merges_per_rank_records() {
        let mut b = LogBuilder::new(1, 2, "ior", false);
        // A shared file touched by both ranks, and a private file.
        for rank in 0..2 {
            b.open(
                Module::Posix,
                "/scratch/shared",
                rank,
                0.1 + f64::from(rank),
                0.2,
            );
            b.transfer(
                "/scratch/shared",
                rank,
                true,
                u64::from(rank as u32) << 20,
                1 << 20,
                0.2,
                0.4,
                None,
            );
            b.close(
                Module::Posix,
                "/scratch/shared",
                rank,
                0.5,
                0.6 + f64::from(rank),
            );
        }
        b.open(Module::Posix, "/scratch/private", 0, 0.0, 0.1);
        b.transfer("/scratch/private", 0, true, 0, 4096, 0.1, 0.2, None);
        let log = b.finish().reduce_shared();

        let records = log.records(Module::Posix);
        // Shared file: one rank=-1 record; private file keeps rank 0.
        let shared: Vec<&FileRecord> = records
            .iter()
            .filter(|r| r.record_id == record_id("/scratch/shared"))
            .collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].rank, -1);
        assert_eq!(shared[0].counter(Module::Posix, "POSIX_OPENS"), Some(2));
        assert_eq!(
            shared[0].counter(Module::Posix, "POSIX_BYTES_WRITTEN"),
            Some(2 << 20)
        );
        // MAX_BYTE is a max, not a sum.
        assert_eq!(
            shared[0].counter(Module::Posix, "POSIX_MAX_BYTE_WRITTEN"),
            Some((2 << 20) - 1)
        );
        // Open start = min, close end = max.
        assert_eq!(
            shared[0].fcounter(Module::Posix, "POSIX_F_OPEN_START_TIMESTAMP"),
            Some(0.1)
        );
        assert_eq!(
            shared[0].fcounter(Module::Posix, "POSIX_F_CLOSE_END_TIMESTAMP"),
            Some(1.6)
        );
        let private: Vec<&FileRecord> = records
            .iter()
            .filter(|r| r.record_id == record_id("/scratch/private"))
            .collect();
        assert_eq!(private.len(), 1);
        assert_eq!(private[0].rank, 0);
        // Totals survive the reduction.
        assert_eq!(
            log.total_counter(Module::Posix, "POSIX_BYTES_WRITTEN"),
            (2 << 20) + 4096
        );
    }

    #[test]
    fn record_ids_resolve_to_paths() {
        let log = sample_log();
        let id = record_id("/scratch/t");
        assert_eq!(log.path_of(id), Some("/scratch/t"));
        assert_eq!(log.path_of(12345), None);
    }

    #[test]
    fn unknown_counter_totals_are_zero() {
        let log = sample_log();
        assert_eq!(log.total_counter(Module::Posix, "NOT_A_COUNTER"), 0);
        assert_eq!(log.total_fcounter(Module::Posix, "NOT_A_COUNTER"), 0.0);
    }
}
