//! Text rendering and PyDarshan-style aggregation.
//!
//! [`render_parser_output`] produces `darshan-parser`-style text (the form
//! most HPC users have seen); [`LogSummary`] is the PyDarshan-equivalent
//! aggregation API the knowledge extractor consumes.

use crate::counters::Module;
use crate::log::DarshanLog;
use std::collections::BTreeMap;

/// Aggregated view of a log — what `pydarshan`'s report module exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct LogSummary {
    /// Job id from the header.
    pub job_id: u64,
    /// Rank count.
    pub nprocs: u32,
    /// Job runtime, seconds.
    pub runtime_secs: u64,
    /// Number of distinct files touched.
    pub files: usize,
    /// Total bytes read (POSIX layer).
    pub bytes_read: u64,
    /// Total bytes written (POSIX layer).
    pub bytes_written: u64,
    /// Total POSIX read calls.
    pub reads: u64,
    /// Total POSIX write calls.
    pub writes: u64,
    /// Cumulative read time across ranks, seconds.
    pub read_time: f64,
    /// Cumulative write time across ranks, seconds.
    pub write_time: f64,
    /// Cumulative metadata time across ranks, seconds.
    pub meta_time: f64,
    /// Per-file bytes written, keyed by path.
    pub per_file_written: BTreeMap<String, u64>,
    /// Access-size histogram (bucket label → count), writes.
    pub write_size_histogram: BTreeMap<&'static str, u64>,
    /// Access-size histogram (bucket label → count), reads.
    pub read_size_histogram: BTreeMap<&'static str, u64>,
}

const BUCKET_LABELS: [&str; 8] = [
    "0-100", "100-1K", "1K-10K", "10K-100K", "100K-1M", "1M-4M", "4M-10M", "10M+",
];

impl LogSummary {
    /// Aggregate a log.
    #[must_use]
    pub fn from_log(log: &DarshanLog) -> LogSummary {
        let m = Module::Posix;
        let mut per_file_written = BTreeMap::new();
        for rec in log.records(m) {
            let written = rec.counter(m, "POSIX_BYTES_WRITTEN").unwrap_or(0).max(0) as u64;
            let path = log.path_of(rec.record_id).unwrap_or("<unknown>").to_owned();
            *per_file_written.entry(path).or_insert(0) += written;
        }
        let mut write_size_histogram = BTreeMap::new();
        let mut read_size_histogram = BTreeMap::new();
        for (i, label) in BUCKET_LABELS.iter().enumerate() {
            let wname =
                m.counter_names()[m.counter_index("POSIX_SIZE_WRITE_0_100").expect("base") + i];
            let rname =
                m.counter_names()[m.counter_index("POSIX_SIZE_READ_0_100").expect("base") + i];
            write_size_histogram.insert(*label, log.total_counter(m, wname).max(0) as u64);
            read_size_histogram.insert(*label, log.total_counter(m, rname).max(0) as u64);
        }
        LogSummary {
            job_id: log.job.job_id,
            nprocs: log.job.nprocs,
            runtime_secs: log.job.end_time.saturating_sub(log.job.start_time),
            files: log.names.len(),
            bytes_read: log.total_counter(m, "POSIX_BYTES_READ").max(0) as u64,
            bytes_written: log.total_counter(m, "POSIX_BYTES_WRITTEN").max(0) as u64,
            reads: log.total_counter(m, "POSIX_READS").max(0) as u64,
            writes: log.total_counter(m, "POSIX_WRITES").max(0) as u64,
            read_time: log.total_fcounter(m, "POSIX_F_READ_TIME"),
            write_time: log.total_fcounter(m, "POSIX_F_WRITE_TIME"),
            meta_time: log.total_fcounter(m, "POSIX_F_META_TIME"),
            per_file_written,
            write_size_histogram,
            read_size_histogram,
        }
    }

    /// Average POSIX write bandwidth over cumulative write time, MiB/s.
    /// Zero when no time was recorded.
    #[must_use]
    pub fn write_bandwidth_mib(&self) -> f64 {
        if self.write_time <= 0.0 {
            return 0.0;
        }
        self.bytes_written as f64 / (1024.0 * 1024.0) / self.write_time
    }

    /// Average POSIX read bandwidth over cumulative read time, MiB/s.
    #[must_use]
    pub fn read_bandwidth_mib(&self) -> f64 {
        if self.read_time <= 0.0 {
            return 0.0;
        }
        self.bytes_read as f64 / (1024.0 * 1024.0) / self.read_time
    }
}

/// Render `darshan-parser`-style text output for a log.
#[must_use]
pub fn render_parser_output(log: &DarshanLog) -> String {
    let mut out = String::new();
    out.push_str("# darshan log version: 1 (iokc reimplementation)\n");
    out.push_str(&format!("# exe: {}\n", log.job.exe));
    out.push_str(&format!("# jobid: {}\n", log.job.job_id));
    out.push_str(&format!("# nprocs: {}\n", log.job.nprocs));
    out.push_str(&format!("# start_time: {}\n", log.job.start_time));
    out.push_str(&format!("# end_time: {}\n", log.job.end_time));
    out.push_str(&format!(
        "# run time: {}\n",
        log.job.end_time.saturating_sub(log.job.start_time)
    ));
    out.push('\n');
    for module in Module::ALL {
        let records = log.records(module);
        if records.is_empty() {
            continue;
        }
        out.push_str(&format!("# {} module data\n", module.as_str()));
        out.push_str("#<module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>\n");
        for rec in records {
            let path = log.path_of(rec.record_id).unwrap_or("<unknown>");
            for (name, value) in module.counter_names().iter().zip(&rec.counters) {
                out.push_str(&format!(
                    "{}\t{}\t{}\t{}\t{}\t{}\n",
                    module.as_str(),
                    rec.rank,
                    rec.record_id,
                    name,
                    value,
                    path
                ));
            }
            for (name, value) in module.fcounter_names().iter().zip(&rec.fcounters) {
                out.push_str(&format!(
                    "{}\t{}\t{}\t{}\t{:.6}\t{}\n",
                    module.as_str(),
                    rec.rank,
                    rec.record_id,
                    name,
                    value,
                    path
                ));
            }
        }
        out.push('\n');
    }
    if !log.dxt.is_empty() {
        out.push_str("# DXT trace data\n");
        out.push_str("#<module>\t<rank>\t<op>\t<segment>\t<offset>\t<length>\t<start>\t<end>\n");
        for (i, seg) in log.dxt.iter().enumerate() {
            out.push_str(&format!(
                "X_POSIX\t{}\t{}\t{}\t{}\t{}\t{:.6}\t{:.6}\n",
                seg.rank,
                if seg.is_write { "write" } else { "read" },
                i,
                seg.offset,
                seg.length,
                seg.start,
                seg.end
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogBuilder;

    fn sample() -> DarshanLog {
        let mut b = LogBuilder::new(7, 2, "ior", true);
        b.set_times(100, 160);
        b.open(Module::Posix, "/scratch/a", 0, 0.0, 0.1);
        b.transfer("/scratch/a", 0, true, 0, 2 * 1024 * 1024, 0.1, 1.1, None);
        b.transfer("/scratch/a", 0, false, 0, 1024, 1.1, 1.2, None);
        b.close(Module::Posix, "/scratch/a", 0, 1.2, 1.3);
        b.finish()
    }

    #[test]
    fn summary_aggregates() {
        let s = LogSummary::from_log(&sample());
        assert_eq!(s.job_id, 7);
        assert_eq!(s.nprocs, 2);
        assert_eq!(s.runtime_secs, 60);
        assert_eq!(s.files, 1);
        assert_eq!(s.bytes_written, 2 * 1024 * 1024);
        assert_eq!(s.bytes_read, 1024);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.per_file_written["/scratch/a"], 2 * 1024 * 1024);
        assert_eq!(s.write_size_histogram["1M-4M"], 1);
        assert_eq!(s.read_size_histogram["100-1K"], 1);
        // 2 MiB over 1.0 s of write time.
        assert!((s.write_bandwidth_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parser_output_contains_counters_and_dxt() {
        let text = render_parser_output(&sample());
        assert!(text.contains("# exe: ior"));
        assert!(text.contains("POSIX_BYTES_WRITTEN\t2097152"));
        assert!(text.contains("X_POSIX\t0\twrite"));
        assert!(text.contains("/scratch/a"));
    }

    #[test]
    fn empty_summary_has_zero_bandwidth() {
        let log = LogBuilder::new(1, 1, "x", false).finish();
        let s = LogSummary::from_log(&log);
        assert_eq!(s.write_bandwidth_mib(), 0.0);
        assert_eq!(s.read_bandwidth_mib(), 0.0);
        assert_eq!(s.files, 0);
    }
}
