//! Regenerate Figure 6 of the paper: IO500 boundary test cases at 40
//! ranks — write-phase variance across runs, stable reads, and one run
//! whose `ior-easy-read` collapses under a broken node, flagged by the
//! bounding box.
//!
//! ```text
//! cargo run --release -p iokc-bench --bin fig6_bounding_box
//! ```
//!
//! Writes `figures/fig6_bounding_box.svg`.

use iokc_analysis::{box_plot, BoundingBox, ChartOptions, Describe, Verdict};
use iokc_bench::run_fig6;
use iokc_core::model::Io500Knowledge;
use iokc_extract::parse_io500_output;

const DIMENSIONS: [&str; 4] = [
    "ior-easy-write",
    "ior-easy-read",
    "ior-hard-write",
    "ior-hard-read",
];

fn main() {
    let started = std::time::Instant::now();
    let data = run_fig6(4, 7);
    eprintln!("fig6 regenerated in {:.1?}", started.elapsed());

    let references: Vec<Io500Knowledge> = data
        .references
        .iter()
        .map(|r| parse_io500_output(&r.render()).expect("io500 output parses"))
        .collect();
    let degraded = parse_io500_output(&data.degraded.render()).expect("io500 output parses");

    println!("Figure 6 — anomaly detection through IO500 boundary test cases");
    println!("\nper-run values (GiB/s):");
    println!("run        easy-write  easy-read  hard-write  hard-read");
    for (i, run) in references.iter().enumerate() {
        print_run(&format!("ref {i}"), run);
    }
    print_run("DEGRADED", &degraded);

    // Variance structure the paper observes: writes scatter, reads don't.
    let series = |name: &str| -> Vec<f64> {
        references
            .iter()
            .map(|r| r.testcase(name).expect("testcase").value)
            .collect()
    };
    let cv = |v: &[f64]| iokc_util::stats::stddev(v) / iokc_util::stats::mean(v).max(1e-12);
    println!("\ncoefficient of variation across healthy runs:");
    for name in DIMENSIONS {
        println!("  {name:<16} {:.3}", cv(&series(name)));
    }
    assert!(
        cv(&series("ior-easy-write")) > cv(&series("ior-easy-read")),
        "paper shape: write variance large, read variance small"
    );

    // The bounding box flags the degraded read.
    let refs: Vec<&Io500Knowledge> = references.iter().collect();
    let bbox = BoundingBox::fit(&refs, &DIMENSIONS, 0.15);
    println!("\n{}", bbox.render_check(&degraded));
    let verdicts = bbox.check(&degraded);
    let below: Vec<&str> = verdicts
        .iter()
        .filter(|(_, _, v)| *v == Verdict::Below)
        .map(|(n, _, _)| n.as_str())
        .collect();
    assert!(
        below.contains(&"ior-easy-read"),
        "the broken-node read must fall below the box (got {below:?})"
    );
    println!("paper:    bad ior-easy read attributed to a possibly broken node");
    println!("measured: {below:?} below the expectation box (injected: node 0 NIC at 4%)");

    // Export the box-plot view (reference distribution per dimension with
    // the degraded run visible as the outlier context).
    std::fs::create_dir_all("figures").expect("figures dir");
    let boxes: Vec<(String, Describe)> = DIMENSIONS
        .iter()
        .map(|name| {
            let mut values = series(name);
            values.push(degraded.testcase(name).expect("testcase").value);
            ((*name).to_owned(), Describe::of(&values))
        })
        .collect();
    let svg = box_plot(
        &boxes,
        &ChartOptions {
            title: "Fig. 6 — IO500 boundary test cases (simulated FUCHS-CSC)".into(),
            x_label: "test case".into(),
            y_label: "GiB/s".into(),
            ..ChartOptions::default()
        },
    );
    std::fs::write("figures/fig6_bounding_box.svg", svg).expect("write svg");
    println!("\nwrote figures/fig6_bounding_box.svg");
}

fn print_run(label: &str, run: &Io500Knowledge) {
    let value = |name: &str| run.testcase(name).map(|t| t.value).unwrap_or(0.0);
    println!(
        "{label:<10} {:>10.3} {:>10.3} {:>11.3} {:>10.3}",
        value("ior-easy-write"),
        value("ior-easy-read"),
        value("ior-hard-write"),
        value("ior-hard-read"),
    );
}
