//! explorerd load harness: hold a fleet of mostly-idle keep-alive
//! connections against an in-process server and measure request
//! latency through the reactor + handler pool.
//!
//! The shape matches the serving design's claim: one reactor thread
//! multiplexes every socket, so a thousand idle keep-alive connections
//! cost poll slots, not threads — healthy traffic keeps flowing and
//! nothing is shed. The harness:
//!
//! 1. populates an in-memory store with `--rows` synthetic runs,
//! 2. opens `--conns` keep-alive connections and warms each with one
//!    request (they then sit idle, pinned by a long `--idle-timeout`),
//! 3. streams the full `/api/runs` listing once over a single
//!    connection — 100k rows arrive chunked, pulled from the snapshot
//!    page by page, never materialized whole,
//! 4. fires `--requests` timed requests over a small active subset
//!    while the rest of the fleet idles, recording p50/p99,
//! 5. sweeps every held connection with one final request: all must
//!    answer 200 (none reaped, none shed) and `explorerd.shed` must
//!    still read zero.
//!
//! Results land in `BENCH_explorerd_load.json` (`--out -` to skip).
//! `--p99-max-ms` turns the run into a CI smoke gate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use iokc_core::model::{
    IterationResult, Knowledge, KnowledgeItem, KnowledgeSource, OperationSummary,
};
use iokc_explorerd::{Server, ServerConfig};
use iokc_obs::{Clock, NullSink, Recorder};
use iokc_store::KnowledgeStore;

struct Args {
    conns: usize,
    requests: usize,
    rows: usize,
    workers: usize,
    p99_max_ms: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        conns: 1000,
        requests: 2000,
        rows: 100_000,
        workers: 4,
        p99_max_ms: None,
        out: "BENCH_explorerd_load.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |what: &str| -> String { it.next().unwrap_or_else(|| panic!("{what} needs a value")) };
        match flag.as_str() {
            "--conns" => args.conns = value("--conns").parse().expect("bad --conns"),
            "--requests" => args.requests = value("--requests").parse().expect("bad --requests"),
            "--rows" => args.rows = value("--rows").parse().expect("bad --rows"),
            "--workers" => args.workers = value("--workers").parse().expect("bad --workers"),
            "--p99-max-ms" => {
                args.p99_max_ms = Some(value("--p99-max-ms").parse().expect("bad --p99-max-ms"));
            }
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One synthetic benchmark run, heavy enough that serialization has a
/// real cost (two operation summaries, four iteration results).
fn knowledge(i: usize) -> Knowledge {
    let api = ["POSIX", "MPIIO", "HDF5"][i % 3];
    let bw = i as f64 * 1.5;
    let command = format!(
        "ior -a {} -b {}m -t 1m -o /scratch/load{i}",
        api.to_lowercase(),
        i % 16 + 1
    );
    let mut k = Knowledge::new(KnowledgeSource::Ior, &command);
    k.pattern.api = api.to_owned();
    k.pattern.tasks = (i % 128) as u32;
    k.pattern.transfer_size = 1 << 20;
    for op in ["write", "read"] {
        k.summaries.push(OperationSummary {
            operation: op.to_owned(),
            api: api.to_owned(),
            max_mib: bw * 1.2,
            min_mib: bw * 0.8,
            mean_mib: bw,
            stddev_mib: 1.0,
            mean_ops: bw / 2.0,
            iterations: 2,
        });
        for iteration in 0..2u32 {
            k.results.push(IterationResult {
                operation: op.to_owned(),
                iteration,
                bw_mib: bw + f64::from(iteration),
                ops: 10,
                ops_per_sec: 5.0,
                latency_s: 0.001,
                open_s: 0.002,
                wrrd_s: 1.0,
                close_s: 0.003,
                total_s: 1.1,
            });
        }
    }
    k
}

fn populated(rows: usize) -> KnowledgeStore {
    let mut store = KnowledgeStore::in_memory();
    let mut batch: Vec<KnowledgeItem> = Vec::with_capacity(1024);
    for i in 0..rows {
        batch.push(KnowledgeItem::Benchmark(knowledge(i)));
        if batch.len() == 1024 {
            store.save_batch(&batch).expect("save batch");
            batch.clear();
        }
    }
    if !batch.is_empty() {
        store.save_batch(&batch).expect("save batch");
    }
    store
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// One keep-alive request; returns (status, body bytes). De-chunks when
/// the response streams.
fn request(stream: &mut TcpStream, path: &str) -> (u16, usize) {
    write!(stream, "GET {path} HTTP/1.1\r\nHost: load\r\n\r\n").expect("send request");
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, usize) {
    let mut raw: Vec<u8> = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let head_len;
    // Head first.
    let (status, chunked, content_length) = loop {
        if let Some(split) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            head_len = split + 4;
            let head = String::from_utf8_lossy(&raw[..split]).to_ascii_lowercase();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .expect("status line")
                .parse()
                .expect("numeric status");
            let chunked = head.contains("transfer-encoding: chunked");
            let content_length: usize = head
                .lines()
                .find(|l| l.starts_with("content-length:"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().parse().expect("content length"))
                .unwrap_or(0);
            break (status, chunked, content_length);
        }
        let n = stream.read(&mut buf).expect("read head");
        assert!(n > 0, "connection closed before a full head");
        raw.extend_from_slice(&buf[..n]);
    };
    if chunked {
        // Drain chunks until the 0-length terminator; count body bytes
        // without keeping them (the point is bounded client memory too).
        let mut tail = raw.split_off(head_len);
        let mut body = 0usize;
        loop {
            if let Some(done) = drain_chunks(&mut tail, &mut body) {
                if done {
                    return (status, body);
                }
            }
            let n = stream.read(&mut buf).expect("read chunk");
            assert!(n > 0, "connection closed mid-stream");
            tail.extend_from_slice(&buf[..n]);
        }
    }
    let mut have = raw.len() - head_len;
    while have < content_length {
        let n = stream.read(&mut buf).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        have += n;
    }
    (status, content_length)
}

/// Consume complete chunks from the front of `tail`, adding their sizes
/// to `body`. Returns `Some(true)` when the terminating chunk was seen,
/// `Some(false)` when more data is needed, `None` never (placeholder
/// for readability at call site).
fn drain_chunks(tail: &mut Vec<u8>, body: &mut usize) -> Option<bool> {
    loop {
        let Some(line_end) = tail.windows(2).position(|w| w == b"\r\n") else {
            return Some(false);
        };
        let size_hex = String::from_utf8_lossy(&tail[..line_end]).to_string();
        let size = usize::from_str_radix(size_hex.trim(), 16).expect("chunk size");
        let frame = line_end + 2 + size + 2;
        if tail.len() < frame {
            return Some(false);
        }
        tail.drain(..frame);
        if size == 0 {
            return Some(true);
        }
        *body += size;
    }
}

/// Civil date (UTC) from the system clock, for the report header.
fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut days = (secs / 86_400) as i64;
    let mut year = 1970i64;
    loop {
        let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
        let len = if leap { 366 } else { 365 };
        if days < len {
            break;
        }
        days -= len;
        year += 1;
    }
    let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
    let feb = if leap { 29 } else { 28 };
    let lens = [31, feb, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let mut month = 1;
    for len in lens {
        if days < len {
            break;
        }
        days -= len;
        month += 1;
    }
    format!("{year:04}-{month:02}-{:02}", days + 1)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    eprintln!(
        "populating store: {} rows ({} workers, {} conns, {} timed requests)",
        args.rows, args.workers, args.conns, args.requests
    );
    let populate_start = Instant::now();
    let store = populated(args.rows);
    let populate_s = populate_start.elapsed().as_secs_f64();

    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    let server = Server::start(
        ServerConfig {
            workers: args.workers,
            // The fleet sits idle between phases; don't reap it.
            idle_timeout: Duration::from_secs(300),
            ..ServerConfig::default()
        },
        store,
        recorder,
    )
    .expect("start server");
    let addr = server.local_addr();

    // Phase 1: open the fleet, one warmup request each.
    let open_start = Instant::now();
    let mut fleet: Vec<TcpStream> = Vec::with_capacity(args.conns);
    for _ in 0..args.conns {
        let mut stream = connect(addr);
        let (status, _) = request(&mut stream, "/healthz");
        assert_eq!(status, 200, "warmup request");
        fleet.push(stream);
    }
    let open_s = open_start.elapsed().as_secs_f64();
    eprintln!("fleet up: {} keep-alive conns in {open_s:.2}s", fleet.len());

    // Phase 2: stream the full listing once — `rows` rows, chunked,
    // pulled from the snapshot in bounded pages.
    let stream_start = Instant::now();
    let (status, stream_bytes) = request(&mut fleet[0], "/api/runs");
    assert_eq!(status, 200, "full listing");
    let stream_s = stream_start.elapsed().as_secs_f64();
    eprintln!(
        "streamed /api/runs: {stream_bytes} body bytes in {stream_s:.2}s ({} rows)",
        args.rows
    );

    // Phase 3: timed requests over a small active subset while the rest
    // of the fleet idles. `/api/runs/1` exercises cache + pool + loop.
    let active = args.conns.clamp(1, 32);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(args.requests);
    for i in 0..args.requests {
        let slot = i % active;
        let start = Instant::now();
        let (status, _) = request(&mut fleet[slot], "/api/runs/1");
        assert_eq!(status, 200, "timed request");
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p50 = percentile(&latencies_ms, 0.50);
    let p99 = percentile(&latencies_ms, 0.99);
    eprintln!(
        "timed: {} requests, p50 {p50:.3}ms p99 {p99:.3}ms",
        args.requests
    );

    // Phase 4: every held connection must still be alive and served —
    // the reactor never shed or reaped healthy keep-alive traffic.
    let sweep_start = Instant::now();
    for stream in &mut fleet {
        let (status, _) = request(stream, "/healthz");
        assert_eq!(status, 200, "final sweep");
    }
    let sweep_s = sweep_start.elapsed().as_secs_f64();

    let metrics = server.metrics().to_json();
    let metrics_compact = metrics.to_compact();
    assert!(
        metrics_compact.contains("\"explorerd.shed\":0"),
        "no healthy traffic shed: {metrics_compact}"
    );
    server.shutdown();

    let report = format!(
        "{{\n  \
         \"bench\": \"explorerd_loadtest (crates/bench/src/bin/explorerd_loadtest.rs)\",\n  \
         \"date\": \"{date}\",\n  \
         \"method\": \"in-process reactor server, {workers} handler workers; {conns} keep-alive connections each warmed with one request then held idle; one full /api/runs stream; {requests} timed GET /api/runs/1 over {active} active conns; final /healthz sweep over every held conn; reproduce with cargo run --release -p iokc-bench --bin explorerd_loadtest\",\n  \
         \"headline\": \"one poll-based reactor thread holds {conns} mostly-idle keep-alive connections while serving p50 {p50:.3}ms / p99 {p99:.3}ms, sheds nothing, and streams a {rows}-row listing in bounded pages\",\n  \
         \"conns\": {conns},\n  \
         \"workers\": {workers},\n  \
         \"store_rows\": {rows},\n  \
         \"populate_s\": {populate_s:.3},\n  \
         \"fleet_open_s\": {open_s:.3},\n  \
         \"stream_rows\": {rows},\n  \
         \"stream_body_bytes\": {stream_bytes},\n  \
         \"stream_s\": {stream_s:.3},\n  \
         \"timed_requests\": {requests},\n  \
         \"active_conns\": {active},\n  \
         \"p50_ms\": {p50:.3},\n  \
         \"p99_ms\": {p99:.3},\n  \
         \"final_sweep_s\": {sweep_s:.3},\n  \
         \"shed\": 0\n}}\n",
        date = today(),
        workers = args.workers,
        conns = args.conns,
        requests = args.requests,
        rows = args.rows,
    );
    if args.out != "-" {
        std::fs::write(&args.out, &report).expect("write report");
        eprintln!("wrote {}", args.out);
    }
    print!("{report}");

    if let Some(max) = args.p99_max_ms {
        assert!(
            p99 <= max,
            "p99 {p99:.3}ms exceeds the configured bound {max:.3}ms"
        );
        eprintln!("p99 bound held: {p99:.3}ms <= {max:.3}ms");
    }
}
