//! Quick calibration check: print the Fig. 5 series at paper scale.

fn main() {
    let start = std::time::Instant::now();
    let data = iokc_bench::run_fig5(42);
    println!("fig5 wall time: {:.1?}", start.elapsed());
    for s in &data.run.samples {
        println!(
            "iter {} {:<5} bw {:8.1} MiB/s iops {:8.1} total {:6.2}s",
            s.iter,
            s.access.as_str(),
            s.bw_mib,
            s.iops,
            s.total_s
        );
    }
}
