//! Regenerate Figure 5 of the paper: per-iteration write/read throughput
//! and operation rates for the §V-E1 IOR run (80 ranks, FUCHS-CSC), with
//! the iteration-2 anomaly, plus the knowledge explorer's detection.
//!
//! ```text
//! cargo run --release -p iokc-bench --bin fig5_iterations
//! ```
//!
//! Writes `figures/fig5_throughput.svg` and prints the series the paper's
//! chart shows. Paper values: write mean ≈ 2850 MiB/s for iterations
//! {1,3,4,5,6}, iteration 2 ≈ 1251 MiB/s; reads ≈ 3110 MiB/s.

use iokc_analysis::{bar_chart, ChartOptions, IterationVarianceDetector, Series};
use iokc_bench::run_fig5;
use iokc_benchmarks::Access;

fn main() {
    let started = std::time::Instant::now();
    let data = run_fig5(42);
    eprintln!("fig5 regenerated in {:.1?}", started.elapsed());

    println!("Figure 5 — performance analysis through multiple iterations");
    println!("command: {}\n", data.knowledge.command);
    println!("iter   write MiB/s   write ops/s   read MiB/s   read ops/s");
    let mut write_series = Vec::new();
    let mut read_series = Vec::new();
    let mut write_ops = Vec::new();
    let mut read_ops = Vec::new();
    for iteration in 0..6u32 {
        let w = data
            .run
            .samples_of(Access::Write)
            .find(|s| s.iter == iteration)
            .expect("write sample");
        let r = data
            .run
            .samples_of(Access::Read)
            .find(|s| s.iter == iteration)
            .expect("read sample");
        println!(
            "{iteration:>4}   {:>11.1}   {:>11.1}   {:>10.1}   {:>10.1}",
            w.bw_mib, w.iops, r.bw_mib, r.iops
        );
        write_series.push((f64::from(iteration), w.bw_mib));
        read_series.push((f64::from(iteration), r.bw_mib));
        write_ops.push(w.iops);
        read_ops.push(r.iops);
    }

    // Paper-vs-measured summary.
    let writes: Vec<f64> = write_series.iter().map(|(_, v)| *v).collect();
    let peers: Vec<f64> = writes
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 1)
        .map(|(_, v)| *v)
        .collect();
    let peer_mean = iokc_util::stats::mean(&peers);
    println!("\npaper:    write mean 2850 MiB/s, anomalous iteration 1251 MiB/s (44%)");
    println!(
        "measured: write mean {:.0} MiB/s, anomalous iteration {:.0} MiB/s ({:.0}%)",
        peer_mean,
        writes[1],
        writes[1] / peer_mean * 100.0
    );

    // The knowledge explorer detects the anomaly.
    let anomalies = IterationVarianceDetector::default().detect(&data.knowledge);
    for anomaly in &anomalies {
        println!(
            "\ndetected: {} iteration {} at {:.0} MiB/s (robust z = {:.1}), corroborated by {}",
            anomaly.operation,
            anomaly.iteration,
            anomaly.bw_mib,
            anomaly.score,
            anomaly.corroborated_by.join(", ")
        );
    }
    assert!(
        anomalies
            .iter()
            .any(|a| a.iteration == 1 && a.operation == "write"),
        "the Fig. 5 anomaly must be detected"
    );

    // Export the chart (write/read throughput per iteration, Fig. 5's
    // upper panel layout).
    std::fs::create_dir_all("figures").expect("figures dir");
    let categories: Vec<String> = (1..=6).map(|i| format!("iter {i}")).collect();
    let svg = bar_chart(
        &categories,
        &[
            Series {
                label: "write MiB/s".into(),
                points: write_series,
            },
            Series {
                label: "read MiB/s".into(),
                points: read_series,
            },
        ],
        &ChartOptions {
            title: "Fig. 5 — throughput per iteration (simulated FUCHS-CSC)".into(),
            x_label: "iteration".into(),
            y_label: "MiB/s".into(),
            ..ChartOptions::default()
        },
    );
    std::fs::write("figures/fig5_throughput.svg", svg).expect("write svg");
    println!("\nwrote figures/fig5_throughput.svg");
}
