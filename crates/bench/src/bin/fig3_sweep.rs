//! Regenerate the Figure 3 ablation: the I/O performance impact factors
//! (application, middleware, file system, hardware), each swept on the
//! simulated FUCHS-CSC system with its effect on write bandwidth.
//!
//! Figure 3 in the paper is a taxonomy, not a data plot; this binary
//! turns each named factor into a measured sweep so the taxonomy is
//! backed by numbers (DESIGN.md experiment F3).
//!
//! ```text
//! cargo run --release -p iokc-bench --bin fig3_sweep
//! ```

use iokc_analysis::ascii_bars;
use iokc_bench::run_fig3_sweep;

fn main() {
    let started = std::time::Instant::now();
    let points = run_fig3_sweep(11);
    eprintln!("fig3 sweep in {:.1?}\n", started.elapsed());

    println!("Figure 3 — I/O performance impact factors (write bandwidth, MiB/s)\n");
    let mut current = String::new();
    let mut group: Vec<(String, f64)> = Vec::new();
    let flush = |factor: &str, group: &mut Vec<(String, f64)>| {
        if group.is_empty() {
            return;
        }
        println!("factor: {factor}");
        print!("{}", ascii_bars(group, 36));
        println!();
        group.clear();
    };
    for point in &points {
        if point.factor != current && !current.is_empty() {
            flush(&current.clone(), &mut group);
        }
        current = point.factor.clone();
        group.push((point.value.clone(), point.write_mib));
    }
    flush(&current.clone(), &mut group);

    // Shape assertions: each factor must visibly move performance.
    let value = |factor: &str, v: &str| -> f64 {
        points
            .iter()
            .find(|p| p.factor == factor && p.value == v)
            .map(|p| p.write_mib)
            .unwrap_or_else(|| panic!("missing point {factor}/{v}"))
    };
    assert!(
        value("transfer_size", "4m") > value("transfer_size", "256k"),
        "larger transfers must win"
    );
    assert!(
        value("access_mode", "file-per-process") >= value("access_mode", "shared-file"),
        "file-per-process must not trail the shared file"
    );
    assert!(
        value("stripe_count", "4") > value("stripe_count", "1") * 1.5,
        "striping must help the single writer"
    );
    assert!(
        value("nodes", "2") > value("nodes", "1") * 1.2,
        "a second node must add bandwidth while storage has headroom"
    );
    assert!(
        value("nodes", "4") >= value("nodes", "2") * 0.95,
        "beyond saturation more nodes must at least hold the level"
    );
    println!("all Figure 3 factor effects reproduced (see DESIGN.md F3).");
}
