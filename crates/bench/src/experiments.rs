//! Reproductions of the paper's experiments (see DESIGN.md §5).
//!
//! Each function regenerates the data behind one figure of the paper on
//! the simulated FUCHS-CSC system; the figure binaries print the series
//! and EXPERIMENTS.md records paper-vs-measured.

use iokc_benchmarks::io500::{run_io500_with_faults, Io500Config, Io500Result, PhaseFaults};
use iokc_benchmarks::ior::{run_ior, Access, IorConfig, IorRunResult};
use iokc_core::model::Knowledge;
use iokc_extract::parse_ior_output;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::{Fault, FaultPlan, FaultTarget};
use iokc_sim::prelude::SystemConfig;
use iokc_sim::time::SimTime;

/// The exact command of §V-E1.
pub const PAPER_COMMAND: &str =
    "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k";

/// The paper's job geometry: 4 nodes × 20 cores = 80 ranks.
#[must_use]
pub fn paper_layout() -> JobLayout {
    JobLayout::new(80, 20)
}

/// Figure 5 data: the six-iteration IOR run with a storage-interference
/// anomaly during the write phase of iteration 2 (index 1).
pub struct Fig5Data {
    /// The stitched IOR run (6 iterations, write + read samples).
    pub run: IorRunResult,
    /// The run's native-format output text.
    pub output: String,
    /// The extracted knowledge object.
    pub knowledge: Knowledge,
}

/// Create every missing ancestor directory of `path` (like `mkdir -p`
/// before launching the benchmark job).
pub fn ensure_parent_dirs(world: &mut World, path: &str) {
    let mut missing = Vec::new();
    let mut dir = iokc_sim::script::parent_dir(path).to_owned();
    while dir != "/" && !world.namespace().is_dir(&dir) {
        missing.push(dir.clone());
        dir = iokc_sim::script::parent_dir(&dir).to_owned();
    }
    if missing.is_empty() {
        return;
    }
    let mut scripts = iokc_sim::script::ScriptSet::new(1);
    for dir in missing.iter().rev() {
        scripts.rank(0).mkdir(dir);
    }
    world
        .run(JobLayout::new(1, 1), &scripts)
        .expect("mkdir -p of benchmark directories");
}

/// Run the Figure 5 experiment. `seed` controls all randomness.
///
/// The injected cause is background interference on every storage target
/// (a competing job flushing checkpoints), active only while iteration 2
/// writes — reproducing the paper's observation that iteration 2 achieves
/// less than half the write throughput of the other five iterations while
/// reads stay largely unaffected.
pub fn run_fig5(seed: u64) -> Fig5Data {
    let system = SystemConfig::fuchs_csc().with_noise(0.015);
    let mut world = World::new(system, FaultPlan::none(), seed);
    let layout = paper_layout();
    let base = IorConfig::parse_command(PAPER_COMMAND).expect("paper command parses");
    ensure_parent_dirs(&mut world, &base.test_file);

    let mut write_cfg = base.clone();
    write_cfg.iterations = 1;
    write_cfg.read = false;
    write_cfg.keep_file = true;
    let mut read_cfg = base.clone();
    read_cfg.iterations = 1;
    read_cfg.write = false;
    read_cfg.keep_file = true;

    let mut samples = Vec::new();
    let mut phases = Vec::new();
    for iteration in 0..base.iterations {
        if iteration == 1 {
            // Interference: all six targets degraded to ~42% for the
            // whole write phase.
            let mut plan = FaultPlan::none();
            for target in 0..world.system().pfs.storage_targets {
                plan.push(Fault::slow_target(
                    target,
                    0.42,
                    world.now(),
                    SimTime(u64::MAX),
                ));
            }
            world.set_faults(plan);
        }
        let write = run_ior(&mut world, layout, &write_cfg, seed ^ u64::from(iteration))
            .expect("fig5 write phase");
        if iteration == 1 {
            world.set_faults(FaultPlan::none());
        }
        let read = run_ior(&mut world, layout, &read_cfg, seed ^ u64::from(iteration))
            .expect("fig5 read phase");
        for run in [write, read] {
            for mut sample in run.samples {
                sample.iter = iteration;
                samples.push(sample);
            }
            for (access, _, phase) in run.phases {
                phases.push((access, iteration, phase));
            }
        }
    }

    let run = IorRunResult {
        config: base,
        np: layout.np,
        ppn: layout.ppn,
        samples,
        phases,
    };
    let output = run.render();
    let knowledge = parse_ior_output(&output).expect("own output parses");
    Fig5Data {
        run,
        output,
        knowledge,
    }
}

/// Figure 6 data: repeated IO500 runs plus one run with a node failure
/// during `ior-easy-read`.
pub struct Fig6Data {
    /// Healthy reference runs.
    pub references: Vec<Io500Result>,
    /// The degraded run.
    pub degraded: Io500Result,
}

/// Run the Figure 6 experiment: `reference_runs` healthy IO500 executions
/// at 40 ranks (differing in seed, under slowly-varying storage noise so
/// the *write* phases scatter), then one run whose `ior-easy-read` phase
/// suffers a broken node.
pub fn run_fig6(reference_runs: usize, seed: u64) -> Fig6Data {
    let layout = JobLayout::new(40, 20);
    let config = Io500Config::standard("/scratch/io500");
    let mut references = Vec::with_capacity(reference_runs);
    for i in 0..reference_runs {
        let system = SystemConfig::fuchs_csc()
            .with_noise(0.22)
            .with_noise_interval(15_000_000_000);
        let mut world = World::new(
            system,
            FaultPlan::none(),
            seed.wrapping_add(i as u64 * 7919),
        );
        let result = run_io500_with_faults(&mut world, layout, &config, &PhaseFaults::new())
            .expect("reference io500 run");
        references.push(result);
    }

    let system = SystemConfig::fuchs_csc()
        .with_noise(0.22)
        .with_noise_interval(15_000_000_000);
    let mut world = World::new(
        system,
        FaultPlan::none(),
        seed.wrapping_mul(31).wrapping_add(1),
    );
    let mut schedule = PhaseFaults::new();
    // Node 0's NIC collapses while ior-easy-read runs (transient failure:
    // the paper suspects "a broken node" behind the bad ior-easy read).
    schedule.insert(
        "ior-easy-read".to_owned(),
        FaultPlan::none().with(Fault::permanent(FaultTarget::NodeNic(0), 0.04)),
    );
    let degraded =
        run_io500_with_faults(&mut world, layout, &config, &schedule).expect("degraded io500 run");
    Fig6Data {
        references,
        degraded,
    }
}

/// One point of the Figure 3 impact-factor sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Factor being varied.
    pub factor: String,
    /// Value of the factor (human-readable).
    pub value: String,
    /// Measured write bandwidth, MiB/s.
    pub write_mib: f64,
}

/// The Figure 3 ablation: sweep each I/O performance impact factor the
/// figure names (application: transfer size, access mode; middleware:
/// collective; file system: stripe count; hardware: node count) and
/// measure its effect on write bandwidth.
pub fn run_fig3_sweep(seed: u64) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    let base_cmd = "ior -a mpiio -b 4m -t 1m -s 8 -F -C -e -i 1 -o /scratch/sweep -w";

    let measure = |cfg: &IorConfig, np: u32, ppn: u32, seed: u64| -> f64 {
        let mut world = World::new(
            SystemConfig::fuchs_csc().with_noise(0.0),
            FaultPlan::none(),
            seed,
        );
        run_ior(&mut world, JobLayout::new(np, ppn), cfg, seed)
            .expect("sweep run")
            .max_bw(Access::Write)
    };

    // Application: transfer size.
    for (label, xfer) in [("256k", 256u64 << 10), ("1m", 1 << 20), ("4m", 4 << 20)] {
        let mut cfg = IorConfig::parse_command(base_cmd).expect("base command");
        cfg.transfer_size = xfer;
        cfg.block_size = 4 << 20;
        points.push(SweepPoint {
            factor: "transfer_size".to_owned(),
            value: label.to_owned(),
            write_mib: measure(&cfg, 40, 20, seed),
        });
    }
    // Application: access mode (file-per-process vs shared).
    for (label, fpp) in [("file-per-process", true), ("shared-file", false)] {
        let mut cfg = IorConfig::parse_command(base_cmd).expect("base command");
        cfg.file_per_proc = fpp;
        points.push(SweepPoint {
            factor: "access_mode".to_owned(),
            value: label.to_owned(),
            write_mib: measure(&cfg, 40, 20, seed + 1),
        });
    }
    // Middleware: collective buffering on the shared file.
    for (label, collective) in [("independent", false), ("collective", true)] {
        let mut cfg = IorConfig::parse_command(base_cmd).expect("base command");
        cfg.file_per_proc = false;
        cfg.collective = collective;
        cfg.api = cfg.api.with_collective(collective);
        points.push(SweepPoint {
            factor: "middleware".to_owned(),
            value: label.to_owned(),
            write_mib: measure(&cfg, 40, 20, seed + 2),
        });
    }
    // File system: stripe count. A single writer exposes striping: with
    // several ranks and file-per-process, BeeGFS's round-robin placement
    // already spreads files over targets and masks the stripe width.
    for stripe in [1u32, 2, 4, 6] {
        let mut cfg = IorConfig::parse_command(base_cmd).expect("base command");
        cfg.stripe = iokc_sim::script::StripeHint {
            chunk_size: None,
            stripe_count: Some(stripe),
        };
        points.push(SweepPoint {
            factor: "stripe_count".to_owned(),
            value: stripe.to_string(),
            write_mib: measure(&cfg, 1, 1, seed + 3),
        });
    }
    // Hardware: node count. With 4 ranks per node, one node cannot keep
    // every storage target busy; added nodes raise bandwidth until the
    // storage backend saturates.
    for nodes in [1u32, 2, 4] {
        let cfg = IorConfig::parse_command(base_cmd).expect("base command");
        points.push(SweepPoint {
            factor: "nodes".to_owned(),
            value: nodes.to_string(),
            write_mib: measure(&cfg, nodes * 4, 4, seed + 4),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    // These run the real FUCHS-scale experiments, so they are `#[ignore]`d
    // by default (minutes in debug builds); `cargo test -- --ignored` or
    // the release-mode figure binaries exercise them. Scaled-down copies
    // run in the integration tests.

    #[test]
    #[ignore = "FUCHS-scale; run via figure binaries or --ignored"]
    fn fig5_shape_holds() {
        let data = run_fig5(42);
        let writes: Vec<f64> = data
            .run
            .samples_of(Access::Write)
            .map(|s| s.bw_mib)
            .collect();
        assert_eq!(writes.len(), 6);
        let anomalous = writes[1];
        let peers: Vec<f64> = writes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, v)| *v)
            .collect();
        let peer_mean = iokc_util::stats::mean(&peers);
        assert!(
            anomalous < peer_mean / 2.0,
            "anomaly {anomalous} not below half of {peer_mean}"
        );
    }

    #[test]
    #[ignore = "FUCHS-scale; run via figure binaries or --ignored"]
    fn fig6_shape_holds() {
        let data = run_fig6(3, 7);
        let easy_reads: Vec<f64> = data
            .references
            .iter()
            .map(|r| r.phase("ior-easy-read").unwrap().value)
            .collect();
        let degraded_read = data.degraded.phase("ior-easy-read").unwrap().value;
        assert!(degraded_read < iokc_util::stats::min(&easy_reads) * 0.8);
    }
}
