//! `iokc-bench` — the benchmark/experiment harness.
//!
//! [`experiments`] reproduces every figure of the paper on the simulated
//! FUCHS-CSC system; the `src/bin` binaries print each figure's series,
//! and the Criterion benches under `benches/` measure the substrate and
//! regenerate the figures under timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{
    paper_layout, run_fig3_sweep, run_fig5, run_fig6, Fig5Data, Fig6Data, SweepPoint, PAPER_COMMAND,
};
