//! Store benches: bulk insert, indexed-equality vs full-scan selection,
//! and the SQL front end (ablation: secondary indexes, DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_store::{sql, Column, ColumnType, Database, OrderBy, Predicate, TableSchema, Value};
use std::hint::black_box;

fn populated(rows: usize) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "performances",
            vec![
                Column::required("command", ColumnType::Text),
                Column::required("api", ColumnType::Text),
                Column::new("tasks", ColumnType::Integer),
                Column::new("bw", ColumnType::Real),
            ],
        )
        .with_index("api"),
    )
    .unwrap();
    for i in 0..rows {
        let api = ["POSIX", "MPIIO", "HDF5"][i % 3];
        db.insert(
            "performances",
            vec![
                Value::from(format!("ior -b {i}m")),
                Value::from(api),
                Value::from((i % 128) as u32),
                Value::from(i as f64 * 1.5),
            ],
        )
        .unwrap();
    }
    db
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    let db = populated(10_000);

    group.bench_function("insert_10k_rows", |b| {
        b.iter(|| black_box(populated(10_000).row_count("performances").unwrap()));
    });

    group.bench_function("select_eq_indexed", |b| {
        b.iter(|| {
            let rows = db
                .select(
                    "performances",
                    &Predicate::Eq("api".into(), Value::from("MPIIO")),
                    OrderBy::Id,
                    None,
                )
                .unwrap();
            black_box(rows.len())
        });
    });

    group.bench_function("select_scan_equivalent", |b| {
        b.iter(|| {
            let rows = db
                .select(
                    "performances",
                    &Predicate::Contains("api".into(), "MPIIO".into()),
                    OrderBy::Id,
                    None,
                )
                .unwrap();
            black_box(rows.len())
        });
    });

    group.bench_function("sql_parse_and_select", |b| {
        b.iter(|| {
            let rows = sql::query(
                &db,
                "SELECT * FROM performances WHERE tasks > 64 AND bw < 5000 ORDER BY bw DESC LIMIT 20",
            )
            .unwrap();
            black_box(rows.len())
        });
    });

    group.bench_function("json_image_roundtrip_1k", |b| {
        let small = populated(1_000);
        b.iter(|| {
            let image = iokc_store::persist::to_json(&small);
            let restored = iokc_store::persist::from_json(&image).unwrap();
            black_box(restored.row_count("performances").unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
