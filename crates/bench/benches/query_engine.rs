//! Query-engine benches (ablation: predicate pushdown + secondary
//! indexes + summary projection, DESIGN.md §"Query engine").
//!
//! Each pair contrasts the typed query engine against the pattern it
//! replaced: deserialize every knowledge object out of the store, then
//! filter/sort/count in application code. On a 1k-run store the engine
//! answers a selective filter from its indexes while touching only the
//! rows it returns; the old path pays full deserialization for all
//! 1 000 runs on every query.

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_core::model::{
    IterationResult, Knowledge, KnowledgeItem, KnowledgeSource, OperationSummary,
};
use iokc_store::{
    AggregateQuery, DeadlineToken, Factor, GroupBy, KnowledgeStore, Query, RunKind, RunOrder,
    RunPredicate,
};
use std::hint::black_box;

/// One synthetic benchmark run with realistic weight: two operation
/// summaries and four per-iteration results, so full deserialization
/// has a real cost to pay.
fn knowledge(i: usize) -> Knowledge {
    let api = ["POSIX", "MPIIO", "HDF5"][i % 3];
    let bw = i as f64 * 1.5;
    let command = format!(
        "ior -a {} -b {}m -t 1m -o /scratch/q{i}",
        api.to_lowercase(),
        i % 16 + 1
    );
    let mut k = Knowledge::new(KnowledgeSource::Ior, &command);
    k.pattern.api = api.to_owned();
    k.pattern.tasks = (i % 128) as u32;
    k.pattern.transfer_size = 1 << 20;
    for op in ["write", "read"] {
        k.summaries.push(OperationSummary {
            operation: op.to_owned(),
            api: api.to_owned(),
            max_mib: bw * 1.2,
            min_mib: bw * 0.8,
            mean_mib: bw,
            stddev_mib: 1.0,
            mean_ops: bw / 2.0,
            iterations: 2,
        });
        for iteration in 0..2u32 {
            k.results.push(IterationResult {
                operation: op.to_owned(),
                iteration,
                bw_mib: bw + f64::from(iteration),
                ops: 10,
                ops_per_sec: 5.0,
                latency_s: 0.001,
                open_s: 0.002,
                wrrd_s: 1.0,
                close_s: 0.003,
                total_s: 1.1,
            });
        }
    }
    k
}

fn populated(runs: usize) -> KnowledgeStore {
    let mut store = KnowledgeStore::in_memory();
    for i in 0..runs {
        store.save_knowledge(&knowledge(i)).unwrap();
    }
    store
}

/// The selective filter both sides answer: one API out of three, one
/// bandwidth band out of the whole range (~7% of the store).
fn selective() -> RunPredicate {
    RunPredicate::ApiEq("MPIIO".into()).and(RunPredicate::BandwidthBetween(600.0, 900.0))
}

fn load_all_matches(store: &KnowledgeStore) -> usize {
    let items = store.query_items(&Query::all()).unwrap();
    items
        .iter()
        .filter(|item| match item {
            KnowledgeItem::Benchmark(k) => {
                let bw = k.summary("write").map_or(0.0, |s| s.mean_mib);
                k.pattern.api == "MPIIO" && (600.0..=900.0).contains(&bw)
            }
            KnowledgeItem::Io500(_) => false,
        })
        .count()
}

fn bench_query_engine(c: &mut Criterion) {
    let store = populated(1_000);
    let expected = load_all_matches(&store);
    assert!(expected > 0, "the selective filter must match something");

    let mut group = c.benchmark_group("query_engine");
    group.sample_size(20);

    // Cold selective filter: index-served summary projection…
    group.bench_function("filtered_1k_engine", |b| {
        let q = Query::new(selective());
        b.iter(|| {
            let rows = store
                .query_summaries(&q, &DeadlineToken::unbounded())
                .unwrap();
            assert_eq!(rows.len(), expected);
            black_box(rows.len())
        });
    });

    // …versus deserialize-everything-then-filter.
    group.bench_function("filtered_1k_load_all", |b| {
        b.iter(|| black_box(load_all_matches(&store)));
    });

    // Top-k by bandwidth: sorted index walk with limit pushdown…
    group.bench_function("top10_bandwidth_engine", |b| {
        let q = Query::new(RunPredicate::Kind(RunKind::Benchmark))
            .order_by(RunOrder::Bandwidth)
            .descending()
            .limit(10);
        b.iter(|| {
            let rows = store
                .query_summaries(&q, &DeadlineToken::unbounded())
                .unwrap();
            assert_eq!(rows.len(), 10);
            black_box(rows.last().map(|r| r.bandwidth()))
        });
    });

    // …versus load everything, sort in memory, truncate.
    group.bench_function("top10_bandwidth_load_all", |b| {
        b.iter(|| {
            let items = store.query_items(&Query::all()).unwrap();
            let mut bws: Vec<f64> = items
                .iter()
                .filter_map(|item| match item {
                    KnowledgeItem::Benchmark(k) => {
                        Some(k.summary("write").map_or(0.0, |s| s.mean_mib))
                    }
                    KnowledgeItem::Io500(_) => None,
                })
                .collect();
            bws.sort_by(|a, b| b.total_cmp(a));
            bws.truncate(10);
            black_box(bws.last().copied())
        });
    });

    // The count fast path never touches a row at all.
    group.bench_function("count_engine", |b| {
        b.iter(|| black_box(store.count(&RunPredicate::True).unwrap()));
    });

    group.finish();
}

/// Corpus-scale tier (DESIGN.md §6b): `open()`, point lookup, the
/// selective filter, and batched ingest against a *segmented* on-disk
/// corpus (in-memory VFS — identical code path to a real disk without
/// timing the kernel). The default 2 000-run corpus keeps the CI smoke
/// fast; `IOKC_BENCH_SCALE=100000` reproduces the tier recorded in
/// `BENCH_store_scale.json`. Because `open()` maps segment metadata
/// instead of bulk-rebuilding `RunIndexes`, its cost tracks the segment
/// count, not the corpus size.
fn bench_store_scale(c: &mut Criterion) {
    use iokc_store::{FaultVfs, Vfs};
    use std::path::PathBuf;
    use std::sync::Arc;

    let runs: usize = std::env::var("IOKC_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    const SEAL: usize = 1_024;
    let path = PathBuf::from("/bench-corpus.json");
    let vfs = Arc::new(FaultVfs::pristine());

    // Populate through `save_batch`: each batch shares one flush, and
    // the active generation seals into a segment whenever it crosses
    // the threshold — the exact write path a fleet ingester exercises.
    let mut store =
        KnowledgeStore::open_with_vfs(path.clone(), Arc::clone(&vfs) as Arc<dyn Vfs>).unwrap();
    store.set_seal_threshold(SEAL);
    let mut ingested = 0;
    while ingested < runs {
        let batch: Vec<KnowledgeItem> = (ingested..(ingested + SEAL).min(runs))
            .map(|i| KnowledgeItem::Benchmark(knowledge(i)))
            .collect();
        ingested += batch.len();
        store.save_batch(&batch).unwrap();
    }
    let segments = store.segment_metas().len();
    drop(store);

    let mut group = c.benchmark_group("store_scale");
    group.sample_size(10);

    // Cold open: manifest + segment metadata only, no bulk rebuild.
    group.bench_function(format!("open_{runs}"), |b| {
        b.iter(|| {
            let reopened =
                KnowledgeStore::open_with_vfs(path.clone(), Arc::clone(&vfs) as Arc<dyn Vfs>)
                    .unwrap();
            assert_eq!(reopened.segment_metas().len(), segments);
            black_box(reopened.generation())
        });
    });

    let store =
        KnowledgeStore::open_with_vfs(path.clone(), Arc::clone(&vfs) as Arc<dyn Vfs>).unwrap();

    // Point lookup: bloom filters route the probe past non-matching
    // segments; only the owning segment's body is consulted.
    let mid = (runs as u64).max(2) / 2;
    group.bench_function(format!("point_lookup_{runs}"), |b| {
        b.iter(|| {
            let k = store.load_knowledge(mid).unwrap();
            assert!(k.is_some());
            black_box(k.map(|k| k.results.len()))
        });
    });

    // Selective filter over the whole corpus (summary projections).
    group.bench_function(format!("selective_filter_{runs}"), |b| {
        let q = Query::new(selective());
        b.iter(|| {
            let rows = store
                .query_summaries(&q, &DeadlineToken::unbounded())
                .unwrap();
            black_box(rows.len())
        });
    });

    // Aggregation pushdown: group-by-api percentiles folded inside the
    // store from segment summary blocks (no row materialization)…
    let agg_q = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth)
        .with_predicate(RunPredicate::Kind(RunKind::Benchmark));
    group.bench_function(format!("aggregate_{runs}"), |b| {
        b.iter(|| {
            let res = store
                .aggregate(&agg_q, &DeadlineToken::unbounded())
                .unwrap();
            assert_eq!(res.rows_aggregated as usize, runs);
            black_box(res.groups.len())
        });
    });

    // …versus materializing every summary row and folding client-side:
    // the pattern the pushdown replaced in `iokc agg` and `/api/dist`.
    group.bench_function(format!("aggregate_rows_{runs}"), |b| {
        let q = Query::new(RunPredicate::Kind(RunKind::Benchmark));
        b.iter(|| {
            let rows = store
                .query_summaries(&q, &DeadlineToken::unbounded())
                .unwrap();
            let res = agg_q.evaluate_rows(rows.iter());
            assert_eq!(res.rows_aggregated as usize, runs);
            black_box(res.groups.len())
        });
    });
    drop(store);

    // Steady-state ingest: one 256-run batch appended to the corpus.
    let mut store =
        KnowledgeStore::open_with_vfs(path.clone(), Arc::clone(&vfs) as Arc<dyn Vfs>).unwrap();
    store.set_seal_threshold(SEAL);
    let mut next = runs;
    group.bench_function("ingest_batch_256", |b| {
        b.iter(|| {
            let batch: Vec<KnowledgeItem> = (next..next + 256)
                .map(|i| KnowledgeItem::Benchmark(knowledge(i)))
                .collect();
            next += 256;
            black_box(store.save_batch(&batch).unwrap().len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_query_engine, bench_store_scale);
criterion_main!(benches);
