//! Query-engine benches (ablation: predicate pushdown + secondary
//! indexes + summary projection, DESIGN.md §"Query engine").
//!
//! Each pair contrasts the typed query engine against the pattern it
//! replaced: deserialize every knowledge object out of the store, then
//! filter/sort/count in application code. On a 1k-run store the engine
//! answers a selective filter from its indexes while touching only the
//! rows it returns; the old path pays full deserialization for all
//! 1 000 runs on every query.

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_core::model::{
    IterationResult, Knowledge, KnowledgeItem, KnowledgeSource, OperationSummary,
};
use iokc_store::{KnowledgeStore, Query, RunKind, RunOrder, RunPredicate};
use std::hint::black_box;

/// One synthetic benchmark run with realistic weight: two operation
/// summaries and four per-iteration results, so full deserialization
/// has a real cost to pay.
fn knowledge(i: usize) -> Knowledge {
    let api = ["POSIX", "MPIIO", "HDF5"][i % 3];
    let bw = i as f64 * 1.5;
    let command = format!(
        "ior -a {} -b {}m -t 1m -o /scratch/q{i}",
        api.to_lowercase(),
        i % 16 + 1
    );
    let mut k = Knowledge::new(KnowledgeSource::Ior, &command);
    k.pattern.api = api.to_owned();
    k.pattern.tasks = (i % 128) as u32;
    k.pattern.transfer_size = 1 << 20;
    for op in ["write", "read"] {
        k.summaries.push(OperationSummary {
            operation: op.to_owned(),
            api: api.to_owned(),
            max_mib: bw * 1.2,
            min_mib: bw * 0.8,
            mean_mib: bw,
            stddev_mib: 1.0,
            mean_ops: bw / 2.0,
            iterations: 2,
        });
        for iteration in 0..2u32 {
            k.results.push(IterationResult {
                operation: op.to_owned(),
                iteration,
                bw_mib: bw + f64::from(iteration),
                ops: 10,
                ops_per_sec: 5.0,
                latency_s: 0.001,
                open_s: 0.002,
                wrrd_s: 1.0,
                close_s: 0.003,
                total_s: 1.1,
            });
        }
    }
    k
}

fn populated(runs: usize) -> KnowledgeStore {
    let mut store = KnowledgeStore::in_memory();
    for i in 0..runs {
        store.save_knowledge(&knowledge(i)).unwrap();
    }
    store
}

/// The selective filter both sides answer: one API out of three, one
/// bandwidth band out of the whole range (~7% of the store).
fn selective() -> RunPredicate {
    RunPredicate::ApiEq("MPIIO".into()).and(RunPredicate::BandwidthBetween(600.0, 900.0))
}

fn load_all_matches(store: &KnowledgeStore) -> usize {
    #[allow(deprecated)]
    let items = store.load_all_items().unwrap();
    items
        .iter()
        .filter(|item| match item {
            KnowledgeItem::Benchmark(k) => {
                let bw = k.summary("write").map_or(0.0, |s| s.mean_mib);
                k.pattern.api == "MPIIO" && (600.0..=900.0).contains(&bw)
            }
            KnowledgeItem::Io500(_) => false,
        })
        .count()
}

fn bench_query_engine(c: &mut Criterion) {
    let store = populated(1_000);
    let expected = load_all_matches(&store);
    assert!(expected > 0, "the selective filter must match something");

    let mut group = c.benchmark_group("query_engine");
    group.sample_size(20);

    // Cold selective filter: index-served summary projection…
    group.bench_function("filtered_1k_engine", |b| {
        let q = Query::new(selective());
        b.iter(|| {
            let rows = store.query_summaries(&q).unwrap();
            assert_eq!(rows.len(), expected);
            black_box(rows.len())
        });
    });

    // …versus deserialize-everything-then-filter.
    group.bench_function("filtered_1k_load_all", |b| {
        b.iter(|| black_box(load_all_matches(&store)));
    });

    // Top-k by bandwidth: sorted index walk with limit pushdown…
    group.bench_function("top10_bandwidth_engine", |b| {
        let q = Query::new(RunPredicate::Kind(RunKind::Benchmark))
            .order_by(RunOrder::Bandwidth)
            .descending()
            .limit(10);
        b.iter(|| {
            let rows = store.query_summaries(&q).unwrap();
            assert_eq!(rows.len(), 10);
            black_box(rows.last().map(|r| r.bandwidth()))
        });
    });

    // …versus load everything, sort in memory, truncate.
    group.bench_function("top10_bandwidth_load_all", |b| {
        b.iter(|| {
            #[allow(deprecated)]
            let items = store.load_all_items().unwrap();
            let mut bws: Vec<f64> = items
                .iter()
                .filter_map(|item| match item {
                    KnowledgeItem::Benchmark(k) => {
                        Some(k.summary("write").map_or(0.0, |s| s.mean_mib))
                    }
                    KnowledgeItem::Io500(_) => None,
                })
                .collect();
            bws.sort_by(|a, b| b.total_cmp(a));
            bws.truncate(10);
            black_box(bws.last().copied())
        });
    });

    // The count fast path never touches a row at all.
    group.bench_function("count_engine", |b| {
        b.iter(|| black_box(store.count(&RunPredicate::True).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_query_engine);
criterion_main!(benches);
