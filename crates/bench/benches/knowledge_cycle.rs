//! Bench the paper's contribution itself: a full knowledge-cycle
//! iteration (generate → extract → persist → analyze → use) at test
//! scale, plus the extraction-and-persistence half in isolation so the
//! workflow overhead is separable from the benchmark runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::phases::Extractor;
use iokc_core::KnowledgeCycle;
use iokc_extract::IorExtractor;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use iokc_usage::RegenerateUsage;
use std::hint::black_box;

fn build_cycle(seed: u64) -> KnowledgeCycle {
    let world = World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
    let config = IorConfig::parse_command(
        "ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 2 -o /scratch/bench -k",
    )
    .expect("bench command parses");
    let generator = IorGenerator::new(world, JobLayout::new(4, 2), config, seed);
    let mut cycle = KnowledgeCycle::new();
    cycle
        .add_generator(Box::new(generator))
        .add_extractor(Box::new(IorExtractor))
        .add_persister(Box::new(KnowledgeStore::in_memory()))
        .add_analyzer(Box::new(iokc_analysis::IterationVarianceDetector::default()))
        .add_analyzer(Box::new(iokc_analysis::TrendDetector::default()))
        .add_usage(Box::new(RegenerateUsage::default()));
    cycle
}

fn bench_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_cycle");
    group.sample_size(10);

    group.bench_function("full_iteration_4ranks", |b| {
        b.iter(|| {
            let mut cycle = build_cycle(17);
            let report = cycle.run_once().expect("cycle runs");
            assert_eq!(report.extracted, 1);
            black_box(report.persisted_ids)
        });
    });

    group.bench_function("three_iterations_with_regeneration", |b| {
        b.iter(|| {
            let mut cycle = build_cycle(18);
            let reports = cycle.run_iterative(3).expect("cycle iterates");
            assert_eq!(reports.len(), 3);
            black_box(reports.len())
        });
    });

    // Extraction alone: parse a fixed artifact set repeatedly.
    let artifacts = {
        let world = World::new(SystemConfig::test_small(), FaultPlan::none(), 19);
        let config = IorConfig::parse_command(
            "ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 4 -o /scratch/x -k",
        )
        .expect("bench command parses");
        let mut generator = IorGenerator::new(world, JobLayout::new(4, 2), config, 19);
        iokc_core::phases::Generator::generate(&mut generator).expect("artifacts")
    };
    group.bench_function("extract_and_persist_only", |b| {
        b.iter(|| {
            let refs: Vec<&iokc_core::phases::Artifact> = artifacts
                .iter()
                .filter(|a| IorExtractor.accepts(a))
                .collect();
            let items = IorExtractor.extract(&refs).expect("extracts");
            let mut store = KnowledgeStore::in_memory();
            let mut ids = Vec::new();
            for item in &items {
                if let iokc_core::model::KnowledgeItem::Benchmark(k) = item {
                    ids.push(store.save_knowledge(k).expect("persists"));
                }
            }
            black_box(ids)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
