//! Bench the paper's contribution itself: a full knowledge-cycle
//! iteration (generate → extract → persist → analyze → use) at test
//! scale, plus the extraction-and-persistence half in isolation so the
//! workflow overhead is separable from the benchmark runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::phases::{Extractor, PhaseKind};
use iokc_core::{KnowledgeCycle, Observability, PhaseCtx};
use iokc_extract::IorExtractor;
use iokc_obs::{Clock, NullSink, Recorder, VirtualClock};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use iokc_usage::RegenerateUsage;
use std::hint::black_box;

fn build_cycle(seed: u64) -> KnowledgeCycle {
    let world = World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
    let config = IorConfig::parse_command(
        "ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 2 -o /scratch/bench -k",
    )
    .expect("bench command parses");
    let generator = IorGenerator::new(world, JobLayout::new(4, 2), config, seed);
    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()))
        .register(ModuleBox::analyzer(
            iokc_analysis::IterationVarianceDetector::default(),
        ))
        .register(ModuleBox::analyzer(iokc_analysis::TrendDetector::default()))
        .register(ModuleBox::usage(RegenerateUsage::default()));
    cycle
}

fn bench_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_cycle");
    group.sample_size(10);

    group.bench_function("full_iteration_4ranks", |b| {
        b.iter(|| {
            let mut cycle = build_cycle(17);
            let report = cycle.run_once().expect("cycle runs");
            assert_eq!(report.extracted, 1);
            black_box(report.persisted_ids)
        });
    });

    // The same iteration with full span/metric recording enabled: the
    // observability acceptance gate is <5% overhead over the disabled
    // path above.
    group.bench_function("full_iteration_instrumented", |b| {
        b.iter(|| {
            let mut cycle = build_cycle(17);
            let recorder = Recorder::new(
                Clock::Virtual(VirtualClock::new()),
                std::sync::Arc::new(NullSink),
            );
            cycle.set_observability(Observability::new(recorder));
            let report = cycle.run_once().expect("cycle runs");
            assert_eq!(report.extracted, 1);
            black_box(report.persisted_ids)
        });
    });

    group.bench_function("three_iterations_with_regeneration", |b| {
        b.iter(|| {
            let mut cycle = build_cycle(18);
            let reports = cycle.run_iterative(3).expect("cycle iterates");
            assert_eq!(reports.len(), 3);
            black_box(reports.len())
        });
    });

    // Extraction alone: parse a fixed artifact set repeatedly.
    let artifacts = {
        let world = World::new(SystemConfig::test_small(), FaultPlan::none(), 19);
        let config = IorConfig::parse_command(
            "ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 4 -o /scratch/x -k",
        )
        .expect("bench command parses");
        let mut generator = IorGenerator::new(world, JobLayout::new(4, 2), config, 19);
        let mut ctx = PhaseCtx::detached(PhaseKind::Generation, "bench");
        iokc_core::phases::Generator::generate(&mut generator, &mut ctx).expect("artifacts")
    };
    group.bench_function("extract_and_persist_only", |b| {
        b.iter(|| {
            let refs: Vec<&iokc_core::phases::Artifact> = artifacts
                .iter()
                .filter(|a| IorExtractor.accepts(a))
                .collect();
            let mut ctx = PhaseCtx::detached(PhaseKind::Extraction, "bench");
            let items = IorExtractor.extract(&mut ctx, &refs).expect("extracts");
            let mut store = KnowledgeStore::in_memory();
            let mut ids = Vec::new();
            for item in &items {
                if let iokc_core::model::KnowledgeItem::Benchmark(k) = item {
                    ids.push(store.save_knowledge(k).expect("persists"));
                }
            }
            black_box(ids)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
