//! Explorer-service benches: request throughput against a cold vs a
//! warm query cache. The cold side forces a miss on every request by
//! varying the query string (each normalized key is new); the warm side
//! repeats one query so everything after the first request is served
//! from the cache. The gap is the cost of the store read + render that
//! the cache elides.

use std::sync::{Arc, RwLock};

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_explorerd::{Body, Explorer, Request};
use iokc_obs::{Clock, NullSink, Recorder};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use std::hint::black_box;

fn populated_store() -> KnowledgeStore {
    let mut store = KnowledgeStore::in_memory();
    for (xfer, seed) in [("16k", 81u64), ("64k", 82), ("256k", 83), ("512k", 84)] {
        let command =
            format!("ior -a posix -b 512k -t {xfer} -s 2 -F -C -e -i 4 -o /scratch/bd{seed} -k");
        let config = IorConfig::parse_command(&command).unwrap();
        let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
        let result = run_ior(&mut world, JobLayout::new(4, 2), &config, seed).unwrap();
        let k = iokc_extract::parse_ior_output(&result.render()).unwrap();
        store.save_knowledge(&k).unwrap();
    }
    store
}

fn request(path: &str, query: Vec<(String, String)>) -> Request {
    Request {
        method: "GET".to_owned(),
        path: path.to_owned(),
        query,
        keep_alive: true,
        if_none_match: None,
    }
}

fn body_len(body: &Body) -> usize {
    match body {
        Body::Full(bytes) => bytes.len(),
        Body::Pull(_) => 0,
    }
}

fn bench_explorerd(c: &mut Criterion) {
    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    let store = Arc::new(RwLock::new(populated_store()));
    let explorer = Explorer::new(store, 4 << 20, recorder);

    let mut group = c.benchmark_group("explorerd_requests");
    group.sample_size(20);

    // Every request carries a fresh query string, so every normalized
    // cache key is new: store read + render on each request.
    group.bench_function("run_detail_cold_cache", |b| {
        let mut n: u64 = 0;
        b.iter(|| {
            n += 1;
            let req = request("/api/runs/1", vec![("n".to_owned(), n.to_string())]);
            let response = explorer.handle(&req, &iokc_obs::DeadlineToken::unbounded());
            assert_eq!(response.status, 200);
            black_box(body_len(&response.body))
        });
    });

    // One fixed query: after the first miss everything is a cache hit.
    group.bench_function("run_detail_warm_cache", |b| {
        let req = request("/api/runs/1", Vec::new());
        b.iter(|| {
            let response = explorer.handle(&req, &iokc_obs::DeadlineToken::unbounded());
            assert_eq!(response.status, 200);
            black_box(body_len(&response.body))
        });
    });

    // Same pair for an aggregate view (renders every run, so the miss
    // cost — and the cache win — is larger).
    group.bench_function("boxplot_cold_cache", |b| {
        let mut n: u64 = 0;
        b.iter(|| {
            n += 1;
            let req = request(
                "/api/boxplot",
                vec![
                    ("op".to_owned(), "write".to_owned()),
                    ("n".to_owned(), n.to_string()),
                ],
            );
            let response = explorer.handle(&req, &iokc_obs::DeadlineToken::unbounded());
            assert_eq!(response.status, 200);
            black_box(body_len(&response.body))
        });
    });

    group.bench_function("boxplot_warm_cache", |b| {
        let req = request("/api/boxplot", vec![("op".to_owned(), "write".to_owned())]);
        b.iter(|| {
            let response = explorer.handle(&req, &iokc_obs::DeadlineToken::unbounded());
            assert_eq!(response.status, 200);
            black_box(body_len(&response.body))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_explorerd);
criterion_main!(benches);
