//! Extraction benches: the scanf-style output parsers and the Darshan
//! binary decoder (the band's "reimplement log readers" deliverables).

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_benchmarks::instrument::{darshan_from_phases, InstrumentOptions};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_extract::{ingest_darshan, parse_io500_output, parse_ior_output};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use std::hint::black_box;

fn sample_ior_output() -> String {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 71);
    let config = IorConfig::parse_command(
        "ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 6 -o /scratch/bench -k",
    )
    .unwrap();
    run_ior(&mut world, JobLayout::new(4, 2), &config, 1)
        .unwrap()
        .render()
}

fn sample_darshan_log() -> Vec<u8> {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 72);
    let config =
        IorConfig::parse_command("ior -a mpiio -b 1m -t 64k -s 4 -F -C -i 2 -o /scratch/dbench -k")
            .unwrap();
    let result = run_ior(&mut world, JobLayout::new(4, 2), &config, 2).unwrap();
    let phases: Vec<&iokc_sim::metrics::PhaseResult> =
        result.phases.iter().map(|(_, _, p)| p).collect();
    let log = darshan_from_phases(
        &phases,
        &InstrumentOptions {
            dxt: true,
            nprocs: 4,
            ..InstrumentOptions::default()
        },
    );
    iokc_darshan::encode(&log)
}

const IO500_SAMPLE: &str = "\
IO500 version io500-isc22 (iokc reimplementation)
[RESULT]       ior-easy-write       2.501234 GiB/s : time 31.221 seconds
[RESULT]    mdtest-easy-write      14.220000 kIOPS : time 8.410 seconds
[RESULT]       ior-hard-write       0.112345 GiB/s : time 110.020 seconds
[RESULT]    mdtest-hard-write       5.110000 kIOPS : time 20.120 seconds
[RESULT]                 find     120.500000 kIOPS : time 1.950 seconds
[RESULT]        ior-easy-read       2.750000 GiB/s : time 28.400 seconds
[RESULT]     mdtest-easy-stat      28.400000 kIOPS : time 4.210 seconds
[RESULT]        ior-hard-read       0.410000 GiB/s : time 30.150 seconds
[RESULT]     mdtest-hard-stat      22.100000 kIOPS : time 5.410 seconds
[RESULT]   mdtest-easy-delete      11.200000 kIOPS : time 10.680 seconds
[RESULT]     mdtest-hard-read       7.400000 kIOPS : time 16.160 seconds
[RESULT]   mdtest-hard-delete       4.900000 kIOPS : time 24.400 seconds
[SCORE ] Bandwidth 0.745112 GiB/s : IOPS 13.211000 kiops : TOTAL 3.137588
";

fn bench_parsers(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");
    let ior_text = sample_ior_output();
    let darshan_bytes = sample_darshan_log();

    group.bench_function("parse_ior_output", |b| {
        b.iter(|| black_box(parse_ior_output(&ior_text).unwrap()));
    });
    group.bench_function("parse_io500_output", |b| {
        b.iter(|| black_box(parse_io500_output(IO500_SAMPLE).unwrap()));
    });
    group.bench_function("darshan_decode_and_ingest", |b| {
        b.iter(|| black_box(ingest_darshan(&darshan_bytes).unwrap()));
    });
    group.bench_function("pattern_compile_and_match", |b| {
        b.iter(|| {
            let p = iokc_util::pattern::Pattern::compile("Max Write: {bw:f} MiB/sec").unwrap();
            black_box(p.first_match(&ior_text))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_parsers);
criterion_main!(benches);
