//! Sweep benches: sequential vs Rayon-parallel workpackage execution
//! (ablation: sweep parallelism, DESIGN.md §6). Each workpackage runs a
//! small IOR job in its own simulated world.

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_jube::{run_sweep, run_sweep_parallel, JubeConfig};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use std::hint::black_box;

const SWEEP: &str = "\
benchmark bench-sweep
param xfer = 64k, 128k, 256k, 512k
param block = 512k, 1m
step run = ior -a posix -b $block -t $xfer -s 2 -F -i 1 -o /scratch/bs$wp -k -w
pattern write_bw = Max Write: {bw:f} MiB/sec
";

fn runner(wp: usize, _step: &str, command: &str) -> Result<String, String> {
    let config = IorConfig::parse_command(command).map_err(|e| e.to_string())?;
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), wp as u64);
    let result =
        run_ior(&mut world, JobLayout::new(4, 2), &config, wp as u64).map_err(|e| e.to_string())?;
    Ok(result.render())
}

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("jube_sweep");
    group.sample_size(10);
    let config = JubeConfig::parse(SWEEP).unwrap();

    group.bench_function("sequential_8_workpackages", |b| {
        b.iter(|| {
            let workspace = run_sweep(&config, runner).unwrap();
            black_box(workspace.workpackages.len())
        });
    });
    group.bench_function("rayon_8_workpackages", |b| {
        b.iter(|| {
            let workspace = run_sweep_parallel(&config, || runner).unwrap();
            black_box(workspace.workpackages.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
