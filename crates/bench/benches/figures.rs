//! Figure-regeneration benches: every data figure of the paper (Fig. 5,
//! Fig. 6, and the Fig. 3 impact-factor ablation) regenerated at test
//! scale under Criterion timing, with the expected shape asserted on
//! every iteration so a regression in the model breaks the bench.
//!
//! The paper-scale regenerations live in the `fig3_sweep`,
//! `fig5_iterations` and `fig6_bounding_box` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use iokc_benchmarks::io500::{run_io500_with_faults, Io500Config, PhaseFaults};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::{Fault, FaultPlan, FaultTarget};
use iokc_sim::prelude::SystemConfig;
use iokc_sim::time::SimTime;
use std::hint::black_box;

/// Scaled Fig. 5: six iterations, storage interference in iteration 1.
fn fig5_small(seed: u64) -> Vec<f64> {
    let layout = JobLayout::new(4, 2);
    let mut world = World::new(
        SystemConfig::test_small().with_noise(0.01),
        FaultPlan::none(),
        seed,
    );
    let base = IorConfig::parse_command(
        "ior -a mpiio -b 1m -t 512k -s 2 -F -C -e -i 1 -o /scratch/fig5 -k -w",
    )
    .unwrap();
    let mut writes = Vec::new();
    for iteration in 0..6u32 {
        if iteration == 1 {
            let mut plan = FaultPlan::none();
            for target in 0..world.system().pfs.storage_targets {
                plan.push(Fault::slow_target(
                    target,
                    0.3,
                    world.now(),
                    SimTime(u64::MAX),
                ));
            }
            world.set_faults(plan);
        }
        let run = run_ior(&mut world, layout, &base, u64::from(iteration)).unwrap();
        world.set_faults(FaultPlan::none());
        writes.push(run.max_bw(iokc_benchmarks::Access::Write));
    }
    writes
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_anomaly");
    group.sample_size(10);
    group.bench_function("six_iterations_with_interference", |b| {
        b.iter(|| {
            let writes = fig5_small(42);
            // Shape check: iteration 1 below half of its peers' mean.
            let peers: Vec<f64> = writes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 1)
                .map(|(_, v)| *v)
                .collect();
            assert!(writes[1] < iokc_util::stats::mean(&peers) * 0.55);
            black_box(writes)
        });
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_io500");
    group.sample_size(10);
    group.bench_function("degraded_run_small", |b| {
        b.iter(|| {
            let system = SystemConfig::test_small().with_noise(0.1);
            let mut world = World::new(system, FaultPlan::none(), 77);
            let mut schedule = PhaseFaults::new();
            schedule.insert(
                "ior-easy-read".to_owned(),
                FaultPlan::none().with(Fault::permanent(FaultTarget::NodeNic(0), 0.05)),
            );
            let result = run_io500_with_faults(
                &mut world,
                JobLayout::new(4, 2),
                &Io500Config::small("/scratch/fig6"),
                &schedule,
            )
            .unwrap();
            // Shape check: the broken node drags ior-easy-read below
            // ior-hard-read (normally easy ≫ hard).
            let easy_read = result.phase("ior-easy-read").unwrap().value;
            let hard_read = result.phase("ior-hard-read").unwrap().value;
            assert!(easy_read < hard_read);
            black_box(result.total_score)
        });
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_impact_factors");
    group.sample_size(10);
    group.bench_function("stripe_count_ablation", |b| {
        b.iter(|| {
            let mut bws = Vec::new();
            for stripe in [1u32, 2, 4] {
                let mut world = World::new(
                    SystemConfig::test_small(),
                    FaultPlan::none(),
                    u64::from(stripe),
                );
                let mut config = IorConfig::parse_command(
                    "ior -a posix -b 2m -t 512k -s 2 -F -i 1 -o /scratch/fig3 -k -w",
                )
                .unwrap();
                config.stripe = iokc_sim::script::StripeHint {
                    chunk_size: None,
                    stripe_count: Some(stripe),
                };
                let run = run_ior(&mut world, JobLayout::new(1, 1), &config, 3).unwrap();
                bws.push(run.max_bw(iokc_benchmarks::Access::Write));
            }
            // Shape: striping wider than one target helps a single writer.
            assert!(bws[1] > bws[0]);
            black_box(bws)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig5, bench_fig6, bench_fig3);
criterion_main!(benches);
