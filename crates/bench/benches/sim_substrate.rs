//! Substrate benches: the max–min flow solver and the event engine —
//! the ablation targets DESIGN.md §6 calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::flow::{solve_rates, FlowPath};
use iokc_sim::prelude::{OpenMode, ScriptSet, SystemConfig};
use iokc_sim::rng::Rng;
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_solver");
    for &nflows in &[16usize, 64, 256, 1024] {
        let nres = 64u32;
        let mut rng = Rng::seed_from(9);
        let capacities: Vec<f64> = (0..nres).map(|_| rng.uniform(1e8, 1e10)).collect();
        let flows: Vec<FlowPath> = (0..nflows)
            .map(|_| {
                FlowPath::new(vec![
                    rng.next_below(u64::from(nres)) as u32,
                    rng.next_below(u64::from(nres)) as u32,
                    rng.next_below(u64::from(nres)) as u32,
                ])
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("maxmin", nflows), &nflows, |b, _| {
            b.iter(|| black_box(solve_rates(&capacities, &flows)));
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);

    group.bench_function("write_phase_16ranks_64MiB", |b| {
        b.iter(|| {
            let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 4);
            let mut scripts = ScriptSet::new(16);
            for rank in 0..16u32 {
                let path = format!("/scratch/b{rank}");
                scripts.rank(rank).open(&path, OpenMode::Write);
                for i in 0..4u64 {
                    scripts.rank(rank).write(&path, i << 20, 1 << 20);
                }
                scripts.rank(rank).close(&path).barrier();
            }
            let result = world.run(JobLayout::new(16, 4), &scripts).unwrap();
            black_box(result.finished)
        });
    });

    group.bench_function("metadata_phase_2000_creates", |b| {
        b.iter(|| {
            let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 5);
            let mut scripts = ScriptSet::new(4);
            for rank in 0..4u32 {
                let dir = format!("/scratch/md{rank}");
                scripts.rank(rank).mkdir(&dir);
                for i in 0..500u32 {
                    let path = format!("{dir}/f{i}");
                    scripts.rank(rank).open(&path, OpenMode::Write);
                    scripts.rank(rank).close(&path);
                }
            }
            let result = world.run(JobLayout::new(4, 2), &scripts).unwrap();
            black_box(result.finished)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_solver, bench_engine);
criterion_main!(benches);
