//! The structured event stream behind spans, and the sinks it flows to.
//!
//! Every span open/close and log line becomes one [`Event`]. Events
//! serialize to *single-line* compact JSON so they frame cleanly as
//! checksummed journal records (`iokc-store`'s `journal` module rejects
//! embedded newlines) and replay losslessly: [`Event::parse_record`] is
//! the exact inverse of [`Event::to_record`]. `iokc trace` rebuilds the
//! span tree from a replayed stream via [`crate::trace`].

use iokc_util::json::{self, Json};
use std::fmt;

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanStatus {
    /// The spanned operation succeeded.
    Ok,
    /// The spanned operation failed (degraded, errored, or quarantined).
    Failed,
    /// The spanned operation was cancelled before finishing.
    Cancelled,
}

impl SpanStatus {
    /// Display name (also the wire encoding).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Failed => "failed",
            SpanStatus::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Option<SpanStatus> {
        match s {
            "ok" => Some(SpanStatus::Ok),
            "failed" => Some(SpanStatus::Failed),
            "cancelled" => Some(SpanStatus::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for SpanStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one event records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened.
    SpanStart {
        /// Span id, unique within one recorder's stream.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Span name (phase name, module name, workpackage id, …).
        name: String,
        /// Cycle phase this span belongs to, when applicable.
        phase: Option<String>,
        /// Module name this span times, when it times a module.
        module: Option<String>,
    },
    /// A span closed.
    SpanEnd {
        /// Which span closed.
        id: u64,
        /// How it ended.
        status: SpanStatus,
        /// Elapsed time between start and end, in nanoseconds.
        dur_ns: u64,
    },
    /// A free-form log line, optionally attached to a span.
    Log {
        /// Enclosing span, if any.
        span: Option<u64>,
        /// The message.
        message: String,
    },
}

/// One record in the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emission order, strictly increasing per recorder. Replays sort by
    /// this, so interleaved worker threads reconstruct deterministically.
    pub seq: u64,
    /// Timestamp in nanoseconds since the recorder clock's epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serialize as a single-line compact JSON record (the journal
    /// payload format).
    #[must_use]
    pub fn to_record(&self) -> String {
        let opt_u64 = |v: Option<u64>| v.map(Json::from).unwrap_or(Json::Null);
        let opt_str = |v: &Option<String>| v.as_deref().map(Json::from).unwrap_or(Json::Null);
        let mut pairs = vec![
            ("seq", Json::from(self.seq)),
            ("ts", Json::from(self.ts_ns)),
        ];
        match &self.kind {
            EventKind::SpanStart {
                id,
                parent,
                name,
                phase,
                module,
            } => {
                pairs.push(("ev", Json::from("span_start")));
                pairs.push(("id", Json::from(*id)));
                pairs.push(("parent", opt_u64(*parent)));
                pairs.push(("name", Json::from(name.as_str())));
                pairs.push(("phase", opt_str(phase)));
                pairs.push(("module", opt_str(module)));
            }
            EventKind::SpanEnd { id, status, dur_ns } => {
                pairs.push(("ev", Json::from("span_end")));
                pairs.push(("id", Json::from(*id)));
                pairs.push(("status", Json::from(status.as_str())));
                pairs.push(("dur", Json::from(*dur_ns)));
            }
            EventKind::Log { span, message } => {
                pairs.push(("ev", Json::from("log")));
                pairs.push(("span", opt_u64(*span)));
                pairs.push(("msg", Json::from(message.as_str())));
            }
        }
        Json::obj(pairs).to_compact()
    }

    /// Parse one record previously produced by [`Event::to_record`].
    /// Returns `None` for records this version does not understand
    /// (forward compatibility: unknown event kinds are skipped, not
    /// fatal).
    #[must_use]
    pub fn parse_record(record: &str) -> Option<Event> {
        let doc = json::parse(record).ok()?;
        let seq = doc.get("seq")?.as_u64()?;
        let ts_ns = doc.get("ts")?.as_u64()?;
        let opt_u64 = |key: &str| doc.get(key).and_then(Json::as_u64);
        let opt_string = |key: &str| doc.get(key).and_then(Json::as_str).map(str::to_owned);
        let kind = match doc.get("ev")?.as_str()? {
            "span_start" => EventKind::SpanStart {
                id: doc.get("id")?.as_u64()?,
                parent: opt_u64("parent"),
                name: doc.get("name")?.as_str()?.to_owned(),
                phase: opt_string("phase"),
                module: opt_string("module"),
            },
            "span_end" => EventKind::SpanEnd {
                id: doc.get("id")?.as_u64()?,
                status: SpanStatus::parse(doc.get("status")?.as_str()?)?,
                dur_ns: doc.get("dur")?.as_u64()?,
            },
            "log" => EventKind::Log {
                span: opt_u64("span"),
                message: doc.get("msg")?.as_str()?.to_owned(),
            },
            _ => return None,
        };
        Some(Event { seq, ts_ns, kind })
    }
}

/// Where events go. Sinks must tolerate concurrent emitters; emission is
/// infallible by contract — a sink that hits an I/O error records it
/// internally rather than poisoning the instrumented hot path.
pub trait EventSink: Send + Sync {
    /// Record one event.
    fn emit(&self, event: &Event);
}

/// A sink that drops everything — tracing disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// A sink that buffers events in memory, for tests and for `--metrics`
/// style post-run inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: std::sync::Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything emitted so far, in emission order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        match self.events.lock() {
            Ok(events) => events.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        match self.events.lock() {
            Ok(mut events) => events.push(event.clone()),
            Err(poisoned) => poisoned.into_inner().push(event.clone()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn roundtrip(event: Event) {
        let line = event.to_record();
        assert!(!line.contains('\n'), "records must be single-line");
        assert_eq!(Event::parse_record(&line).unwrap(), event);
    }

    #[test]
    fn events_roundtrip_through_records() {
        roundtrip(Event {
            seq: 0,
            ts_ns: 123,
            kind: EventKind::SpanStart {
                id: 1,
                parent: None,
                name: "cycle".into(),
                phase: None,
                module: None,
            },
        });
        roundtrip(Event {
            seq: 1,
            ts_ns: 456,
            kind: EventKind::SpanStart {
                id: 2,
                parent: Some(1),
                name: "ior-generator".into(),
                phase: Some("generation".into()),
                module: Some("ior-generator".into()),
            },
        });
        roundtrip(Event {
            seq: 2,
            ts_ns: 789,
            kind: EventKind::SpanEnd {
                id: 2,
                status: SpanStatus::Failed,
                dur_ns: 333,
            },
        });
        roundtrip(Event {
            seq: 3,
            ts_ns: 790,
            kind: EventKind::Log {
                span: Some(1),
                message: "retrying after backoff".into(),
            },
        });
    }

    #[test]
    fn unknown_event_kinds_are_skipped_not_fatal() {
        assert!(Event::parse_record(r#"{"seq":0,"ts":1,"ev":"from_the_future"}"#).is_none());
        assert!(Event::parse_record("not json at all").is_none());
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        for seq in 0..4 {
            sink.emit(&Event {
                seq,
                ts_ns: seq * 10,
                kind: EventKind::Log {
                    span: None,
                    message: format!("m{seq}"),
                },
            });
        }
        let got = sink.snapshot();
        assert_eq!(got.len(), 4);
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
