//! Counters and histograms in a lock-free-ish registry.
//!
//! Registration (first use of a name) takes a write lock; every increment
//! and observation after that is a handful of atomic operations on
//! handles that clone cheaply — callers cache a [`Counter`] once and
//! hammer it from worker threads. Histograms bucket by powers of two
//! (log₂), the classic latency-histogram shape: constant-time insert,
//! bounded memory, resolution proportional to magnitude.
//!
//! [`MetricsRegistry::to_json`] dumps the whole registry as *stable* JSON
//! (names sorted, buckets ascending), the format behind the CLI's
//! `--metrics <path>` flag.

use iokc_util::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle: the last written value wins.
///
/// Counters only go up, which makes them useless for *state* — "is the
/// store degraded right now", "is the connection read-only". A gauge is
/// the scraper-facing answer: whoever renders `/metrics` sets it to the
/// current state immediately before dumping, and the dump reflects now,
/// not history.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrite the gauge with `value`.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets; covers values up to 2⁶². The last bucket is
/// the overflow bucket.
const BUCKETS: usize = 64;

/// A histogram of non-negative observations in power-of-two buckets.
///
/// All state is atomic, so concurrent observers never block each other.
/// The floating-point sum is maintained with a compare-exchange loop on
/// the bit pattern — still lock-free, and exact enough that totals from
/// a virtual clock reproduce bit-for-bit in single-threaded runs.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Which bucket a value falls into: bucket `i` counts `2^(i-1) < v <= 2^i`
/// (bucket 0 is `v <= 1`).
fn bucket_index(value: f64) -> usize {
    if value <= 1.0 {
        return 0;
    }
    let index = value.log2().ceil();
    if index >= (BUCKETS - 1) as f64 {
        BUCKETS - 1
    } else {
        index as usize
    }
}

/// Atomically fold `value` into an f64 stored as bits, using `merge` to
/// combine (add, min, max).
fn fold_f64(cell: &AtomicU64, value: f64, merge: impl Fn(f64, f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = merge(f64::from_bits(current), value).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

impl Histogram {
    /// Record one observation. Negative and non-finite values are clamped
    /// to zero rather than corrupting the distribution.
    pub fn observe(&self, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        fold_f64(&self.sum_bits, value, |a, b| a + b);
        fold_f64(&self.min_bits, value, f64::min);
        fold_f64(&self.max_bits, value, f64::max);
    }

    /// A consistent-enough copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (2f64.powi(i as i32), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Non-empty buckets as `(upper_bound, count)`, ascending; bucket
    /// `le` holds values in `(le/2, le]`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The process-wide (or cycle-wide) registry of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use. The returned
    /// handle is cheap to clone and cache.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(counter) = read_lock(&self.counters).get(name) {
            return counter.clone();
        }
        write_lock(&self.counters)
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use (initial value 0).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(gauge) = read_lock(&self.gauges).get(name) {
            return gauge.clone();
        }
        write_lock(&self.gauges)
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(histogram) = read_lock(&self.histograms).get(name) {
            return Arc::clone(histogram);
        }
        Arc::clone(
            write_lock(&self.histograms)
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Record one observation into the histogram named `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.histogram(name).observe(value);
    }

    /// Every counter as `(name, value)`, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        read_lock(&self.counters)
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect()
    }

    /// Every gauge as `(name, value)`, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, u64)> {
        read_lock(&self.gauges)
            .iter()
            .map(|(name, gauge)| (name.clone(), gauge.get()))
            .collect()
    }

    /// Every histogram as `(name, snapshot)`, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        read_lock(&self.histograms)
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
            .collect()
    }

    /// Dump the registry as stable JSON: keys sorted, buckets ascending.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = Json::obj(
            self.counters()
                .iter()
                .map(|(name, value)| (name.as_str(), Json::from(*value)))
                .collect(),
        );
        let gauges = Json::obj(
            self.gauges()
                .iter()
                .map(|(name, value)| (name.as_str(), Json::from(*value)))
                .collect(),
        );
        let histograms = Json::obj(
            self.histograms()
                .iter()
                .map(|(name, snap)| {
                    (
                        name.as_str(),
                        Json::obj(vec![
                            ("count", Json::from(snap.count)),
                            ("sum", Json::from(snap.sum)),
                            ("min", Json::from(snap.min)),
                            ("max", Json::from(snap.max)),
                            (
                                "buckets",
                                Json::Arr(
                                    snap.buckets
                                        .iter()
                                        .map(|(le, n)| {
                                            Json::obj(vec![
                                                ("le", Json::from(*le)),
                                                ("count", Json::from(*n)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema", Json::from(1u64)),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// Read-lock a map, recovering from poisoning (metrics must never take
/// an instrumented process down).
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-lock a map, recovering from poisoning.
fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("iokc.test.runs");
        let b = registry.counter("iokc.test.runs");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("iokc.test.runs").get(), 3);
        assert_eq!(registry.counters(), vec![("iokc.test.runs".to_owned(), 3)]);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = Histogram::default();
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 106.0).abs() < 1e-9);
        assert_eq!(snap.min, 0.5);
        assert_eq!(snap.max, 100.0);
        // 0.5 and 1.0 land in le=1 (bucket 0 reports le=2^0=1)... le
        // values are 1, 2, 4, 128.
        let les: Vec<f64> = snap.buckets.iter().map(|(le, _)| *le).collect();
        assert_eq!(les, vec![1.0, 2.0, 4.0, 128.0]);
        assert_eq!(snap.buckets[0].1, 2);
    }

    #[test]
    fn gauges_overwrite_and_share_state_by_name() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("store.health.degraded");
        g.set(1);
        g.set(0);
        registry.gauge("store.health.degraded").set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(
            registry.gauges(),
            vec![("store.health.degraded".to_owned(), 1)]
        );
        let doc = iokc_util::json::parse(&registry.to_json().to_pretty()).unwrap();
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("store.health.degraded"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn pathological_observations_are_clamped() {
        let h = Histogram::default();
        h.observe(-5.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 0.0);
        assert_eq!(snap.max, 0.0);
    }

    #[test]
    fn registry_json_is_stable_and_parses() {
        let registry = MetricsRegistry::new();
        registry.counter("z.last").inc();
        registry.counter("a.first").add(7);
        registry.observe("phase.ms", 12.5);
        let a = registry.to_json().to_pretty();
        let b = registry.to_json().to_pretty();
        assert_eq!(a, b, "dump must be deterministic");
        let doc = iokc_util::json::parse(&a).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("a.first"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            doc.get("histograms")
                .and_then(|h| h.get("phase.ms"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // Sorted keys: "a.first" serializes before "z.last".
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
    }
}
