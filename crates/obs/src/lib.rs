//! Observability primitives for the knowledge cycle.
//!
//! The paper's workflow is iterative and automated — runs feed back into
//! new runs — so diagnosing *where* time and retries go needs telemetry
//! that is cheap enough to leave always-on. This crate provides the three
//! primitives the rest of the workspace instruments itself with:
//!
//! * **Spans** ([`Recorder::start_span`]/[`Recorder::end_span`]) — nested
//!   timed regions stamped from a [`Clock`] that is either monotonic wall
//!   time or a shared *virtual* clock the simulator advances, so simulated
//!   runs get faithful timings instead of host noise.
//! * **Metrics** ([`MetricsRegistry`]) — named counters and log₂-bucketed
//!   histograms backed by atomics; handles are cheap to clone and safe to
//!   hammer from worker threads.
//! * **Events** ([`Event`], [`EventSink`]) — the structured record stream
//!   behind the spans. Sinks are pluggable: in-memory for tests, an
//!   fsynced checksummed journal (in `iokc-store`) for post-mortem
//!   analysis, or [`NullSink`] when tracing is off.
//!
//! The crate is deliberately a leaf: it depends only on `iokc-util`, so
//! every other crate (core, store, jube, cli) can instrument itself
//! without dependency cycles. [`trace`] turns a replayed event stream
//! back into a span tree and per-phase latency table — the engine behind
//! `iokc trace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod clock;
pub mod event;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use clock::{CancelToken, Clock, DeadlineToken, VirtualClock};
pub use event::{Event, EventKind, EventSink, MemorySink, NullSink, SpanStatus};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use recorder::{Recorder, SpanHandle, SpanId};
pub use trace::{build_span_tree, phase_latency, PhaseLatencyRow, SpanNode, TraceTree};
