//! Rebuilding span trees and latency tables from replayed event streams.
//!
//! The journal holds a flat, append-ordered stream of [`Event`]s; this
//! module folds it back into the nested structure the recorder saw:
//! a forest of [`SpanNode`]s plus per-phase/per-module latency
//! aggregates. `iokc trace` is a thin shell around [`build_span_tree`],
//! [`phase_latency`] and the two renderers.

use crate::event::{Event, EventKind, SpanStatus};
use std::collections::BTreeMap;

/// One span, with its children nested beneath it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span id.
    pub id: u64,
    /// Span name.
    pub name: String,
    /// Phase label, when the span belongs to a cycle phase.
    pub phase: Option<String>,
    /// Module label, when the span times one module invocation.
    pub module: Option<String>,
    /// Start timestamp (ns since the recorder clock's epoch).
    pub start_ns: u64,
    /// Duration in ns; `None` when the stream ended before the span
    /// closed (a crash left it open).
    pub dur_ns: Option<u64>,
    /// Final status; `None` for spans left open.
    pub status: Option<SpanStatus>,
    /// Log lines attached to this span.
    pub logs: Vec<String>,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

/// A reconstructed trace: the span forest plus stream-level counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceTree {
    /// Root spans (no parent, or parent never seen), in start order.
    pub roots: Vec<SpanNode>,
    /// Spans that never closed — evidence of a crash mid-operation.
    pub open_spans: usize,
    /// Events replayed.
    pub events: usize,
}

/// Fold a replayed event stream into a span forest.
///
/// The stream may be truncated (crash, torn journal tail): spans without
/// an end event are kept, flagged via [`SpanNode::dur_ns`]` == None` and
/// counted in [`TraceTree::open_spans`]. Events are processed in `seq`
/// order regardless of input order.
#[must_use]
pub fn build_span_tree(events: &[Event]) -> TraceTree {
    let mut ordered: Vec<&Event> = events.iter().collect();
    ordered.sort_by_key(|e| e.seq);

    // Arena of nodes in first-seen order, then stitch children by id.
    let mut nodes: Vec<SpanNode> = Vec::new();
    let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut parent_of: BTreeMap<u64, Option<u64>> = BTreeMap::new();

    for event in &ordered {
        match &event.kind {
            EventKind::SpanStart {
                id,
                parent,
                name,
                phase,
                module,
            } => {
                index_of.insert(*id, nodes.len());
                parent_of.insert(*id, *parent);
                nodes.push(SpanNode {
                    id: *id,
                    name: name.clone(),
                    phase: phase.clone(),
                    module: module.clone(),
                    start_ns: event.ts_ns,
                    dur_ns: None,
                    status: None,
                    logs: Vec::new(),
                    children: Vec::new(),
                });
            }
            EventKind::SpanEnd { id, status, dur_ns } => {
                if let Some(&at) = index_of.get(id) {
                    nodes[at].dur_ns = Some(*dur_ns);
                    nodes[at].status = Some(*status);
                }
            }
            EventKind::Log { span, message } => {
                if let Some(at) = span.and_then(|s| index_of.get(&s)).copied() {
                    nodes[at].logs.push(message.clone());
                }
            }
        }
    }

    let open_spans = nodes.iter().filter(|n| n.dur_ns.is_none()).count();

    // Stitch bottom-up: children were pushed after their parents (spans
    // start after their parent starts), so draining in reverse order
    // moves each node into its parent before the parent itself moves.
    let mut tree = TraceTree {
        roots: Vec::new(),
        open_spans,
        events: events.len(),
    };
    let mut slots: Vec<Option<SpanNode>> = nodes.into_iter().map(Some).collect();
    for at in (0..slots.len()).rev() {
        let Some(mut node) = slots[at].take() else {
            continue;
        };
        node.children.reverse(); // collected in reverse start order
        let parent_index = parent_of
            .get(&node.id)
            .copied()
            .flatten()
            .and_then(|p| index_of.get(&p).copied())
            .filter(|&p| p < at);
        match parent_index {
            Some(p) => match &mut slots[p] {
                Some(parent) => parent.children.push(node),
                None => tree.roots.push(node),
            },
            None => tree.roots.push(node),
        }
    }
    tree.roots.reverse();
    tree
}

/// One row of the per-phase latency table.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLatencyRow {
    /// Phase label.
    pub phase: String,
    /// Module label, or `"—"` for the phase's own span.
    pub module: Option<String>,
    /// Spans aggregated into this row.
    pub spans: u64,
    /// Total duration across those spans, in ns.
    pub total_ns: u64,
}

/// Aggregate a span forest into per-phase / per-module latency rows.
///
/// Phase rows (module `None`) aggregate spans labelled with a phase but
/// no module; module rows aggregate per `(phase, module)`. Rows come out
/// sorted by phase label then module label.
#[must_use]
pub fn phase_latency(tree: &TraceTree) -> Vec<PhaseLatencyRow> {
    let mut rows: BTreeMap<(String, Option<String>), (u64, u64)> = BTreeMap::new();
    let mut stack: Vec<&SpanNode> = tree.roots.iter().collect();
    while let Some(node) = stack.pop() {
        stack.extend(node.children.iter());
        let Some(phase) = &node.phase else { continue };
        let key = (phase.clone(), node.module.clone());
        let entry = rows.entry(key).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += node.dur_ns.unwrap_or(0);
    }
    rows.into_iter()
        .map(|((phase, module), (spans, total_ns))| PhaseLatencyRow {
            phase,
            module,
            spans,
            total_ns,
        })
        .collect()
}

/// Format nanoseconds as fractional milliseconds.
#[must_use]
pub fn format_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render the span forest as an indented tree, one span per line.
#[must_use]
pub fn render_tree(tree: &TraceTree) -> String {
    fn walk(node: &SpanNode, prefix: &str, last: bool, root: bool, out: &mut String) {
        let (branch, extend) = if root {
            ("", "")
        } else if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        let timing = match node.dur_ns {
            Some(dur) => format!("{} ms", format_ms(dur)),
            None => "open (never closed)".to_owned(),
        };
        let status = node.status.map(|s| s.as_str()).unwrap_or("?");
        out.push_str(&format!(
            "{prefix}{branch}{:<32} {:>12}  {status}\n",
            node.name, timing
        ));
        let child_prefix = format!("{prefix}{extend}");
        for (i, child) in node.children.iter().enumerate() {
            walk(
                child,
                &child_prefix,
                i + 1 == node.children.len(),
                false,
                out,
            );
        }
    }
    let mut out = String::new();
    for root in &tree.roots {
        walk(root, "", true, true, &mut out);
    }
    if tree.open_spans > 0 {
        out.push_str(&format!(
            "({} span(s) never closed — stream truncated mid-operation)\n",
            tree.open_spans
        ));
    }
    out
}

/// Render the per-phase latency table.
#[must_use]
pub fn render_latency_table(rows: &[PhaseLatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<32} {:>6} {:>12}\n",
        "phase", "module", "spans", "total ms"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:<32} {:>6} {:>12}\n",
            row.phase,
            row.module.as_deref().unwrap_or("—"),
            row.spans,
            format_ms(row.total_ns),
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::clock::{Clock, VirtualClock};
    use crate::event::MemorySink;
    use crate::recorder::Recorder;
    use std::sync::Arc;

    fn sample_events() -> Vec<Event> {
        let clock = VirtualClock::new();
        let sink = Arc::new(MemorySink::new());
        let recorder = Recorder::new(Clock::Virtual(clock.clone()), sink.clone());
        let root = recorder.start_span("cycle", None, None, None);
        let phase = recorder.start_span("generation", Some(root.id), Some("generation"), None);
        let module = recorder.start_span(
            "ior-generator",
            Some(phase.id),
            Some("generation"),
            Some("ior-generator"),
        );
        recorder.log(Some(module.id), "attempt 1");
        clock.advance_ms(10);
        recorder.end_span(&module, SpanStatus::Ok);
        recorder.end_span(&phase, SpanStatus::Ok);
        clock.advance_ms(2);
        recorder.end_span(&root, SpanStatus::Ok);
        sink.snapshot()
    }

    #[test]
    fn tree_rebuilds_nesting_and_durations() {
        let tree = build_span_tree(&sample_events());
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.open_spans, 0);
        let root = &tree.roots[0];
        assert_eq!(root.name, "cycle");
        assert_eq!(root.dur_ns, Some(12_000_000));
        assert_eq!(root.children.len(), 1);
        let phase = &root.children[0];
        assert_eq!(phase.name, "generation");
        assert_eq!(phase.children[0].name, "ior-generator");
        assert_eq!(phase.children[0].dur_ns, Some(10_000_000));
        assert_eq!(phase.children[0].logs, vec!["attempt 1".to_owned()]);
    }

    #[test]
    fn truncated_stream_keeps_open_spans() {
        let mut events = sample_events();
        events.truncate(4); // cut before any span closes
        let tree = build_span_tree(&events);
        assert_eq!(tree.open_spans, 3);
        assert_eq!(tree.roots.len(), 1);
        assert!(tree.roots[0].dur_ns.is_none());
        let rendered = render_tree(&tree);
        assert!(rendered.contains("never closed"));
    }

    #[test]
    fn latency_rows_aggregate_per_phase_and_module() {
        let tree = build_span_tree(&sample_events());
        let rows = phase_latency(&tree);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].phase, "generation");
        assert_eq!(rows[0].module, None);
        assert_eq!(rows[0].total_ns, 10_000_000);
        assert_eq!(rows[1].module.as_deref(), Some("ior-generator"));
        let table = render_latency_table(&rows);
        assert!(table.contains("ior-generator"));
    }

    #[test]
    fn out_of_order_events_sort_by_seq() {
        let mut events = sample_events();
        events.reverse();
        let tree = build_span_tree(&events);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "cycle");
        assert_eq!(tree.open_spans, 0);
    }
}
