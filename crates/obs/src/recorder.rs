//! The [`Recorder`]: one clock, one event sink, one metrics registry.
//!
//! A recorder is the single object a cycle (or campaign) threads through
//! its instrumentation: spans are stamped from its [`Clock`], events flow
//! to its [`EventSink`], and counters/histograms live in its
//! [`MetricsRegistry`]. It is `Send + Sync`, so one `Arc<Recorder>` is
//! shared by the orchestrator and every worker thread.

use crate::clock::Clock;
use crate::event::{Event, EventKind, EventSink, NullSink, SpanStatus};
use crate::metrics::{Counter, MetricsRegistry};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of one span within a recorder's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An open span: the token [`Recorder::end_span`] closes.
#[derive(Debug, Clone, Copy)]
pub struct SpanHandle {
    /// The span's id (give this as `parent` to child spans).
    pub id: SpanId,
    /// Start timestamp, nanoseconds since the recorder clock's epoch.
    pub start_ns: u64,
}

/// The instrumentation hub: clock + sink + metrics.
pub struct Recorder {
    clock: Clock,
    sink: Arc<dyn EventSink>,
    metrics: Arc<MetricsRegistry>,
    next_span: AtomicU64,
    next_seq: AtomicU64,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("clock", &self.clock)
            .field("spans_opened", &self.next_span.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A recorder with the given clock and sink, and a fresh metrics
    /// registry.
    #[must_use]
    pub fn new(clock: Clock, sink: Arc<dyn EventSink>) -> Recorder {
        Recorder {
            clock,
            sink,
            metrics: Arc::new(MetricsRegistry::new()),
            next_span: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
        }
    }

    /// A recorder that times on the wall clock and drops all events —
    /// the near-zero-cost default when observability is not requested.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder::new(Clock::wall(), Arc::new(NullSink))
    }

    /// The recorder's clock.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The recorder's metrics registry.
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Nanoseconds since the clock's epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Advance a virtual clock (no-op on wall clocks). The simulator-
    /// backed generators call this with their simulated elapsed time, and
    /// the retry loop calls it with virtual backoff delays.
    pub fn advance_ns(&self, delta_ns: u64) {
        self.clock.advance_ns(delta_ns);
    }

    /// Open a span. `phase`/`module` label what the span times, so
    /// replays can aggregate per phase and per module.
    #[must_use]
    pub fn start_span(
        &self,
        name: &str,
        parent: Option<SpanId>,
        phase: Option<&str>,
        module: Option<&str>,
    ) -> SpanHandle {
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed));
        let start_ns = self.now_ns();
        self.emit(
            start_ns,
            EventKind::SpanStart {
                id: id.0,
                parent: parent.map(|p| p.0),
                name: name.to_owned(),
                phase: phase.map(str::to_owned),
                module: module.map(str::to_owned),
            },
        );
        SpanHandle { id, start_ns }
    }

    /// Close a span, returning its duration in nanoseconds.
    pub fn end_span(&self, span: &SpanHandle, status: SpanStatus) -> u64 {
        let now = self.now_ns();
        let dur_ns = now.saturating_sub(span.start_ns);
        self.emit(
            now,
            EventKind::SpanEnd {
                id: span.id.0,
                status,
                dur_ns,
            },
        );
        dur_ns
    }

    /// Emit a log line, optionally attached to a span.
    pub fn log(&self, span: Option<SpanId>, message: &str) {
        self.emit(
            self.now_ns(),
            EventKind::Log {
                span: span.map(|s| s.0),
                message: message.to_owned(),
            },
        );
    }

    /// The counter named `name` from this recorder's registry.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// Record one histogram observation in this recorder's registry.
    pub fn observe(&self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }

    fn emit(&self, ts_ns: u64, kind: EventKind) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.sink.emit(&Event { seq, ts_ns, kind });
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::event::MemorySink;

    #[test]
    fn spans_stamp_from_the_virtual_clock() {
        let clock = VirtualClock::new();
        let sink = Arc::new(MemorySink::new());
        let recorder = Recorder::new(Clock::Virtual(clock.clone()), sink.clone());

        let root = recorder.start_span("cycle", None, None, None);
        clock.advance_ms(10);
        let child = recorder.start_span("generation", Some(root.id), Some("generation"), None);
        clock.advance_ms(5);
        assert_eq!(recorder.end_span(&child, SpanStatus::Ok), 5_000_000);
        assert_eq!(recorder.end_span(&root, SpanStatus::Ok), 15_000_000);

        let events = sink.snapshot();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        match &events[1].kind {
            EventKind::SpanStart { parent, phase, .. } => {
                assert_eq!(*parent, Some(root.id.0));
                assert_eq!(phase.as_deref(), Some("generation"));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn disabled_recorder_still_counts() {
        let recorder = Recorder::disabled();
        recorder.counter("runs").inc();
        recorder.observe("ms", 3.0);
        let span = recorder.start_span("noop", None, None, None);
        recorder.end_span(&span, SpanStatus::Ok);
        assert_eq!(recorder.metrics().counter("runs").get(), 1);
    }
}
