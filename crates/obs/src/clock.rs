//! Time sources for spans, and the cooperative cancellation token.
//!
//! Spans need a clock that is *monotonic* (so durations never go
//! negative) and, for simulated runs, *virtual* (so a cycle over the
//! simulator reports the simulator's idea of elapsed time, not host
//! scheduling noise). [`Clock`] is that choice point: wall clocks stamp
//! from [`std::time::Instant`]; virtual clocks read a shared atomic
//! counter that generators advance by their simulated elapsed time.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared virtual clock: a monotonically advancing nanosecond counter.
///
/// Clones share the same underlying counter, so a clock handed to a
/// [`crate::Recorder`] and to a simulator-backed generator observe the
/// same timeline.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    #[must_use]
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    /// Advance the clock by `delta_ns` nanoseconds. Time only moves
    /// forward; there is no way to rewind.
    pub fn advance_ns(&self, delta_ns: u64) {
        self.nanos.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Advance the clock by `delta_ms` milliseconds.
    pub fn advance_ms(&self, delta_ms: u64) {
        self.advance_ns(delta_ms.saturating_mul(1_000_000));
    }
}

/// The time source a [`crate::Recorder`] stamps events from.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Monotonic wall time, measured from the moment the clock was made.
    Wall {
        /// Epoch of this clock; timestamps are nanoseconds since it.
        base: Instant,
    },
    /// A shared virtual clock advanced explicitly (by the simulator, by
    /// retry backoff, by tests).
    Virtual(VirtualClock),
}

impl Clock {
    /// A monotonic wall clock starting now.
    #[must_use]
    pub fn wall() -> Clock {
        Clock::Wall {
            base: Instant::now(),
        }
    }

    /// A fresh virtual clock starting at zero.
    #[must_use]
    pub fn virtual_clock() -> Clock {
        Clock::Virtual(VirtualClock::new())
    }

    /// Nanoseconds since this clock's epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall { base } => u64::try_from(base.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Clock::Virtual(v) => v.now_ns(),
        }
    }

    /// Advance a virtual clock; a no-op on wall clocks (wall time cannot
    /// be pushed around).
    pub fn advance_ns(&self, delta_ns: u64) {
        if let Clock::Virtual(v) = self {
            v.advance_ns(delta_ns);
        }
    }

    /// The shared virtual clock handle, when this clock is virtual.
    #[must_use]
    pub fn virtual_handle(&self) -> Option<VirtualClock> {
        match self {
            Clock::Wall { .. } => None,
            Clock::Virtual(v) => Some(v.clone()),
        }
    }
}

/// A cooperative cancellation token.
///
/// Clones share state: cancelling any clone cancels them all. Modules
/// poll [`CancelToken::is_cancelled`] at convenient points (between
/// iterations, between workpackages) and wind down cleanly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; there is no un-cancel.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// A cancellation token with an optional wall-clock budget attached.
///
/// This is the unit of *deadline propagation*: a server hands each
/// request a `DeadlineToken` built from its `--request-deadline-ms`
/// budget, and every long-running loop downstream (store query scans,
/// render paths) polls [`DeadlineToken::should_stop`] instead of the
/// bare [`CancelToken`]. The token trips either when the shared cancel
/// flag is raised (shutdown) or when the budget is exhausted (overload),
/// and the two causes are distinguishable via [`DeadlineToken::expired`].
#[derive(Debug, Clone)]
pub struct DeadlineToken {
    cancel: CancelToken,
    deadline: Option<Instant>,
}

impl Default for DeadlineToken {
    fn default() -> DeadlineToken {
        DeadlineToken::unbounded()
    }
}

impl DeadlineToken {
    /// A token that never stops on its own: no budget, and a private
    /// cancel flag nothing else holds. The argument every deadline-taking
    /// read API accepts when the caller has no deadline to impose.
    #[must_use]
    pub fn unbounded() -> DeadlineToken {
        DeadlineToken::cancellable(CancelToken::new())
    }

    /// A token with no time budget: it only stops when `cancel` fires.
    #[must_use]
    pub fn cancellable(cancel: CancelToken) -> DeadlineToken {
        DeadlineToken {
            cancel,
            deadline: None,
        }
    }

    /// A token whose budget runs out `budget` from now.
    ///
    /// A zero budget produces a token that is expired from birth, which
    /// is occasionally useful in tests to exercise timeout paths
    /// deterministically.
    #[must_use]
    pub fn with_budget(cancel: CancelToken, budget: Duration) -> DeadlineToken {
        DeadlineToken {
            cancel,
            deadline: Some(Instant::now() + budget),
        }
    }

    /// The underlying shared cancellation token.
    #[must_use]
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Has the wall-clock budget run out? (False for unbounded tokens.)
    #[must_use]
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Should work stop now, for either reason (cancelled or expired)?
    #[must_use]
    pub fn should_stop(&self) -> bool {
        self.cancel.is_cancelled() || self.expired()
    }

    /// Time left in the budget; `None` when unbounded.
    ///
    /// Saturates at zero once expired, so callers can feed the result
    /// straight into socket timeouts without sign checks.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_and_is_shared() {
        let clock = VirtualClock::new();
        let alias = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        clock.advance_ns(5);
        alias.advance_ms(1);
        assert_eq!(clock.now_ns(), 1_000_005);
        assert_eq!(alias.now_ns(), 1_000_005);
    }

    #[test]
    fn wall_clock_is_monotonic_and_ignores_advance() {
        let clock = Clock::wall();
        let a = clock.now_ns();
        clock.advance_ns(1_000_000_000_000);
        let b = clock.now_ns();
        assert!(b >= a);
        // The advance did not leap the clock forward by the requested
        // twenty minutes.
        assert!(b - a < 10_000_000_000);
        assert!(clock.virtual_handle().is_none());
    }

    #[test]
    fn cancel_token_shares_state_across_clones() {
        let token = CancelToken::new();
        let alias = token.clone();
        assert!(!alias.is_cancelled());
        token.cancel();
        assert!(alias.is_cancelled());
    }

    #[test]
    fn unbounded_deadline_only_stops_on_cancel() {
        let cancel = CancelToken::new();
        let token = DeadlineToken::cancellable(cancel.clone());
        assert!(!token.should_stop());
        assert!(!token.expired());
        assert!(token.remaining().is_none());
        cancel.cancel();
        assert!(token.should_stop());
        assert!(!token.expired());
        // The argless form never stops: nothing holds its cancel flag.
        assert!(!DeadlineToken::unbounded().should_stop());
    }

    #[test]
    fn zero_budget_is_expired_from_birth() {
        let token = DeadlineToken::with_budget(CancelToken::new(), Duration::ZERO);
        assert!(token.expired());
        assert!(token.should_stop());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
        assert!(!token.cancel_token().is_cancelled());
    }

    #[test]
    fn generous_budget_is_not_expired_immediately() {
        let token = DeadlineToken::with_budget(CancelToken::new(), Duration::from_secs(3600));
        assert!(!token.expired());
        assert!(!token.should_stop());
        assert!(token.remaining().unwrap() > Duration::from_secs(3500));
    }
}
