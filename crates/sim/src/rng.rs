//! Deterministic random number generation.
//!
//! Reproducibility is a first-class requirement of the knowledge cycle
//! (§III: knowledge must be "reproducible and representative"), so the
//! simulator owns its RNG instead of depending on an external crate whose
//! stream might change between versions. The generator is xoshiro256**
//! seeded through SplitMix64 — the exact published constructions — giving
//! seed-stable streams that can be split per subsystem (noise, placement,
//! jitter) without correlation.

/// SplitMix64: used to expand a 64-bit seed into xoshiro state and to
/// derive independent child seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 — the workhorse generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 per the xoshiro authors' recommendation.
    #[must_use]
    pub fn seed_from(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derive an independent child generator for a named subsystem. The
    /// stream label keeps child streams decorrelated even for adjacent
    /// indices.
    #[must_use]
    pub fn split(&mut self, label: &str) -> Rng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng::seed_from(self.next_u64() ^ h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be non-zero");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)` (f64); `lo < hi` required.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// deterministic rather than cached).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal with the given location and scale of the underlying
    /// normal. Used for multiplicative interference noise.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for the all-SplitMix64(0) seeding are fixed; this
        // test locks the stream so it cannot drift silently.
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        let mut c = Rng::seed_from(43);
        assert_ne!(first[0], c.next_u64());
    }

    #[test]
    fn splitmix_known_values() {
        // Published SplitMix64 test vector for seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.next_below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = Rng::seed_from(11);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.normal()).collect();
        let mean = iokc_util::stats::mean(&samples);
        let sd = iokc_util::stats::stddev(&samples);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((sd - 1.0).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = Rng::seed_from(13);
        for _ in 0..1000 {
            assert!(rng.lognormal(0.0, 0.3) > 0.0);
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut root = Rng::seed_from(5);
        let mut a = root.split("noise");
        let mut b = root.split("placement");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
