//! Fault and interference injection.
//!
//! The paper's anomaly-detection use case (§V-E2) observes effects — an
//! iteration with less than half the usual write throughput, an IO500 run
//! whose `ior-easy read` falls out of the expected bounding box — whose
//! causes live in the system: congested fabric, a degraded node, a broken
//! storage target. This module injects exactly those causes so that the
//! analysis phase has true anomalies to find.

use crate::time::SimTime;

/// What part of the system a fault degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The shared fabric between compute and storage.
    Fabric,
    /// One compute node's NIC.
    NodeNic(u32),
    /// One storage target's bandwidth.
    StorageTarget(u32),
    /// One metadata server's service rate.
    MetadataServer(u32),
}

/// A capacity-scaling fault active during a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Component degraded.
    pub target: FaultTarget,
    /// Capacity multiplier while active (e.g. `0.3` = 70% degradation).
    pub factor: f64,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime(u64::MAX)` = forever.
    pub until: SimTime,
}

impl Fault {
    /// A fabric congestion burst (background job storms the interconnect).
    #[must_use]
    pub fn fabric_congestion(factor: f64, from: SimTime, until: SimTime) -> Fault {
        Fault {
            target: FaultTarget::Fabric,
            factor,
            from,
            until,
        }
    }

    /// A degraded (but not dead) compute node NIC.
    #[must_use]
    pub fn degraded_node(node: u32, factor: f64, from: SimTime, until: SimTime) -> Fault {
        Fault {
            target: FaultTarget::NodeNic(node),
            factor,
            from,
            until,
        }
    }

    /// A slow storage target (failing disk / RAID rebuild).
    #[must_use]
    pub fn slow_target(target: u32, factor: f64, from: SimTime, until: SimTime) -> Fault {
        Fault {
            target: FaultTarget::StorageTarget(target),
            factor,
            from,
            until,
        }
    }

    /// An overloaded metadata server.
    #[must_use]
    pub fn slow_mds(mds: u32, factor: f64, from: SimTime, until: SimTime) -> Fault {
        Fault {
            target: FaultTarget::MetadataServer(mds),
            factor,
            from,
            until,
        }
    }

    /// A permanent fault starting at the epoch.
    #[must_use]
    pub fn permanent(target: FaultTarget, factor: f64) -> Fault {
        Fault {
            target,
            factor,
            from: SimTime::ZERO,
            until: SimTime(u64::MAX),
        }
    }

    /// Is the fault active at `t`?
    #[must_use]
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// The set of injected faults for a run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Add a fault in place.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// All faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Combined capacity factor for a component at time `t` (product of
    /// all active matching faults).
    #[must_use]
    pub fn factor(&self, target: FaultTarget, t: SimTime) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.target == target && f.active_at(t))
            .map(|f| f.factor.max(0.0))
            .product()
    }

    /// Every window edge (start or end) strictly after `t` — the engine
    /// schedules rate recomputation at these instants.
    #[must_use]
    pub fn edges_after(&self, t: SimTime) -> Vec<SimTime> {
        let mut edges: Vec<SimTime> = self
            .faults
            .iter()
            .flat_map(|f| [f.from, f.until])
            .filter(|e| *e > t && e.0 != u64::MAX)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

/// A process-level crash schedule for fault-harness tests: which
/// invocation attempts of a module (0-based, counted across retries) die
/// before producing output.
///
/// Capacity faults above degrade what a run measures; a crash schedule
/// kills the run itself — the generator returns a transient error instead
/// of artifacts, exercising the cycle's retry and degradation paths.
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    crash_attempts: std::collections::BTreeSet<u64>,
    calls: u64,
    /// Keyed schedule for campaign executors: (work item, 0-based attempt
    /// within that item) pairs whose worker dies mid-workpackage.
    keyed_crashes: std::collections::BTreeSet<(u64, u64)>,
    keyed_calls: std::collections::BTreeMap<u64, u64>,
}

impl CrashSchedule {
    /// Never crash.
    #[must_use]
    pub fn none() -> CrashSchedule {
        CrashSchedule::default()
    }

    /// Crash the first `n` invocation attempts, then run normally — the
    /// "node came back after a reboot" shape that retries recover from.
    #[must_use]
    pub fn first_n(n: u64) -> CrashSchedule {
        CrashSchedule {
            crash_attempts: (0..n).collect(),
            ..CrashSchedule::default()
        }
    }

    /// Crash exactly the given 0-based invocation attempts.
    #[must_use]
    pub fn at_attempts(attempts: &[u64]) -> CrashSchedule {
        CrashSchedule {
            crash_attempts: attempts.iter().copied().collect(),
            ..CrashSchedule::default()
        }
    }

    /// Crash specific workers of a supervised campaign: each pair is a
    /// (work item id, 0-based attempt within that item) whose worker
    /// dies mid-workpackage instead of returning output. Attempts are
    /// counted per item, so retries of the same workpackage advance its
    /// own attempt counter regardless of what other workers do.
    #[must_use]
    pub fn at_workpackages(kills: &[(u64, u64)]) -> CrashSchedule {
        CrashSchedule {
            keyed_crashes: kills.iter().copied().collect(),
            ..CrashSchedule::default()
        }
    }

    /// Record one invocation attempt; true when this attempt crashes.
    pub fn tick(&mut self) -> bool {
        let call = self.calls;
        self.calls += 1;
        self.crash_attempts.contains(&call)
    }

    /// Record one attempt of work item `key`; true when the keyed
    /// schedule kills this worker.
    pub fn tick_worker(&mut self, key: u64) -> bool {
        let attempt = self.keyed_calls.entry(key).or_insert(0);
        let this = *attempt;
        *attempt += 1;
        self.keyed_crashes.contains(&(key, this))
    }

    /// Attempts recorded so far.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Attempts recorded so far for work item `key`.
    #[must_use]
    pub fn worker_calls(&self, key: u64) -> u64 {
        self.keyed_calls.get(&key).copied().unwrap_or(0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crash_schedule_counts_attempts() {
        let mut s = CrashSchedule::first_n(2);
        assert!(s.tick());
        assert!(s.tick());
        assert!(!s.tick());
        assert_eq!(s.calls(), 3);

        let mut s = CrashSchedule::at_attempts(&[1]);
        assert!(!s.tick());
        assert!(s.tick());
        assert!(!s.tick());

        let mut s = CrashSchedule::none();
        assert!(!s.tick());
    }

    #[test]
    fn keyed_schedule_counts_attempts_per_work_item() {
        let mut s = CrashSchedule::at_workpackages(&[(5, 0), (5, 1), (9, 1)]);
        // Item 5 dies on its first two attempts, then runs.
        assert!(s.tick_worker(5));
        assert!(s.tick_worker(5));
        assert!(!s.tick_worker(5));
        // Item 9 survives attempt 0, dies on attempt 1 — interleaved
        // items keep independent counters.
        assert!(!s.tick_worker(9));
        assert!(!s.tick_worker(7));
        assert!(s.tick_worker(9));
        assert_eq!(s.worker_calls(5), 3);
        assert_eq!(s.worker_calls(9), 2);
        assert_eq!(s.worker_calls(42), 0);
        // The flat and keyed schedules are independent.
        assert!(!s.tick());
    }

    #[test]
    fn windows_and_factors() {
        let plan = FaultPlan::none()
            .with(Fault::fabric_congestion(
                0.5,
                SimTime::from_secs(1),
                SimTime::from_secs(2),
            ))
            .with(Fault::fabric_congestion(
                0.5,
                SimTime::from_millis(1500),
                SimTime::from_secs(3),
            ));
        assert_eq!(plan.factor(FaultTarget::Fabric, SimTime::ZERO), 1.0);
        assert_eq!(plan.factor(FaultTarget::Fabric, SimTime::from_secs(1)), 0.5);
        // Overlap multiplies.
        assert_eq!(
            plan.factor(FaultTarget::Fabric, SimTime::from_millis(1700)),
            0.25
        );
        assert_eq!(
            plan.factor(FaultTarget::NodeNic(0), SimTime::from_secs(1)),
            1.0
        );
    }

    #[test]
    fn window_end_is_exclusive() {
        let plan = FaultPlan::none().with(Fault::slow_target(
            2,
            0.1,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        ));
        assert_eq!(
            plan.factor(FaultTarget::StorageTarget(2), SimTime::from_secs(2)),
            1.0
        );
    }

    #[test]
    fn edges_are_sorted_and_deduped() {
        let plan = FaultPlan::none()
            .with(Fault::slow_mds(
                0,
                0.5,
                SimTime::from_secs(5),
                SimTime::from_secs(9),
            ))
            .with(Fault::degraded_node(
                1,
                0.5,
                SimTime::from_secs(2),
                SimTime::from_secs(5),
            ));
        let edges = plan.edges_after(SimTime::from_secs(2));
        assert_eq!(edges, vec![SimTime::from_secs(5), SimTime::from_secs(9)]);
    }

    #[test]
    fn permanent_fault_has_no_finite_edges() {
        let plan = FaultPlan::none().with(Fault::permanent(FaultTarget::Fabric, 0.5));
        assert!(plan.edges_after(SimTime::ZERO).is_empty());
        assert_eq!(
            plan.factor(FaultTarget::Fabric, SimTime::from_secs(1000)),
            0.5
        );
    }
}
