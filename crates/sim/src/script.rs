//! The I/O script model.
//!
//! A benchmark driver compiles each MPI rank's behaviour into a linear
//! script of [`Op`]s; the engine then executes all rank scripts
//! concurrently against the simulated system. This mirrors how IOR, mdtest
//! and HACC-IO are themselves just op-sequence generators over POSIX or
//! MPI-IO.

use crate::time::SimDuration;
use std::collections::HashMap;

/// An MPI-style rank index.
pub type Rank = u32;

/// An interned path handle. Paths are interned per [`ScriptSet`] so ops
/// stay small and comparisons are integer comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u32);

/// Open intent; decides whether the open may create the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Open an existing file for reading.
    Read,
    /// Open for writing, creating the file if missing.
    Write,
    /// Open an existing file for read/write without creating.
    ReadWrite,
}

/// Striping hints supplied at create time (the `beegfs-ctl --setpattern`
/// or MPI-IO hint equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StripeHint {
    /// Override the stripe (chunk) size in bytes.
    pub chunk_size: Option<u64>,
    /// Override the number of storage targets to stripe across.
    pub stripe_count: Option<u32>,
}

/// One scripted operation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented by the variant docs
pub enum Op {
    /// Create a directory (parents must exist).
    Mkdir { path: PathId },
    /// Remove an empty directory.
    Rmdir { path: PathId },
    /// Open (and possibly create) a file.
    Open {
        path: PathId,
        mode: OpenMode,
        hint: StripeHint,
    },
    /// Close an open file.
    Close { path: PathId },
    /// Write `len` bytes at `offset`.
    Write { path: PathId, offset: u64, len: u64 },
    /// Read `len` bytes at `offset`.
    Read { path: PathId, offset: u64, len: u64 },
    /// Flush dirty data of the file to stable storage (IOR `-e`).
    Fsync { path: PathId },
    /// Query file metadata.
    Stat { path: PathId },
    /// Remove a file.
    Unlink { path: PathId },
    /// List a directory (one op per directory, cost scales with entries).
    Readdir { path: PathId },
    /// Synchronize with every rank in `group`.
    Barrier { group: u32 },
    /// Busy CPU time (checkpoint intervals, compute phases).
    Compute { dur: SimDuration },
    /// Point-to-point eager send (two-phase collective I/O shuffle).
    Send { to: Rank, bytes: u64, tag: u32 },
    /// Matching receive.
    Recv { from: Rank, tag: u32 },
}

impl Op {
    /// Short lowercase mnemonic used in op records and Darshan DXT output.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Mkdir { .. } => OpKind::Mkdir,
            Op::Rmdir { .. } => OpKind::Rmdir,
            Op::Open { .. } => OpKind::Open,
            Op::Close { .. } => OpKind::Close,
            Op::Write { .. } => OpKind::Write,
            Op::Read { .. } => OpKind::Read,
            Op::Fsync { .. } => OpKind::Fsync,
            Op::Stat { .. } => OpKind::Stat,
            Op::Unlink { .. } => OpKind::Unlink,
            Op::Readdir { .. } => OpKind::Readdir,
            Op::Barrier { .. } => OpKind::Barrier,
            Op::Compute { .. } => OpKind::Compute,
            Op::Send { .. } => OpKind::Send,
            Op::Recv { .. } => OpKind::Recv,
        }
    }
}

/// Discriminant of [`Op`], used for metric aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum OpKind {
    Mkdir,
    Rmdir,
    Open,
    Close,
    Write,
    Read,
    Fsync,
    Stat,
    Unlink,
    Readdir,
    Barrier,
    Compute,
    Send,
    Recv,
}

impl OpKind {
    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Mkdir => "mkdir",
            OpKind::Rmdir => "rmdir",
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Write => "write",
            OpKind::Read => "read",
            OpKind::Fsync => "fsync",
            OpKind::Stat => "stat",
            OpKind::Unlink => "unlink",
            OpKind::Readdir => "readdir",
            OpKind::Barrier => "barrier",
            OpKind::Compute => "compute",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
        }
    }
}

/// A set of per-rank scripts plus the path interner they reference.
#[derive(Debug, Clone, Default)]
pub struct ScriptSet {
    paths: Vec<String>,
    path_index: HashMap<String, PathId>,
    scripts: Vec<Vec<Op>>,
    /// Declared sizes of barrier groups other than group 0 (which always
    /// spans all ranks).
    group_sizes: HashMap<u32, u32>,
    /// Stonewall deadline: once this much time has passed since the phase
    /// started, ranks skip their remaining data ops (IOR `-D`).
    stonewall: Option<SimDuration>,
}

impl ScriptSet {
    /// Create an empty script set for `nranks` ranks.
    #[must_use]
    pub fn new(nranks: u32) -> ScriptSet {
        ScriptSet {
            paths: Vec::new(),
            path_index: HashMap::new(),
            scripts: vec![Vec::new(); nranks as usize],
            group_sizes: HashMap::new(),
            stonewall: None,
        }
    }

    /// Set the stonewall deadline (IOR `-D <seconds>`): ranks stop issuing
    /// *data* ops (read/write) once the phase has run this long; metadata
    /// ops, barriers and messages still execute so the phase closes down
    /// cleanly.
    pub fn set_stonewall(&mut self, deadline: SimDuration) {
        self.stonewall = Some(deadline);
    }

    /// The configured stonewall deadline, if any.
    #[must_use]
    pub fn stonewall(&self) -> Option<SimDuration> {
        self.stonewall
    }

    /// Declare the member count of a custom barrier group. Group 0 always
    /// spans all ranks and cannot be redefined.
    pub fn set_group_size(&mut self, group: u32, size: u32) {
        assert!(group != 0, "group 0 is implicit (all ranks)");
        assert!(size > 0, "group size must be non-zero");
        self.group_sizes.insert(group, size);
    }

    /// Member count of a barrier group (`np` for group 0 or undeclared
    /// groups).
    #[must_use]
    pub fn group_size(&self, group: u32, np: u32) -> u32 {
        if group == 0 {
            np
        } else {
            self.group_sizes.get(&group).copied().unwrap_or(np)
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn nranks(&self) -> u32 {
        self.scripts.len() as u32
    }

    /// Intern a path, returning its id.
    pub fn intern(&mut self, path: &str) -> PathId {
        if let Some(id) = self.path_index.get(path) {
            return *id;
        }
        let id = PathId(self.paths.len() as u32);
        self.paths.push(path.to_owned());
        self.path_index.insert(path.to_owned(), id);
        id
    }

    /// Resolve a path id back to its string.
    #[must_use]
    pub fn path(&self, id: PathId) -> &str {
        &self.paths[id.0 as usize]
    }

    /// All interned paths in id order.
    #[must_use]
    pub fn paths(&self) -> &[String] {
        &self.paths
    }

    /// Append an op to a rank's script.
    pub fn push(&mut self, rank: Rank, op: Op) {
        self.scripts[rank as usize].push(op);
    }

    /// Borrow a rank's script.
    #[must_use]
    pub fn script(&self, rank: Rank) -> &[Op] {
        &self.scripts[rank as usize]
    }

    /// Total number of ops across all ranks.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.scripts.iter().map(Vec::len).sum()
    }

    /// Fluent per-rank builder.
    pub fn rank(&mut self, rank: Rank) -> RankScript<'_> {
        RankScript { set: self, rank }
    }
}

/// Fluent builder appending ops for one rank.
pub struct RankScript<'a> {
    set: &'a mut ScriptSet,
    rank: Rank,
}

impl RankScript<'_> {
    /// Append `Mkdir`.
    pub fn mkdir(&mut self, path: &str) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(self.rank, Op::Mkdir { path: p });
        self
    }

    /// Append `Rmdir`.
    pub fn rmdir(&mut self, path: &str) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(self.rank, Op::Rmdir { path: p });
        self
    }

    /// Append `Open` with default striping.
    pub fn open(&mut self, path: &str, mode: OpenMode) -> &mut Self {
        self.open_hint(path, mode, StripeHint::default())
    }

    /// Append `Open` with striping hints.
    pub fn open_hint(&mut self, path: &str, mode: OpenMode, hint: StripeHint) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(
            self.rank,
            Op::Open {
                path: p,
                mode,
                hint,
            },
        );
        self
    }

    /// Append `Close`.
    pub fn close(&mut self, path: &str) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(self.rank, Op::Close { path: p });
        self
    }

    /// Append `Write`.
    pub fn write(&mut self, path: &str, offset: u64, len: u64) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(
            self.rank,
            Op::Write {
                path: p,
                offset,
                len,
            },
        );
        self
    }

    /// Append `Read`.
    pub fn read(&mut self, path: &str, offset: u64, len: u64) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(
            self.rank,
            Op::Read {
                path: p,
                offset,
                len,
            },
        );
        self
    }

    /// Append `Fsync`.
    pub fn fsync(&mut self, path: &str) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(self.rank, Op::Fsync { path: p });
        self
    }

    /// Append `Stat`.
    pub fn stat(&mut self, path: &str) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(self.rank, Op::Stat { path: p });
        self
    }

    /// Append `Unlink`.
    pub fn unlink(&mut self, path: &str) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(self.rank, Op::Unlink { path: p });
        self
    }

    /// Append `Readdir`.
    pub fn readdir(&mut self, path: &str) -> &mut Self {
        let p = self.set.intern(path);
        self.set.push(self.rank, Op::Readdir { path: p });
        self
    }

    /// Append `Barrier` over group 0 (all ranks).
    pub fn barrier(&mut self) -> &mut Self {
        self.set.push(self.rank, Op::Barrier { group: 0 });
        self
    }

    /// Append `Barrier` over a named group.
    pub fn barrier_group(&mut self, group: u32) -> &mut Self {
        self.set.push(self.rank, Op::Barrier { group });
        self
    }

    /// Append `Compute`.
    pub fn compute(&mut self, dur: SimDuration) -> &mut Self {
        self.set.push(self.rank, Op::Compute { dur });
        self
    }

    /// Append `Send`.
    pub fn send(&mut self, to: Rank, bytes: u64, tag: u32) -> &mut Self {
        self.set.push(self.rank, Op::Send { to, bytes, tag });
        self
    }

    /// Append `Recv`.
    pub fn recv(&mut self, from: Rank, tag: u32) -> &mut Self {
        self.set.push(self.rank, Op::Recv { from, tag });
        self
    }
}

/// Dirname of a path (`/a/b/c` → `/a/b`); `/x` → `/`.
#[must_use]
pub fn parent_dir(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(idx) => &path[..idx],
        None => "/",
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut set = ScriptSet::new(2);
        let a = set.intern("/scratch/t0");
        let b = set.intern("/scratch/t1");
        let a2 = set.intern("/scratch/t0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(set.path(a), "/scratch/t0");
        assert_eq!(set.paths().len(), 2);
    }

    #[test]
    fn builder_appends_in_order() {
        let mut set = ScriptSet::new(1);
        set.rank(0)
            .open("/f", OpenMode::Write)
            .write("/f", 0, 1024)
            .fsync("/f")
            .close("/f")
            .barrier();
        let script = set.script(0);
        assert_eq!(script.len(), 5);
        assert_eq!(script[0].kind(), OpKind::Open);
        assert_eq!(script[1].kind(), OpKind::Write);
        assert_eq!(script[4].kind(), OpKind::Barrier);
        assert_eq!(set.total_ops(), 5);
    }

    #[test]
    fn parent_dir_cases() {
        assert_eq!(parent_dir("/a/b/c"), "/a/b");
        assert_eq!(parent_dir("/a"), "/");
        assert_eq!(parent_dir("noslash"), "/");
    }

    #[test]
    fn op_kind_names() {
        assert_eq!(OpKind::Write.as_str(), "write");
        assert_eq!(OpKind::Readdir.as_str(), "readdir");
    }
}
