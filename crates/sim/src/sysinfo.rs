//! Simulated `/proc` system information.
//!
//! The paper's extractor collects "processor cores, processor
//! architecture, processor frequency, but also the cache and memory sizes
//! … from `/proc/`" (§V-B). Real runs read the node's procfs; the
//! simulation renders equivalent `cpuinfo`/`meminfo` text from the
//! cluster configuration so the extractor exercises the identical parsing
//! path.

use crate::config::ClusterConfig;

/// A snapshot of one node's system information, renderable as procfs text.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcSnapshot {
    /// CPU model string.
    pub model_name: String,
    /// Logical processor count on the node.
    pub cpus: u32,
    /// Frequency in MHz.
    pub cpu_mhz: f64,
    /// L3 cache size in KiB.
    pub cache_kib: u64,
    /// Total memory in KiB.
    pub mem_total_kib: u64,
    /// Architecture string.
    pub architecture: String,
}

impl ProcSnapshot {
    /// Snapshot a node of the given cluster.
    #[must_use]
    pub fn of(cluster: &ClusterConfig) -> ProcSnapshot {
        ProcSnapshot {
            model_name: cluster.cpu_model.clone(),
            cpus: cluster.cores_per_node,
            cpu_mhz: cluster.cpu_mhz,
            cache_kib: 25_600, // E5-2670 v2: 25 MB L3
            mem_total_kib: cluster.mem_per_node / 1024,
            architecture: "x86_64".to_owned(),
        }
    }

    /// Render `/proc/cpuinfo`-style text (one stanza per logical CPU).
    #[must_use]
    pub fn render_cpuinfo(&self) -> String {
        let mut out = String::new();
        for cpu in 0..self.cpus {
            out.push_str(&format!("processor\t: {cpu}\n"));
            out.push_str("vendor_id\t: GenuineIntel\n");
            out.push_str(&format!("model name\t: {}\n", self.model_name));
            out.push_str(&format!("cpu MHz\t\t: {:.3}\n", self.cpu_mhz));
            out.push_str(&format!("cache size\t: {} KB\n", self.cache_kib));
            out.push('\n');
        }
        out
    }

    /// Render `/proc/meminfo`-style text.
    #[must_use]
    pub fn render_meminfo(&self) -> String {
        let free = self.mem_total_kib * 9 / 10;
        format!(
            "MemTotal:       {:>10} kB\nMemFree:        {:>10} kB\nMemAvailable:   {:>10} kB\n",
            self.mem_total_kib, free, free
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fuchs_snapshot() {
        let snap = ProcSnapshot::of(&ClusterConfig::fuchs_csc());
        assert_eq!(snap.cpus, 20);
        assert_eq!(snap.mem_total_kib, 128 * 1024 * 1024);
        assert!(snap.model_name.contains("E5-2670"));
    }

    #[test]
    fn cpuinfo_has_one_stanza_per_cpu() {
        let snap = ProcSnapshot::of(&ClusterConfig::test_small());
        let text = snap.render_cpuinfo();
        assert_eq!(text.matches("processor\t:").count(), 4);
        assert!(text.contains("model name\t: TestCPU"));
        assert!(text.contains("cpu MHz\t\t: 2000.000"));
    }

    #[test]
    fn meminfo_reports_total() {
        let snap = ProcSnapshot::of(&ClusterConfig::test_small());
        let text = snap.render_meminfo();
        assert!(text.starts_with("MemTotal:"));
        assert!(text.contains("8388608 kB"));
    }
}
