//! I/O interface layers: POSIX, MPI-IO, and HDF5.
//!
//! The paper's Figure 1 layering — high-level libraries over MPI-IO over
//! POSIX — is realised here as *script transformers*: a benchmark driver
//! describes file accesses once, and the chosen [`IoApi`] decides what ops
//! actually reach the simulated file system:
//!
//! * **POSIX** — the access maps 1:1 onto namespace/data ops.
//! * **MPI-IO (independent)** — POSIX plus the cost of `MPI_File_open`'s
//!   collective metadata handshake.
//! * **MPI-IO (collective)** — two-phase I/O: ranks ship their pieces to
//!   per-node aggregators over the fabric, aggregators issue large
//!   contiguous accesses.
//! * **HDF5** — rides on MPI-IO and adds the library's metadata footprint
//!   (superblock/object headers, chunk-index updates).

use crate::script::{OpenMode, RankScript, ScriptSet, StripeHint};
use crate::time::SimDuration;

/// Which I/O interface a benchmark uses (IOR `-a`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoApi {
    /// Plain POSIX calls.
    Posix,
    /// MPI-IO; `collective` selects two-phase collective buffering
    /// (IOR `-c`).
    MpiIo {
        /// Use collective (two-phase) transfers.
        collective: bool,
    },
    /// HDF5 atop MPI-IO.
    Hdf5 {
        /// Use collective transfers underneath.
        collective: bool,
    },
}

impl IoApi {
    /// Parse an IOR `-a` argument (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<IoApi> {
        match name.to_ascii_lowercase().as_str() {
            "posix" => Some(IoApi::Posix),
            "mpiio" => Some(IoApi::MpiIo { collective: false }),
            "hdf5" => Some(IoApi::Hdf5 { collective: false }),
            _ => None,
        }
    }

    /// The name IOR prints in its output header.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            IoApi::Posix => "POSIX",
            IoApi::MpiIo { .. } => "MPIIO",
            IoApi::Hdf5 { .. } => "HDF5",
        }
    }

    /// Switch collective mode on/off (IOR `-c` combines with `-a`).
    #[must_use]
    pub fn with_collective(self, collective: bool) -> IoApi {
        match self {
            IoApi::Posix => IoApi::Posix,
            IoApi::MpiIo { .. } => IoApi::MpiIo { collective },
            IoApi::Hdf5 { .. } => IoApi::Hdf5 { collective },
        }
    }

    /// Is this API collective?
    #[must_use]
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            IoApi::MpiIo { collective: true } | IoApi::Hdf5 { collective: true }
        )
    }
}

/// Per-open bookkeeping cost of the HDF5 library (superblock reads, object
/// header creation), charged as compute time on every rank.
const HDF5_OPEN_OVERHEAD: SimDuration = SimDuration(180_000);
/// Chunk-index (B-tree) update charged per HDF5 dataset write.
const HDF5_WRITE_OVERHEAD: SimDuration = SimDuration(25_000);

/// Emit the ops for opening `path` through `api` on one rank.
///
/// MPI-IO and HDF5 opens are collective: callers should follow the open
/// with a barrier (the drivers do).
pub fn open_file(
    api: IoApi,
    rank: &mut RankScript<'_>,
    path: &str,
    mode: OpenMode,
    hint: StripeHint,
) {
    match api {
        IoApi::Posix => {
            rank.open_hint(path, mode, hint);
        }
        IoApi::MpiIo { .. } => {
            // MPI_File_open performs a stat (existence/consistency check)
            // plus the open proper on every rank.
            if mode != OpenMode::Write {
                rank.stat(path);
            }
            rank.open_hint(path, mode, hint);
        }
        IoApi::Hdf5 { .. } => {
            if mode != OpenMode::Write {
                rank.stat(path);
            }
            rank.open_hint(path, mode, hint);
            // Library-side header parsing / creation.
            rank.compute(HDF5_OPEN_OVERHEAD);
        }
    }
}

/// Emit the ops for closing `path` through `api` on one rank.
pub fn close_file(api: IoApi, rank: &mut RankScript<'_>, path: &str) {
    match api {
        IoApi::Posix | IoApi::MpiIo { .. } => {
            rank.close(path);
        }
        IoApi::Hdf5 { .. } => {
            // Flush the object header / chunk index before close.
            rank.compute(HDF5_WRITE_OVERHEAD);
            rank.close(path);
        }
    }
}

/// Emit the ops for one rank's transfer (`write`/`read` of `len` bytes at
/// `offset`) through a non-collective path.
pub fn independent_xfer(
    api: IoApi,
    rank: &mut RankScript<'_>,
    path: &str,
    offset: u64,
    len: u64,
    is_write: bool,
) {
    if matches!(api, IoApi::Hdf5 { .. }) && is_write {
        rank.compute(HDF5_WRITE_OVERHEAD);
    }
    if is_write {
        rank.write(path, offset, len);
    } else {
        rank.read(path, offset, len);
    }
}

/// Plan for one collective transfer round: every rank contributes `len`
/// bytes at its own offset; aggregators perform the file access.
///
/// `offsets[r]` is rank r's file offset for this round. Aggregator choice
/// follows ROMIO's default of one aggregator per node (the first rank on
/// each node).
pub struct CollectiveRound<'a> {
    /// Target file.
    pub path: &'a str,
    /// Per-rank file offsets (length = np).
    pub offsets: &'a [u64],
    /// Bytes per rank.
    pub len: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Ranks per node (aggregator = first rank of each node).
    pub ppn: u32,
    /// Unique tag base for this round's shuffle messages.
    pub tag: u32,
}

/// Emit a full two-phase collective transfer into `set`.
///
/// Phase 1 (shuffle): every non-aggregator sends its piece to its node's
/// aggregator (for reads the data flows the other way, which costs the
/// same in this model, so the same message pattern is used).
/// Phase 2 (access): each aggregator performs one contiguous file access
/// covering its node's pieces, then all ranks synchronize.
pub fn collective_xfer(api: IoApi, set: &mut ScriptSet, round: &CollectiveRound<'_>) {
    let np = set.nranks();
    assert_eq!(round.offsets.len(), np as usize, "one offset per rank");
    let ppn = round.ppn.max(1);
    for rank in 0..np {
        let node_first = rank - rank % ppn;
        let is_agg = rank == node_first;
        let members_on_node = (node_first..np).take(ppn as usize).count() as u32;
        let mut rs = set.rank(rank);
        if matches!(api, IoApi::Hdf5 { .. }) && round.is_write {
            rs.compute(HDF5_WRITE_OVERHEAD);
        }
        if is_agg {
            // Receive every other node-local piece, then access the file.
            for peer in (node_first + 1)..(node_first + members_on_node) {
                rs.recv(peer, round.tag + peer);
            }
        } else {
            rs.send(node_first, round.len, round.tag + rank);
        }
        let _ = rs; // end the &mut ScriptSet borrow before re-borrowing
        if is_agg {
            // One access per contiguous run of the node's offsets; in the
            // common segmented layouts the node's pieces are contiguous.
            let mut node_offsets: Vec<u64> = (node_first..node_first + members_on_node)
                .map(|r| round.offsets[r as usize])
                .collect();
            node_offsets.sort_unstable();
            let mut rs = set.rank(rank);
            let mut run_start = node_offsets[0];
            let mut run_len = round.len;
            for off in node_offsets.iter().copied().skip(1) {
                if off == run_start + run_len {
                    run_len += round.len;
                } else {
                    emit_access(&mut rs, round.path, run_start, run_len, round.is_write);
                    run_start = off;
                    run_len = round.len;
                }
            }
            emit_access(&mut rs, round.path, run_start, run_len, round.is_write);
        }
        set.rank(rank).barrier();
    }
}

fn emit_access(rs: &mut RankScript<'_>, path: &str, offset: u64, len: u64, is_write: bool) {
    if is_write {
        rs.write(path, offset, len);
    } else {
        rs.read(path, offset, len);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::engine::{JobLayout, World};
    use crate::faults::FaultPlan;
    use crate::script::OpKind;
    use iokc_util::units::MIB;

    #[test]
    fn api_parsing_and_names() {
        assert_eq!(IoApi::parse("posix"), Some(IoApi::Posix));
        assert_eq!(
            IoApi::parse("MPIIO"),
            Some(IoApi::MpiIo { collective: false })
        );
        assert_eq!(
            IoApi::parse("HDF5"),
            Some(IoApi::Hdf5 { collective: false })
        );
        assert_eq!(IoApi::parse("netcdf"), None);
        assert_eq!(IoApi::Posix.as_str(), "POSIX");
        assert!(IoApi::MpiIo { collective: false }
            .with_collective(true)
            .is_collective());
        assert!(!IoApi::Posix.with_collective(true).is_collective());
    }

    #[test]
    fn hdf5_open_adds_overhead_ops() {
        let mut set = ScriptSet::new(1);
        open_file(
            IoApi::Hdf5 { collective: false },
            &mut set.rank(0),
            "/scratch/h5",
            OpenMode::Write,
            StripeHint::default(),
        );
        let kinds: Vec<OpKind> = set.script(0).iter().map(|o| o.kind()).collect();
        assert_eq!(kinds, vec![OpKind::Open, OpKind::Compute]);
    }

    #[test]
    fn collective_round_shuffles_and_aggregates() {
        // 4 ranks, 2 per node: ranks 0 and 2 aggregate.
        let mut set = ScriptSet::new(4);
        let offsets = [0, MIB, 2 * MIB, 3 * MIB];
        collective_xfer(
            IoApi::MpiIo { collective: true },
            &mut set,
            &CollectiveRound {
                path: "/scratch/coll",
                offsets: &offsets,
                len: MIB,
                is_write: true,
                ppn: 2,
                tag: 100,
            },
        );
        // Rank 0: recv from 1, write 2 MiB contiguous, barrier.
        let k0: Vec<OpKind> = set.script(0).iter().map(|o| o.kind()).collect();
        assert_eq!(k0, vec![OpKind::Recv, OpKind::Write, OpKind::Barrier]);
        // Rank 1: send to 0, barrier.
        let k1: Vec<OpKind> = set.script(1).iter().map(|o| o.kind()).collect();
        assert_eq!(k1, vec![OpKind::Send, OpKind::Barrier]);
        // The aggregated write is a single contiguous 2 MiB access.
        let writes: Vec<(u64, u64)> = set
            .script(0)
            .iter()
            .filter_map(|o| match o {
                crate::script::Op::Write { offset, len, .. } => Some((*offset, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec![(0, 2 * MIB)]);
    }

    #[test]
    fn collective_round_executes() {
        let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 21);
        let mut setup = ScriptSet::new(4);
        for r in 0..4 {
            open_file(
                IoApi::MpiIo { collective: true },
                &mut setup.rank(r),
                "/scratch/coll",
                OpenMode::Write,
                StripeHint::default(),
            );
            setup.rank(r).barrier();
        }
        world.run(JobLayout::new(4, 2), &setup).unwrap();

        let mut set = ScriptSet::new(4);
        let offsets = [0, MIB, 2 * MIB, 3 * MIB];
        collective_xfer(
            IoApi::MpiIo { collective: true },
            &mut set,
            &CollectiveRound {
                path: "/scratch/coll",
                offsets: &offsets,
                len: MIB,
                is_write: true,
                ppn: 2,
                tag: 7000,
            },
        );
        let result = world.run(JobLayout::new(4, 2), &set).unwrap();
        assert_eq!(result.bytes(OpKind::Write), 4 * MIB);
        assert_eq!(
            result.ops(OpKind::Write),
            2,
            "one aggregated write per node"
        );
        assert_eq!(result.ops(OpKind::Send), 2);
    }

    #[test]
    fn noncontiguous_offsets_split_accesses() {
        let mut set = ScriptSet::new(2);
        // Two ranks on one node with a hole between their pieces.
        let offsets = [0, 4 * MIB];
        collective_xfer(
            IoApi::MpiIo { collective: true },
            &mut set,
            &CollectiveRound {
                path: "/f",
                offsets: &offsets,
                len: MIB,
                is_write: false,
                ppn: 2,
                tag: 0,
            },
        );
        let reads = set
            .script(0)
            .iter()
            .filter(|o| o.kind() == OpKind::Read)
            .count();
        assert_eq!(reads, 2);
    }
}
