//! The simulated parallel file system namespace and data layout.
//!
//! Models the BeeGFS structures the paper's extractor reports on: each
//! file has an *entry id*, an owning *metadata node*, and a *stripe
//! pattern* (chunk size + storage-target list). Data placement follows
//! BeeGFS's round-robin chunk distribution over the file's target set.

use crate::config::PfsConfig;
use crate::script::{parent_dir, PathId, StripeHint};
use std::collections::{BTreeMap, BTreeSet};

/// Per-file metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// BeeGFS-style entry id (hex string derived from a stable hash).
    pub entry_id: String,
    /// Owning metadata server index.
    pub mds: u32,
    /// Stripe chunk size, bytes.
    pub chunk_size: u64,
    /// Storage targets this file stripes over (global target indices).
    pub targets: Vec<u32>,
    /// Current file size (max written extent), bytes.
    pub size: u64,
    /// Creation time in nanoseconds of sim time.
    pub created_ns: u64,
}

impl FileMeta {
    /// The storage target and in-target byte count for each piece of the
    /// byte range `[offset, offset+len)`, split at chunk boundaries and
    /// coalesced per contiguous chunk run.
    #[must_use]
    pub fn layout(&self, offset: u64, len: u64) -> Vec<(u32, u64)> {
        let mut segments: Vec<(u32, u64)> = Vec::new();
        if len == 0 || self.targets.is_empty() {
            return segments;
        }
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk_index = pos / self.chunk_size;
            let chunk_end = (chunk_index + 1) * self.chunk_size;
            let piece = chunk_end.min(end) - pos;
            let target = self.targets[(chunk_index % self.targets.len() as u64) as usize];
            match segments.last_mut() {
                Some((last_target, bytes)) if *last_target == target => *bytes += piece,
                _ => segments.push((target, piece)),
            }
            pos += piece;
        }
        segments
    }

    /// True if the byte range starts or ends off a chunk boundary — such
    /// accesses to shared files pay a read-modify-write / range-lock
    /// penalty (the ior-hard effect).
    #[must_use]
    pub fn is_unaligned(&self, offset: u64, len: u64) -> bool {
        !offset.is_multiple_of(self.chunk_size) || !(offset + len).is_multiple_of(self.chunk_size)
    }
}

/// Errors surfaced by namespace operations. Benchmarks drive the engine,
/// so these indicate driver bugs or deliberately-tested misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Create/mkdir on an existing path.
    AlreadyExists(String),
    /// Rmdir on a non-empty directory.
    NotEmpty(String),
    /// Parent directory missing.
    NoParent(String),
    /// Operation on the wrong entry type (file vs directory).
    WrongType(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::NoParent(p) => write!(f, "parent directory missing: {p}"),
            FsError::WrongType(p) => write!(f, "wrong entry type: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// The namespace: directories, files, and placement state.
#[derive(Debug, Clone)]
pub struct Namespace {
    config: PfsConfig,
    files: BTreeMap<String, FileMeta>,
    dirs: BTreeSet<String>,
    created_count: u64,
}

impl Namespace {
    /// A namespace containing only `/` and `/scratch`.
    #[must_use]
    pub fn new(config: PfsConfig) -> Namespace {
        let mut dirs = BTreeSet::new();
        dirs.insert("/".to_owned());
        dirs.insert("/scratch".to_owned());
        Namespace {
            config,
            files: BTreeMap::new(),
            dirs,
            created_count: 0,
        }
    }

    /// Access the file system configuration.
    #[must_use]
    pub fn config(&self) -> &PfsConfig {
        &self.config
    }

    /// Number of files currently present.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Look up a file.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    /// True if `path` is a directory.
    #[must_use]
    pub fn is_dir(&self, path: &str) -> bool {
        self.dirs.contains(path)
    }

    /// The metadata server responsible for `path` (by parent-dir hash, as
    /// BeeGFS assigns inode ownership).
    #[must_use]
    pub fn mds_for(&self, path: &str) -> u32 {
        (stable_hash(parent_dir(path)) % u64::from(self.config.metadata_servers.max(1))) as u32
    }

    /// Create a directory. Parents must exist.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        if self.dirs.contains(path) || self.files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_owned()));
        }
        if !self.dirs.contains(parent_dir(path)) {
            return Err(FsError::NoParent(path.to_owned()));
        }
        self.dirs.insert(path.to_owned());
        Ok(())
    }

    /// Remove an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        if !self.dirs.contains(path) {
            return Err(FsError::NotFound(path.to_owned()));
        }
        if self.list_dir(path).next().is_some() {
            return Err(FsError::NotEmpty(path.to_owned()));
        }
        self.dirs.remove(path);
        Ok(())
    }

    /// Create a file (no-op error if it exists). `now_ns` stamps creation.
    pub fn create(
        &mut self,
        path: &str,
        hint: StripeHint,
        now_ns: u64,
    ) -> Result<&FileMeta, FsError> {
        if self.files.contains_key(path) || self.dirs.contains(path) {
            return Err(FsError::AlreadyExists(path.to_owned()));
        }
        if !self.dirs.contains(parent_dir(path)) {
            return Err(FsError::NoParent(path.to_owned()));
        }
        let chunk_size = hint
            .chunk_size
            .unwrap_or(self.config.default_chunk_size)
            .max(1);
        let stripe_count = hint
            .stripe_count
            .unwrap_or(self.config.default_stripe_count)
            .clamp(1, self.config.storage_targets.max(1));
        let ntargets = self.config.storage_targets.max(1);
        // BeeGFS spreads first targets per file (free-space/random target
        // chooser); a stable path hash keeps the simulation deterministic
        // while avoiding the convoy effect of all files starting on the
        // same target.
        let first = (stable_hash(path) % u64::from(ntargets)) as u32;
        let targets: Vec<u32> = (0..stripe_count).map(|i| (first + i) % ntargets).collect();
        self.created_count += 1;
        let entry_id = format!(
            "{:X}-{:08X}-1",
            self.created_count,
            stable_hash(path) as u32
        );
        let mds = self.mds_for(path);
        let meta = FileMeta {
            entry_id,
            mds,
            chunk_size,
            targets,
            size: 0,
            created_ns: now_ns,
        };
        self.files.insert(path.to_owned(), meta);
        Ok(self.files.get(path).expect("just inserted"))
    }

    /// Look up a file for an open; errors if missing.
    pub fn open_existing(&self, path: &str) -> Result<&FileMeta, FsError> {
        if self.dirs.contains(path) {
            return Err(FsError::WrongType(path.to_owned()));
        }
        self.files
            .get(path)
            .ok_or_else(|| FsError::NotFound(path.to_owned()))
    }

    /// Extend file size after a write.
    pub fn note_write(&mut self, path: &str, offset: u64, len: u64) -> Result<(), FsError> {
        let meta = self
            .files
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        meta.size = meta.size.max(offset + len);
        Ok(())
    }

    /// Remove a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound(path.to_owned()))
    }

    /// Iterate over the immediate children (files and directories) of `dir`.
    pub fn list_dir<'a>(&'a self, dir: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        let prefix = if dir == "/" {
            String::new()
        } else {
            dir.to_owned()
        };
        let file_children = self
            .files
            .keys()
            .map(String::as_str)
            .filter(move |p| is_child(p, dir));
        let dir_children = self
            .dirs
            .iter()
            .map(String::as_str)
            .filter(move |p| is_child(p, dir));
        let _ = prefix;
        file_children.chain(dir_children)
    }

    /// Number of entries directly inside `dir` (drives readdir cost).
    #[must_use]
    pub fn dir_entries(&self, dir: &str) -> usize {
        self.list_dir(dir).count()
    }

    /// Render BeeGFS-style `beegfs-ctl --getentryinfo` output for a path —
    /// the exact text the knowledge extractor parses.
    #[must_use]
    pub fn entry_info(&self, path: &str) -> Option<String> {
        let meta = self.files.get(path)?;
        let mut out = String::new();
        out.push_str("Entry type: file\n");
        out.push_str(&format!("EntryID: {}\n", meta.entry_id));
        out.push_str(&format!(
            "Metadata node: meta{:02} [ID: {}]\n",
            meta.mds + 1,
            meta.mds + 1
        ));
        out.push_str("Stripe pattern details:\n");
        out.push_str("+ Type: RAID0\n");
        out.push_str(&format!("+ Chunksize: {}\n", format_chunk(meta.chunk_size)));
        out.push_str(&format!(
            "+ Number of storage targets: desired: {}; actual: {}\n",
            meta.targets.len(),
            meta.targets.len()
        ));
        out.push_str("+ Storage targets:\n");
        for t in &meta.targets {
            out.push_str(&format!(
                "  + {} @ storage{:02} [ID: {}]\n",
                t + 1,
                t + 1,
                t + 1
            ));
        }
        out.push_str(&format!(
            "+ Storage Pool: 1 ({})\n",
            self.config.storage_pool
        ));
        Some(out)
    }
}

fn is_child(path: &str, dir: &str) -> bool {
    if dir == "/" {
        path != "/" && path.rfind('/') == Some(0)
    } else {
        path.len() > dir.len()
            && path.starts_with(dir)
            && path.as_bytes()[dir.len()] == b'/'
            && !path[dir.len() + 1..].contains('/')
    }
}

fn format_chunk(bytes: u64) -> String {
    if bytes.is_multiple_of(1024 * 1024) {
        format!("{}M", bytes / (1024 * 1024))
    } else if bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}

impl Namespace {
    /// Render Lustre-style `lfs getstripe` output for a path — the §VI
    /// outlook asks for further parallel file systems, and the extractor
    /// understands this format alongside the BeeGFS one.
    #[must_use]
    pub fn entry_info_lustre(&self, path: &str) -> Option<String> {
        let meta = self.files.get(path)?;
        let mut out = format!("{path}\n");
        out.push_str(&format!("lmm_stripe_count:  {}\n", meta.targets.len()));
        out.push_str(&format!("lmm_stripe_size:   {}\n", meta.chunk_size));
        out.push_str("lmm_pattern:       raid0\n");
        out.push_str("lmm_layout_gen:    0\n");
        out.push_str(&format!(
            "lmm_stripe_offset: {}\n",
            meta.targets.first().copied().unwrap_or(0)
        ));
        out.push_str("\tobdidx\t\t objid\t\t objid\t\t group\n");
        for (i, target) in meta.targets.iter().enumerate() {
            let objid = stable_hash(path).wrapping_add(i as u64) & 0xff_ffff;
            out.push_str(&format!(
                "\t{:>6}\t{:>11}\t{:>#11x}\t{:>7}\n",
                target, objid, objid, 0
            ));
        }
        Some(out)
    }
}

/// FNV-1a — stable across runs and platforms (unlike `DefaultHasher`).
#[must_use]
pub fn stable_hash(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Interned-path lookup table passed to the engine alongside scripts.
#[derive(Debug, Clone, Default)]
pub struct PathTable {
    names: Vec<String>,
}

impl PathTable {
    /// Build from a slice of interned names (index = `PathId`).
    #[must_use]
    pub fn new(names: Vec<String>) -> PathTable {
        PathTable { names }
    }

    /// Resolve an id.
    #[must_use]
    pub fn name(&self, id: PathId) -> &str {
        &self.names[id.0 as usize]
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_util::units::MIB;

    fn ns() -> Namespace {
        Namespace::new(PfsConfig::test_small())
    }

    #[test]
    fn create_and_layout() {
        let mut ns = ns();
        ns.create("/scratch/f0", StripeHint::default(), 0).unwrap();
        let meta = ns.file("/scratch/f0").unwrap();
        assert_eq!(meta.chunk_size, 512 * 1024);
        assert_eq!(meta.targets.len(), 2);
        // 2 MiB write = 4 chunks over 2 targets, round robin → coalesced
        // into 4 alternating segments of 512 KiB.
        let segs = meta.layout(0, 2 * MIB);
        assert_eq!(segs.len(), 4);
        assert!(segs.iter().all(|(_, b)| *b == 512 * 1024));
        assert_eq!(segs[0].0, segs[2].0);
        assert_ne!(segs[0].0, segs[1].0);
    }

    #[test]
    fn layout_handles_partial_chunks() {
        let mut ns = ns();
        ns.create(
            "/scratch/f1",
            StripeHint {
                chunk_size: Some(1024),
                stripe_count: Some(2),
            },
            0,
        )
        .unwrap();
        let meta = ns.file("/scratch/f1").unwrap();
        let segs = meta.layout(512, 1024);
        // 512 bytes in chunk 0 (target A), 512 bytes in chunk 1 (target B).
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].1, 512);
        assert_eq!(segs[1].1, 512);
        let total: u64 = segs.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 1024);
    }

    #[test]
    fn unaligned_detection() {
        let mut ns = ns();
        ns.create("/scratch/f2", StripeHint::default(), 0).unwrap();
        let meta = ns.file("/scratch/f2").unwrap();
        assert!(!meta.is_unaligned(0, 512 * 1024));
        assert!(meta.is_unaligned(47008, 47008));
        assert!(meta.is_unaligned(0, 47008));
    }

    #[test]
    fn namespace_errors() {
        let mut ns = ns();
        assert!(matches!(ns.mkdir("/a/b"), Err(FsError::NoParent(_))));
        ns.mkdir("/a").unwrap();
        ns.mkdir("/a/b").unwrap();
        assert!(matches!(ns.mkdir("/a"), Err(FsError::AlreadyExists(_))));
        assert!(matches!(ns.rmdir("/a"), Err(FsError::NotEmpty(_))));
        ns.rmdir("/a/b").unwrap();
        ns.rmdir("/a").unwrap();
        assert!(matches!(ns.unlink("/nope"), Err(FsError::NotFound(_))));
        assert!(matches!(
            ns.open_existing("/nope"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn write_extends_size() {
        let mut ns = ns();
        ns.create("/scratch/f3", StripeHint::default(), 0).unwrap();
        ns.note_write("/scratch/f3", 4 * MIB, MIB).unwrap();
        assert_eq!(ns.file("/scratch/f3").unwrap().size, 5 * MIB);
        ns.note_write("/scratch/f3", 0, 10).unwrap();
        assert_eq!(ns.file("/scratch/f3").unwrap().size, 5 * MIB);
    }

    #[test]
    fn listing_and_counting() {
        let mut ns = ns();
        ns.mkdir("/scratch/job").unwrap();
        ns.create("/scratch/job/a", StripeHint::default(), 0)
            .unwrap();
        ns.create("/scratch/job/b", StripeHint::default(), 0)
            .unwrap();
        ns.mkdir("/scratch/job/sub").unwrap();
        assert_eq!(ns.dir_entries("/scratch/job"), 3);
        assert_eq!(ns.dir_entries("/scratch"), 1);
        let children: Vec<&str> = ns.list_dir("/scratch/job").collect();
        assert!(children.contains(&"/scratch/job/a"));
        assert!(children.contains(&"/scratch/job/sub"));
    }

    #[test]
    fn entry_info_renders_beegfs_text() {
        let mut ns = ns();
        ns.create("/scratch/f4", StripeHint::default(), 0).unwrap();
        let info = ns.entry_info("/scratch/f4").unwrap();
        assert!(info.contains("Entry type: file"));
        assert!(info.contains("EntryID:"));
        assert!(info.contains("Metadata node: meta"));
        assert!(info.contains("+ Chunksize: 512K"));
        assert!(info.contains("+ Number of storage targets: desired: 2; actual: 2"));
        assert!(ns.entry_info("/absent").is_none());
    }

    #[test]
    fn lustre_entry_info_renders() {
        let mut ns = ns();
        ns.create("/scratch/lus", StripeHint::default(), 0).unwrap();
        let info = ns.entry_info_lustre("/scratch/lus").unwrap();
        assert!(info.starts_with("/scratch/lus\n"));
        assert!(info.contains("lmm_stripe_count:  2"));
        assert!(info.contains("lmm_stripe_size:   524288"));
        assert!(info.contains("obdidx"));
        assert!(ns.entry_info_lustre("/absent").is_none());
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(stable_hash("abc"), stable_hash("abc"));
        assert_ne!(stable_hash("abc"), stable_hash("abd"));
    }

    #[test]
    fn placement_spreads_first_targets() {
        // Over many files the hash placement must hit every target.
        let mut ns = ns();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..32 {
            let path = format!("/scratch/spread{i}");
            ns.create(
                &path,
                StripeHint {
                    chunk_size: None,
                    stripe_count: Some(1),
                },
                0,
            )
            .unwrap();
            seen.insert(ns.file(&path).unwrap().targets[0]);
        }
        assert_eq!(seen.len() as u32, ns.config().storage_targets);
        // Deterministic: same path → same placement.
        assert_eq!(ns.file("/scratch/spread0").unwrap().targets, {
            let mut ns2 = super::Namespace::new(crate::config::PfsConfig::test_small());
            ns2.create(
                "/scratch/spread0",
                StripeHint {
                    chunk_size: None,
                    stripe_count: Some(1),
                },
                0,
            )
            .unwrap();
            ns2.file("/scratch/spread0").unwrap().targets.clone()
        });
    }
}
