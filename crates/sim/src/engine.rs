//! The discrete-event execution engine.
//!
//! A [`World`] owns persistent system state — namespace, page caches,
//! server queues, background-noise process, injected faults — and executes
//! [`ScriptSet`]s phase by phase. Time advances monotonically across
//! phases, so a benchmark's write phase warms caches and leaves files for
//! its read phase exactly as on a real system.
//!
//! Data movement uses a fluid-flow model: between events every in-flight
//! transfer progresses at its max–min fair rate (see [`crate::flow`]);
//! rates are recomputed whenever the set of flows or a capacity changes
//! (op start/finish, noise tick, fault window edge). Metadata operations
//! are FIFO queues at the metadata servers; small-transfer IOPS limits are
//! modelled as a serialized per-request overhead slot at each storage
//! target.

use crate::config::SystemConfig;
use crate::faults::{FaultPlan, FaultTarget};
use crate::flow::{solve_rates, FlowPath};
use crate::metrics::{OpRecord, PhaseResult};
use crate::pfs::Namespace;
use crate::rng::Rng;
use crate::script::{Op, OpKind, OpenMode, PathId, Rank, ScriptSet};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// How ranks are placed onto nodes: `ppn` consecutive ranks per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLayout {
    /// Total ranks.
    pub np: u32,
    /// Ranks per node.
    pub ppn: u32,
}

impl JobLayout {
    /// Create a layout; `ppn` must be non-zero.
    #[must_use]
    pub fn new(np: u32, ppn: u32) -> JobLayout {
        assert!(ppn > 0, "ppn must be non-zero");
        assert!(np > 0, "np must be non-zero");
        JobLayout { np, ppn }
    }

    /// Node hosting `rank`.
    #[must_use]
    pub fn node_of(&self, rank: Rank) -> u32 {
        rank / self.ppn
    }

    /// Number of nodes in use.
    #[must_use]
    pub fn nodes_used(&self) -> u32 {
        self.np.div_ceil(self.ppn)
    }
}

/// Errors from executing a phase.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented by the variant docs
pub enum SimError {
    /// A namespace operation failed (driver bug or tested misuse).
    Fs {
        rank: Rank,
        op: OpKind,
        cause: crate::pfs::FsError,
    },
    /// Ranks deadlocked (barrier/recv mismatch).
    Deadlock { waiting: u32 },
    /// The layout references more nodes than the cluster has.
    LayoutTooLarge {
        nodes_needed: u32,
        nodes_available: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Fs { rank, op, cause } => {
                write!(f, "rank {rank} {}: {cause}", op.as_str())
            }
            SimError::Deadlock { waiting } => {
                write!(f, "simulation deadlock: {waiting} ranks still waiting")
            }
            SimError::LayoutTooLarge {
                nodes_needed,
                nodes_available,
            } => write!(
                f,
                "job needs {nodes_needed} nodes but the cluster has {nodes_available}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

const FLOW_EPS: f64 = 0.5; // bytes: a flow with less remaining is complete

#[derive(Debug, Clone)]
enum Event {
    /// A rank may issue its next op.
    RankReady(Rank),
    /// A non-flow op (metadata, compute, cache read, fsync) finished.
    OpFinish(Rank),
    /// A data flow begins (after its target slot wait).
    FlowStart(PendingFlow),
    /// The earliest flow completion under current rates is due.
    FlowsDue(u64),
    /// Resample background-noise multipliers.
    NoiseTick,
    /// A fault window starts or ends.
    FaultEdge,
}

#[derive(Debug, Clone)]
struct PendingFlow {
    resources: Vec<u32>,
    bytes: f64,
    outcome: FlowOutcome,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FlowOutcome {
    /// Part of a rank's data op; op completes when `outstanding` hits zero.
    OpPart(Rank),
    /// An eager message; completes the sender's Send op and may release a
    /// waiting receiver.
    Message { from: Rank, to: Rank, tag: u32 },
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    id: u64,
    path: FlowPath,
    remaining: f64,
    rate: f64,
    outcome: FlowOutcome,
}

#[derive(Debug, Clone, PartialEq)]
enum RankState {
    Ready,
    /// Waiting for `outstanding` data flows of the current op.
    DataWait {
        outstanding: u32,
    },
    /// Waiting for an `OpFinish` event.
    TimerWait,
    /// Waiting at a barrier.
    BarrierWait {
        group: u32,
    },
    /// Waiting for a message.
    RecvWait {
        from: Rank,
        tag: u32,
    },
    Done,
}

#[derive(Debug, Default)]
struct Mailbox {
    /// (to, from, tag) → delivery times of messages already delivered.
    delivered: BTreeMap<(Rank, Rank, u32), VecDeque<SimTime>>,
}

/// Persistent simulated system state across phases.
pub struct World {
    system: SystemConfig,
    faults: FaultPlan,
    namespace: Namespace,
    now: SimTime,
    rng: Rng,
    /// Per-target noise multipliers, and one for the fabric.
    target_noise: Vec<f64>,
    /// Per-target read-path noise (much smaller: server caches are calm).
    target_read_noise: Vec<f64>,
    fabric_noise: f64,
    mds_busy: Vec<SimTime>,
    target_busy: Vec<SimTime>,
    /// Per-node page cache: file → cached byte extent, with LRU order.
    cache: Vec<NodeCache>,
    /// File → storage targets with unsynced dirty data.
    dirty: BTreeMap<String, BTreeSet<u32>>,
    /// Files opened by more than one distinct rank (lock-contention model).
    shared_files: BTreeMap<String, Rank>,
    shared_flag: BTreeSet<String>,
    /// Per-shared-file byte-range lock clock (unaligned writers serialize).
    file_lock_busy: BTreeMap<String, SimTime>,
}

#[derive(Debug, Clone, Default)]
struct NodeCache {
    /// File → cached byte ranges (sorted, coalesced, non-overlapping).
    files: BTreeMap<String, Vec<(u64, u64)>>,
    order: VecDeque<String>,
    total: u64,
}

impl World {
    /// Create a world over a system with a fault plan and a deterministic
    /// seed. Two worlds with the same configuration and seed produce
    /// bit-identical results.
    #[must_use]
    pub fn new(system: SystemConfig, faults: FaultPlan, seed: u64) -> World {
        let nodes = system.cluster.nodes as usize;
        let targets = system.pfs.storage_targets as usize;
        let mds = system.pfs.metadata_servers as usize;
        let namespace = Namespace::new(system.pfs.clone());
        World {
            rng: Rng::seed_from(seed),
            target_noise: vec![1.0; targets],
            target_read_noise: vec![1.0; targets],
            fabric_noise: 1.0,
            mds_busy: vec![SimTime::ZERO; mds],
            target_busy: vec![SimTime::ZERO; targets],
            cache: vec![NodeCache::default(); nodes],
            dirty: BTreeMap::new(),
            shared_files: BTreeMap::new(),
            shared_flag: BTreeSet::new(),
            file_lock_busy: BTreeMap::new(),
            namespace,
            system,
            faults,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulated nanoseconds elapsed since `start`, saturating at zero.
    /// Generators use this to mirror a benchmark's simulated cost onto
    /// the knowledge cycle's virtual observability clock.
    #[must_use]
    pub fn elapsed_ns_since(&self, start: SimTime) -> u64 {
        self.now.since(start).nanos()
    }

    /// The simulated system configuration.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The file system namespace (inspection, `beegfs-ctl` style queries).
    #[must_use]
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Advance the clock without doing work (gap between benchmark phases).
    pub fn sleep(&mut self, dur: SimDuration) {
        self.now += dur;
    }

    /// The active fault plan.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Replace the fault plan. Safe between phases (no flows are in
    /// flight then); used by experiment drivers to scope a fault to a
    /// specific benchmark iteration.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Add a fault to the active plan.
    pub fn add_fault(&mut self, fault: crate::faults::Fault) {
        self.faults.push(fault);
    }

    /// Execute a script set to completion and return what happened.
    pub fn run(&mut self, layout: JobLayout, scripts: &ScriptSet) -> Result<PhaseResult, SimError> {
        assert_eq!(
            layout.np,
            scripts.nranks(),
            "layout rank count must match script set"
        );
        let nodes_needed = layout.nodes_used();
        if nodes_needed > self.system.cluster.nodes {
            return Err(SimError::LayoutTooLarge {
                nodes_needed,
                nodes_available: self.system.cluster.nodes,
            });
        }
        let mut exec = Execution::new(self, layout, scripts);
        exec.run()?;
        let records = std::mem::take(&mut exec.records);
        let finished = exec.world.now;
        let stonewalled: u64 = exec.stonewalled.iter().sum();
        Ok(PhaseResult {
            records,
            started: exec.started,
            finished,
            paths: scripts.paths().to_vec(),
            stonewalled_ops: stonewalled,
        })
    }
}

struct Execution<'w> {
    world: &'w mut World,
    layout: JobLayout,
    scripts: &'w ScriptSet,
    events: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: BTreeMap<u64, Event>,
    seq: u64,
    started: SimTime,
    ranks: Vec<RankState>,
    pcs: Vec<usize>,
    op_start: Vec<SimTime>,
    done_count: u32,
    flows: Vec<ActiveFlow>,
    next_flow_id: u64,
    flow_gen: u64,
    flows_dirty: bool,
    last_advance: SimTime,
    barriers: BTreeMap<u32, Vec<Rank>>,
    mailbox: Mailbox,
    records: Vec<OpRecord>,
    stonewalled: Vec<u64>,
    noise_active: bool,
}

impl<'w> Execution<'w> {
    fn new(world: &'w mut World, layout: JobLayout, scripts: &'w ScriptSet) -> Execution<'w> {
        let np = layout.np as usize;
        let started = world.now;
        Execution {
            world,
            layout,
            scripts,
            events: BinaryHeap::new(),
            payloads: BTreeMap::new(),
            seq: 0,
            started,
            ranks: vec![RankState::Ready; np],
            pcs: vec![0; np],
            op_start: vec![started; np],
            done_count: 0,
            flows: Vec::new(),
            next_flow_id: 0,
            flow_gen: 0,
            flows_dirty: false,
            last_advance: started,
            barriers: BTreeMap::new(),
            mailbox: Mailbox::default(),
            records: Vec::new(),
            stonewalled: vec![0; np],
            noise_active: false,
        }
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.payloads.insert(seq, event);
        self.events.push(Reverse((at.nanos(), seq)));
    }

    fn run(&mut self) -> Result<(), SimError> {
        for rank in 0..self.layout.np {
            self.schedule(self.world.now, Event::RankReady(rank));
        }
        if self.world.system.noise_sigma > 0.0 {
            self.noise_active = true;
            self.schedule(self.world.now, Event::NoiseTick);
        }
        for edge in self.world.faults.edges_after(self.world.now) {
            self.schedule(edge, Event::FaultEdge);
        }

        while self.done_count < self.layout.np {
            let Some(Reverse((t_ns, seq))) = self.events.pop() else {
                let waiting = self.layout.np - self.done_count;
                return Err(SimError::Deadlock { waiting });
            };
            let event = self
                .payloads
                .remove(&seq)
                .expect("event payload present for queued seq");
            let t = SimTime(t_ns);
            self.advance_flows(t);
            self.world.now = t;
            match event {
                Event::RankReady(rank) => {
                    // A barrier release or initial start: if the rank was
                    // waiting at a barrier, finish the barrier op first.
                    if matches!(self.ranks[rank as usize], RankState::BarrierWait { .. }) {
                        self.finish_op(rank, None, 0, 0, false)?;
                    } else {
                        self.issue_next(rank)?;
                    }
                }
                Event::OpFinish(rank) => {
                    let (path, offset, len, hit) = self.current_data(rank);
                    self.finish_op(rank, path, offset, len, hit)?;
                }
                Event::FlowStart(pending) => {
                    let id = self.next_flow_id;
                    self.next_flow_id += 1;
                    self.flows.push(ActiveFlow {
                        id,
                        path: FlowPath::new(pending.resources),
                        remaining: pending.bytes.max(1.0),
                        rate: 0.0,
                        outcome: pending.outcome,
                    });
                    self.flows_dirty = true;
                }
                Event::FlowsDue(gen) => {
                    if gen == self.flow_gen {
                        self.flows_dirty = true;
                    }
                }
                Event::NoiseTick => {
                    if self.done_count < self.layout.np {
                        self.resample_noise();
                        let next = self.world.now
                            + SimDuration(self.world.system.noise_interval_ns.max(1_000_000));
                        self.schedule(next, Event::NoiseTick);
                        if !self.flows.is_empty() {
                            self.flows_dirty = true;
                        }
                    }
                }
                Event::FaultEdge => {
                    if !self.flows.is_empty() {
                        self.flows_dirty = true;
                    }
                }
            }
            self.complete_due_flows()?;
            if self.flows_dirty {
                self.recompute_rates();
            }
        }
        Ok(())
    }

    /// Data fields of the op a rank is currently executing (for records).
    fn current_data(&self, rank: Rank) -> (Option<PathId>, u64, u64, bool) {
        let pc = self.pcs[rank as usize];
        match self.scripts.script(rank).get(pc) {
            Some(Op::Write { path, offset, len }) => (Some(*path), *offset, *len, false),
            Some(Op::Read { path, offset, len }) => (Some(*path), *offset, *len, true),
            Some(
                Op::Open { path, .. }
                | Op::Close { path }
                | Op::Fsync { path }
                | Op::Stat { path }
                | Op::Unlink { path }
                | Op::Mkdir { path }
                | Op::Rmdir { path }
                | Op::Readdir { path },
            ) => (Some(*path), 0, 0, false),
            Some(Op::Send { bytes, .. }) => (None, 0, *bytes, false),
            _ => (None, 0, 0, false),
        }
    }

    fn issue_next(&mut self, rank: Rank) -> Result<(), SimError> {
        let pc = self.pcs[rank as usize];
        let script = self.scripts.script(rank);
        if pc >= script.len() {
            if self.ranks[rank as usize] != RankState::Done {
                self.ranks[rank as usize] = RankState::Done;
                self.done_count += 1;
            }
            return Ok(());
        }
        // Stonewalling: once the deadline has passed, data ops are
        // skipped (the rank "ran out of time" for further transfers) but
        // control ops still run so barriers and closes complete.
        if let Some(deadline) = self.scripts.stonewall() {
            if self.world.now - self.started >= deadline
                && matches!(script[pc], Op::Write { .. } | Op::Read { .. })
            {
                self.stonewalled[rank as usize] += 1;
                self.pcs[rank as usize] += 1;
                return self.issue_next(rank);
            }
        }
        let op = script[pc].clone();
        self.op_start[rank as usize] = self.world.now;
        let node = self.layout.node_of(rank);
        let latency = SimDuration(self.world.system.cluster.network_latency_ns);
        match op {
            Op::Mkdir { path } => {
                let name = self.scripts.path(path).to_owned();
                self.world
                    .namespace
                    .mkdir(&name)
                    .map_err(|cause| SimError::Fs {
                        rank,
                        op: OpKind::Mkdir,
                        cause,
                    })?;
                self.meta_op(rank, &name, 1.2);
            }
            Op::Rmdir { path } => {
                let name = self.scripts.path(path).to_owned();
                self.world
                    .namespace
                    .rmdir(&name)
                    .map_err(|cause| SimError::Fs {
                        rank,
                        op: OpKind::Rmdir,
                        cause,
                    })?;
                self.meta_op(rank, &name, 1.0);
            }
            Op::Open { path, mode, hint } => {
                let name = self.scripts.path(path).to_owned();
                let mut cost = 1.0;
                let exists = self.world.namespace.file(&name).is_some();
                match (exists, mode) {
                    (false, OpenMode::Write) => {
                        self.world
                            .namespace
                            .create(&name, hint, self.world.now.nanos())
                            .map_err(|cause| SimError::Fs {
                                rank,
                                op: OpKind::Open,
                                cause,
                            })?;
                        cost = 1.3; // create + layout allocation
                    }
                    (false, _) => {
                        return Err(SimError::Fs {
                            rank,
                            op: OpKind::Open,
                            cause: crate::pfs::FsError::NotFound(name),
                        });
                    }
                    (true, _) => {}
                }
                // Shared-file tracking for the range-lock model.
                match self.world.shared_files.get(&name) {
                    None => {
                        self.world.shared_files.insert(name.clone(), rank);
                    }
                    Some(first) if *first != rank => {
                        self.world.shared_flag.insert(name.clone());
                    }
                    Some(_) => {}
                }
                self.meta_op(rank, &name, cost);
            }
            Op::Close { path } => {
                let name = self.scripts.path(path).to_owned();
                self.meta_op(rank, &name, 0.5);
            }
            Op::Stat { path } => {
                let name = self.scripts.path(path).to_owned();
                if self.world.namespace.file(&name).is_none() && !self.world.namespace.is_dir(&name)
                {
                    return Err(SimError::Fs {
                        rank,
                        op: OpKind::Stat,
                        cause: crate::pfs::FsError::NotFound(name),
                    });
                }
                self.meta_op(rank, &name, 0.7);
            }
            Op::Unlink { path } => {
                let name = self.scripts.path(path).to_owned();
                self.world
                    .namespace
                    .unlink(&name)
                    .map_err(|cause| SimError::Fs {
                        rank,
                        op: OpKind::Unlink,
                        cause,
                    })?;
                self.world.dirty.remove(&name);
                self.world.file_lock_busy.remove(&name);
                self.meta_op(rank, &name, 1.1);
            }
            Op::Readdir { path } => {
                let name = self.scripts.path(path).to_owned();
                let entries = self.world.namespace.dir_entries(&name);
                // One MDS request per 64 directory entries.
                let cost = 1.0 + (entries as f64 / 64.0);
                self.meta_op(rank, &name, cost);
            }
            Op::Write { path, offset, len } => {
                self.data_op(rank, node, path, offset, len, true)?;
            }
            Op::Read { path, offset, len } => {
                self.data_op(rank, node, path, offset, len, false)?;
            }
            Op::Fsync { path } => {
                let name = self.scripts.path(path).to_owned();
                let overhead = SimDuration(self.world.system.pfs.target_op_overhead_ns);
                let targets = self.world.dirty.remove(&name).unwrap_or_default();
                let mut done = self.world.now + latency;
                for t in targets {
                    let idx = t as usize;
                    let slot = self.world.target_busy[idx].max(self.world.now + latency);
                    self.world.target_busy[idx] = slot + overhead;
                    done = done.max(slot + overhead);
                }
                self.ranks[rank as usize] = RankState::TimerWait;
                self.schedule(done + latency, Event::OpFinish(rank));
            }
            Op::Barrier { group } => {
                self.ranks[rank as usize] = RankState::BarrierWait { group };
                let members = self.scripts.group_size(group, self.layout.np);
                let arrived = self.barriers.entry(group).or_default();
                arrived.push(rank);
                if arrived.len() as u32 == members {
                    let waiters = std::mem::take(arrived);
                    // Dissemination-barrier cost: log2(n) network hops.
                    let hops = (members.max(2) as f64).log2().ceil() as u64;
                    let release = self.world.now + SimDuration(latency.nanos() * hops);
                    for w in waiters {
                        self.schedule(release, Event::RankReady(w));
                    }
                }
            }
            Op::Compute { dur } => {
                self.ranks[rank as usize] = RankState::TimerWait;
                self.schedule(self.world.now + dur, Event::OpFinish(rank));
            }
            Op::Send { to, bytes, tag } => {
                let dst_node = self.layout.node_of(to);
                if dst_node == node {
                    // Intra-node: memory copy.
                    let dur = SimDuration::from_secs_f64(
                        bytes as f64 / self.world.system.cluster.memory_bandwidth,
                    );
                    self.ranks[rank as usize] = RankState::TimerWait;
                    self.schedule(self.world.now + dur + latency, Event::OpFinish(rank));
                    // Deliver at the same completion instant.
                    self.mailbox
                        .delivered
                        .entry((to, rank, tag))
                        .or_default()
                        .push_back(self.world.now + dur + latency);
                    self.try_release_recv(to, rank, tag, self.world.now + dur + latency);
                } else {
                    let resources = vec![
                        self.res_nic(node),
                        self.res_fabric(),
                        self.res_nic(dst_node),
                    ];
                    self.ranks[rank as usize] = RankState::DataWait { outstanding: 1 };
                    self.schedule(
                        self.world.now + latency,
                        Event::FlowStart(PendingFlow {
                            resources,
                            bytes: bytes as f64,
                            outcome: FlowOutcome::Message {
                                from: rank,
                                to,
                                tag,
                            },
                        }),
                    );
                }
            }
            Op::Recv { from, tag } => {
                let key = (rank, from, tag);
                let ready = self
                    .mailbox
                    .delivered
                    .get_mut(&key)
                    .and_then(VecDeque::pop_front);
                match ready {
                    Some(at) => {
                        self.ranks[rank as usize] = RankState::TimerWait;
                        self.schedule(at.max(self.world.now), Event::OpFinish(rank));
                    }
                    None => {
                        self.ranks[rank as usize] = RankState::RecvWait { from, tag };
                    }
                }
            }
        }
        Ok(())
    }

    /// Issue a write or read: resolve layout, acquire target slots, spawn
    /// flows (or serve from page cache).
    fn data_op(
        &mut self,
        rank: Rank,
        node: u32,
        path: PathId,
        offset: u64,
        len: u64,
        is_write: bool,
    ) -> Result<(), SimError> {
        let name = self.scripts.path(path).to_owned();
        let kind = if is_write {
            OpKind::Write
        } else {
            OpKind::Read
        };
        let latency = SimDuration(self.world.system.cluster.network_latency_ns);
        let meta = self
            .world
            .namespace
            .file(&name)
            .ok_or_else(|| SimError::Fs {
                rank,
                op: kind,
                cause: crate::pfs::FsError::NotFound(name.clone()),
            })?
            .clone();

        if !is_write {
            // Page-cache check: this node previously wrote/read the range.
            let cache = &mut self.world.cache[node as usize];
            if cache.covers(&name, offset, offset + len) {
                let dur = SimDuration::from_secs_f64(
                    len as f64 / self.world.system.cluster.memory_bandwidth,
                );
                self.ranks[rank as usize] = RankState::TimerWait;
                self.schedule(self.world.now + dur, Event::OpFinish(rank));
                return Ok(());
            }
        }

        let segments = meta.layout(offset, len);
        if segments.is_empty() {
            self.ranks[rank as usize] = RankState::TimerWait;
            self.schedule(self.world.now + latency, Event::OpFinish(rank));
            return Ok(());
        }

        // Shared-file unaligned accesses pay a range-lock / read-modify-
        // write penalty (the "ior-hard" effect): the lock round-trip
        // serializes all writers of the file, and the unaligned pieces
        // cost an extra service slot at the targets.
        let shared = self.world.shared_flag.contains(&name);
        let unaligned = shared && meta.is_unaligned(offset, len);
        let unaligned_penalty = if unaligned { 2.0 } else { 1.0 };
        let raid_penalty = if is_write {
            1.0 / self.world.system.pfs.raid.write_efficiency() - 1.0
        } else {
            0.0
        };
        let overhead = self.world.system.pfs.target_op_overhead_ns as f64;
        let target_bw = self.world.system.pfs.target_bandwidth;

        // Byte-range lock acquisition: unaligned writers to a shared file
        // take turns holding the range lock for one overhead period.
        let mut earliest_start = self.world.now + latency;
        if unaligned && is_write {
            let lock = self
                .world
                .file_lock_busy
                .entry(name.clone())
                .or_insert(SimTime::ZERO);
            let granted = (*lock).max(earliest_start);
            *lock = granted + SimDuration(overhead as u64);
            earliest_start = granted;
        }

        let outstanding = segments.len() as u32;
        self.ranks[rank as usize] = RankState::DataWait { outstanding };

        for (target, bytes) in segments {
            let idx = target as usize;
            // Serialized per-request service slot at the target: fixed
            // overhead, scaled by lock penalty, plus RAID write
            // amplification proportional to the payload. A noisy (busy)
            // disk also serves requests more slowly, so the write-side
            // noise multiplier stretches the slot — this is what makes
            // small-transfer (IOPS-bound) workloads scatter across runs.
            let service_factor = if is_write {
                1.0 / self.world.target_noise[idx].max(0.1)
            } else {
                1.0
            };
            let slot_cost_ns = (overhead * unaligned_penalty
                + (bytes as f64 * raid_penalty / target_bw) * 1e9)
                * service_factor;
            let slot = self.world.target_busy[idx].max(earliest_start);
            self.world.target_busy[idx] = slot + SimDuration(slot_cost_ns as u64);
            let target_res = if is_write {
                self.res_target(target)
            } else {
                self.res_target_read(target)
            };
            let resources = vec![self.res_nic(node), self.res_fabric(), target_res];
            self.schedule(
                slot,
                Event::FlowStart(PendingFlow {
                    resources,
                    bytes: bytes as f64,
                    outcome: FlowOutcome::OpPart(rank),
                }),
            );
        }

        if is_write {
            self.world
                .namespace
                .note_write(&name, offset, len)
                .map_err(|cause| SimError::Fs {
                    rank,
                    op: kind,
                    cause,
                })?;
            let dirty = self.world.dirty.entry(name.clone()).or_default();
            for (target, _) in meta.layout(offset, len) {
                dirty.insert(target);
            }
            // Cache coherence: a write invalidates every *other* node's
            // cached copy of the file (close-to-open consistency on the
            // parallel FS revalidates pages against the new mtime).
            for (n, cache) in self.world.cache.iter_mut().enumerate() {
                if n != node as usize {
                    cache.remove(&name);
                }
            }
            let limit = (self.world.system.cluster.mem_per_node as f64 * 0.7) as u64;
            self.world.cache[node as usize].insert(&name, offset, offset + len, limit);
        } else {
            // Reading populates the cache too.
            let limit = (self.world.system.cluster.mem_per_node as f64 * 0.7) as u64;
            self.world.cache[node as usize].insert(&name, offset, offset + len, limit);
        }
        Ok(())
    }

    /// Queue a metadata operation at the responsible MDS.
    fn meta_op(&mut self, rank: Rank, path: &str, cost: f64) {
        let mds = self.world.namespace.mds_for(path) as usize;
        let latency = SimDuration(self.world.system.cluster.network_latency_ns);
        let factor = self
            .world
            .faults
            .factor(FaultTarget::MetadataServer(mds as u32), self.world.now)
            .max(1e-3);
        let base = 1.0 / self.world.system.pfs.mds_ops_per_sec;
        let jitter = 0.9 + 0.2 * self.world.rng.next_f64();
        let service = SimDuration::from_secs_f64(base * cost * jitter / factor);
        let start = self.world.mds_busy[mds].max(self.world.now + latency);
        let done = start + service;
        self.world.mds_busy[mds] = done;
        self.ranks[rank as usize] = RankState::TimerWait;
        self.schedule(done + latency, Event::OpFinish(rank));
    }

    fn finish_op(
        &mut self,
        rank: Rank,
        path: Option<PathId>,
        offset: u64,
        len: u64,
        maybe_cached: bool,
    ) -> Result<(), SimError> {
        let pc = self.pcs[rank as usize];
        let op = &self.scripts.script(rank)[pc];
        let kind = op.kind();
        // A read that finished via timer (no flows) was a cache hit.
        let cache_hit = maybe_cached
            && kind == OpKind::Read
            && matches!(self.ranks[rank as usize], RankState::TimerWait);
        self.records.push(OpRecord {
            rank,
            kind,
            path,
            offset,
            len,
            start: self.op_start[rank as usize],
            end: self.world.now,
            cache_hit,
        });
        self.pcs[rank as usize] += 1;
        self.ranks[rank as usize] = RankState::Ready;
        self.issue_next(rank)
    }

    fn try_release_recv(&mut self, to: Rank, from: Rank, tag: u32, at: SimTime) {
        if self.ranks[to as usize] == (RankState::RecvWait { from, tag }) {
            // Consume the delivery we just enqueued.
            if let Some(queue) = self.mailbox.delivered.get_mut(&(to, from, tag)) {
                queue.pop_front();
            }
            self.ranks[to as usize] = RankState::TimerWait;
            self.schedule(at.max(self.world.now), Event::OpFinish(to));
        }
    }

    fn advance_flows(&mut self, to: SimTime) {
        let dt = (to - self.last_advance).as_secs_f64();
        if dt > 0.0 {
            for flow in &mut self.flows {
                flow.remaining -= flow.rate * dt;
            }
        }
        self.last_advance = to;
    }

    fn complete_due_flows(&mut self) -> Result<(), SimError> {
        loop {
            let mut due: Vec<usize> = self
                .flows
                .iter()
                .enumerate()
                .filter(|(_, f)| f.remaining <= FLOW_EPS)
                .map(|(i, _)| i)
                .collect();
            if due.is_empty() {
                return Ok(());
            }
            // Complete in flow-id order for determinism.
            due.sort_by_key(|i| self.flows[*i].id);
            // Remove from the active set first (indices shift, so collect
            // the outcomes up front).
            let mut outcomes = Vec::with_capacity(due.len());
            for &i in &due {
                outcomes.push(self.flows[i].outcome);
            }
            let mut removed = 0usize;
            let due_set: BTreeSet<u64> = due.iter().map(|i| self.flows[*i].id).collect();
            self.flows.retain(|f| {
                let keep = !due_set.contains(&f.id);
                if !keep {
                    removed += 1;
                }
                keep
            });
            debug_assert_eq!(removed, due_set.len());
            self.flows_dirty = true;
            for outcome in outcomes {
                match outcome {
                    FlowOutcome::OpPart(rank) => {
                        if let RankState::DataWait { outstanding } = &mut self.ranks[rank as usize]
                        {
                            *outstanding -= 1;
                            if *outstanding == 0 {
                                let (path, offset, len, _) = self.current_data(rank);
                                // Data op completion; not a cache hit.
                                self.ranks[rank as usize] = RankState::Ready;
                                self.record_and_advance(rank, path, offset, len)?;
                            }
                        }
                    }
                    FlowOutcome::Message { from, to, tag } => {
                        // Sender's Send op completes.
                        if let RankState::DataWait { outstanding } = &mut self.ranks[from as usize]
                        {
                            *outstanding -= 1;
                            if *outstanding == 0 {
                                let (path, offset, len, _) = self.current_data(from);
                                self.ranks[from as usize] = RankState::Ready;
                                self.record_and_advance(from, path, offset, len)?;
                            }
                        }
                        self.mailbox
                            .delivered
                            .entry((to, from, tag))
                            .or_default()
                            .push_back(self.world.now);
                        self.try_release_recv(to, from, tag, self.world.now);
                    }
                }
            }
        }
    }

    fn record_and_advance(
        &mut self,
        rank: Rank,
        path: Option<PathId>,
        offset: u64,
        len: u64,
    ) -> Result<(), SimError> {
        let pc = self.pcs[rank as usize];
        let kind = self.scripts.script(rank)[pc].kind();
        self.records.push(OpRecord {
            rank,
            kind,
            path,
            offset,
            len,
            start: self.op_start[rank as usize],
            end: self.world.now,
            cache_hit: false,
        });
        self.pcs[rank as usize] += 1;
        self.issue_next(rank)
    }

    fn resample_noise(&mut self) {
        let sigma = self.world.system.noise_sigma;
        if sigma <= 0.0 {
            return;
        }
        let mu = -sigma * sigma / 2.0; // unit-mean lognormal
        self.world.fabric_noise = self.world.rng.lognormal(mu, sigma).clamp(0.4, 1.3);
        for i in 0..self.world.target_noise.len() {
            let v = self.world.rng.lognormal(mu, sigma).clamp(0.4, 1.3);
            self.world.target_noise[i] = v;
        }
        // Read path (server cache): a fraction of the disk-side scatter.
        let read_sigma = sigma * 0.2;
        let read_mu = -read_sigma * read_sigma / 2.0;
        for i in 0..self.world.target_read_noise.len() {
            let v = self
                .world
                .rng
                .lognormal(read_mu, read_sigma)
                .clamp(0.7, 1.2);
            self.world.target_read_noise[i] = v;
        }
    }

    // Resource index layout: [0..nodes) NICs, [nodes] fabric,
    // [nodes+1..nodes+1+targets) storage targets.
    fn res_nic(&self, node: u32) -> u32 {
        node
    }

    fn res_fabric(&self) -> u32 {
        self.world.system.cluster.nodes
    }

    fn res_target(&self, target: u32) -> u32 {
        self.world.system.cluster.nodes + 1 + target
    }

    fn res_target_read(&self, target: u32) -> u32 {
        self.world.system.cluster.nodes + 1 + self.world.system.pfs.storage_targets + target
    }

    fn capacities(&self) -> Vec<f64> {
        let cluster = &self.world.system.cluster;
        let pfs = &self.world.system.pfs;
        let now = self.world.now;
        let nodes = cluster.nodes as usize;
        let targets = pfs.storage_targets as usize;
        let mut caps = Vec::with_capacity(nodes + 1 + targets);
        for n in 0..nodes {
            let f = self
                .world
                .faults
                .factor(FaultTarget::NodeNic(n as u32), now);
            caps.push(cluster.nic_bandwidth * f);
        }
        let fabric_fault = self.world.faults.factor(FaultTarget::Fabric, now);
        caps.push(cluster.fabric_bandwidth * fabric_fault * self.world.fabric_noise);
        for t in 0..targets {
            let f = self
                .world
                .faults
                .factor(FaultTarget::StorageTarget(t as u32), now);
            caps.push(pfs.target_bandwidth * f * self.world.target_noise[t]);
        }
        // Read-path (server cache) resources: per-target, fault-affected,
        // with only mild noise (reads are far stabler than disk writes).
        for t in 0..targets {
            let f = self
                .world
                .faults
                .factor(FaultTarget::StorageTarget(t as u32), now);
            caps.push(pfs.target_read_bandwidth * f * self.world.target_read_noise[t]);
        }
        caps
    }

    fn recompute_rates(&mut self) {
        self.flows_dirty = false;
        self.flow_gen += 1;
        if self.flows.is_empty() {
            return;
        }
        let caps = self.capacities();
        let paths: Vec<FlowPath> = self.flows.iter().map(|f| f.path.clone()).collect();
        let rates = solve_rates(&caps, &paths);
        let mut earliest = f64::INFINITY;
        for (flow, rate) in self.flows.iter_mut().zip(rates) {
            flow.rate = rate;
            if rate > 0.0 && rate.is_finite() {
                earliest = earliest.min((flow.remaining - FLOW_EPS).max(0.0) / rate);
            } else if rate.is_infinite() {
                earliest = 0.0;
            }
        }
        if earliest.is_finite() {
            let due = self.world.now + SimDuration::from_secs_f64(earliest.max(1e-9));
            self.schedule(due, Event::FlowsDue(self.flow_gen));
        }
    }
}

impl NodeCache {
    /// Is the byte range `[start, end)` fully cached?
    fn covers(&self, file: &str, start: u64, end: u64) -> bool {
        if end <= start {
            return true;
        }
        self.files
            .get(file)
            .is_some_and(|ranges| ranges.iter().any(|(s, e)| *s <= start && end <= *e))
    }

    fn remove(&mut self, file: &str) {
        if let Some(ranges) = self.files.remove(file) {
            self.total -= ranges.iter().map(|(s, e)| e - s).sum::<u64>();
            self.order.retain(|f| f != file);
        }
    }

    /// Cache the byte range `[start, end)` of a file, coalescing with
    /// existing ranges, and evict whole files (LRU by first touch) while
    /// over `limit`.
    fn insert(&mut self, file: &str, start: u64, end: u64, limit: u64) {
        if end <= start {
            return;
        }
        if !self.files.contains_key(file) {
            self.order.push_back(file.to_owned());
            self.files.insert(file.to_owned(), Vec::new());
        }
        let ranges = self.files.get_mut(file).expect("just inserted");
        let before: u64 = ranges.iter().map(|(s, e)| e - s).sum();
        ranges.push((start, end));
        ranges.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges.drain(..) {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => merged.push((s, e)),
            }
        }
        *ranges = merged;
        let after: u64 = ranges.iter().map(|(s, e)| e - s).sum();
        self.total += after - before;
        while self.total > limit {
            let Some(evict) = self.order.pop_front() else {
                break;
            };
            if let Some(ranges) = self.files.remove(&evict) {
                self.total -= ranges.iter().map(|(s, e)| e - s).sum::<u64>();
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::script::StripeHint;
    use iokc_util::units::MIB;

    fn world() -> World {
        World::new(SystemConfig::test_small(), FaultPlan::none(), 42)
    }

    fn layout(np: u32, ppn: u32) -> JobLayout {
        JobLayout::new(np, ppn)
    }

    #[test]
    fn single_rank_write_roundtrip() {
        let mut w = world();
        let mut s = ScriptSet::new(1);
        s.rank(0)
            .open("/scratch/f", OpenMode::Write)
            .write("/scratch/f", 0, 4 * MIB)
            .fsync("/scratch/f")
            .close("/scratch/f");
        let result = w.run(layout(1, 1), &s).unwrap();
        assert_eq!(result.ops(OpKind::Write), 1);
        assert_eq!(result.bytes(OpKind::Write), 4 * MIB);
        assert!(result.wall() > SimDuration::ZERO);
        assert_eq!(w.namespace().file("/scratch/f").unwrap().size, 4 * MIB);
        // 4 MiB at ~0.8 GB/s NIC-bound → ≥ 5 ms; sanity-check the scale.
        let write_secs = result.span_secs(OpKind::Write);
        assert!(
            write_secs > 0.003 && write_secs < 0.1,
            "write took {write_secs}s"
        );
    }

    #[test]
    fn bandwidth_is_capped_by_bottleneck() {
        // One rank on one node: NIC (1.0e9) is the bottleneck.
        let mut w = world();
        let mut s = ScriptSet::new(1);
        s.rank(0).open("/scratch/big", OpenMode::Write);
        for i in 0..8 {
            s.rank(0).write("/scratch/big", i * 8 * MIB, 8 * MIB);
        }
        s.rank(0).close("/scratch/big");
        let result = w.run(layout(1, 1), &s).unwrap();
        let bw_bytes = result.bytes(OpKind::Write) as f64 / result.span_secs(OpKind::Write);
        assert!(bw_bytes < 1.0e9 * 1.05, "bw {bw_bytes} exceeds NIC");
        assert!(bw_bytes > 0.4e9, "bw {bw_bytes} implausibly low");
    }

    #[test]
    fn multiple_nodes_hit_fabric_limit() {
        // 4 nodes × 1 GB/s NIC = 4 GB/s demand, fabric is 2 GB/s.
        let mut w = world();
        let mut s = ScriptSet::new(4);
        for r in 0..4 {
            let path = format!("/scratch/f{r}");
            s.rank(r).open(&path, OpenMode::Write);
            for i in 0..4 {
                s.rank(r).write(&path, i * 8 * MIB, 8 * MIB);
            }
            s.rank(r).close(&path);
        }
        let result = w.run(layout(4, 1), &s).unwrap();
        let bw = result.bytes(OpKind::Write) as f64 / result.span_secs(OpKind::Write);
        assert!(bw < 2.0e9 * 1.05, "aggregate {bw} exceeds fabric");
        assert!(bw > 1.2e9, "aggregate {bw} too low for 4 writers");
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut s = ScriptSet::new(2);
            for r in 0..2 {
                let path = format!("/scratch/d{r}");
                s.rank(r)
                    .open(&path, OpenMode::Write)
                    .write(&path, 0, 2 * MIB)
                    .close(&path)
                    .barrier();
            }
            s
        };
        let mut w1 = World::new(
            SystemConfig::test_small().with_noise(0.1),
            FaultPlan::none(),
            7,
        );
        let mut w2 = World::new(
            SystemConfig::test_small().with_noise(0.1),
            FaultPlan::none(),
            7,
        );
        let r1 = w1.run(layout(2, 2), &build()).unwrap();
        let r2 = w2.run(layout(2, 2), &build()).unwrap();
        assert_eq!(r1.finished, r2.finished);
        let ends1: Vec<_> = r1.records.iter().map(|r| r.end).collect();
        let ends2: Vec<_> = r2.records.iter().map(|r| r.end).collect();
        assert_eq!(ends1, ends2);
    }

    #[test]
    fn seed_changes_results_under_noise() {
        let build = || {
            let mut s = ScriptSet::new(1);
            s.rank(0)
                .open("/scratch/n", OpenMode::Write)
                .write("/scratch/n", 0, 16 * MIB)
                .close("/scratch/n");
            s
        };
        let sys = SystemConfig::test_small().with_noise(0.2);
        let mut w1 = World::new(sys.clone(), FaultPlan::none(), 1);
        let mut w2 = World::new(sys, FaultPlan::none(), 2);
        let r1 = w1.run(layout(1, 1), &build()).unwrap();
        let r2 = w2.run(layout(1, 1), &build()).unwrap();
        assert_ne!(r1.finished, r2.finished);
    }

    #[test]
    fn barrier_synchronizes() {
        let mut s = ScriptSet::new(2);
        // Rank 0 computes 10 ms then barriers; rank 1 barriers immediately.
        s.rank(0).compute(SimDuration::from_millis(10)).barrier();
        s.rank(1).barrier();
        let mut w = world();
        let result = w.run(layout(2, 2), &s).unwrap();
        let barrier_ends: Vec<SimTime> = result
            .records
            .iter()
            .filter(|r| r.kind == OpKind::Barrier)
            .map(|r| r.end)
            .collect();
        assert_eq!(barrier_ends.len(), 2);
        assert_eq!(barrier_ends[0], barrier_ends[1]);
        assert!(barrier_ends[0] >= SimTime::from_millis(10));
    }

    #[test]
    fn send_recv_transfers() {
        let mut s = ScriptSet::new(2);
        s.rank(0).send(1, MIB, 5);
        s.rank(1).recv(0, 5);
        let mut w = world();
        let result = w.run(layout(2, 1), &s).unwrap();
        assert_eq!(result.ops(OpKind::Send), 1);
        assert_eq!(result.ops(OpKind::Recv), 1);
        let send_end = result.last_end(OpKind::Send).unwrap();
        let recv_end = result.last_end(OpKind::Recv).unwrap();
        assert!(recv_end >= send_end);
        // 1 MiB over a 1 GB/s NIC ≈ 1 ms.
        assert!(send_end.as_secs_f64() > 5e-4);
    }

    #[test]
    fn recv_before_send_blocks_until_delivery() {
        let mut s = ScriptSet::new(2);
        s.rank(0).recv(1, 9);
        s.rank(1)
            .compute(SimDuration::from_millis(5))
            .send(0, 1024, 9);
        let mut w = world();
        let result = w.run(layout(2, 1), &s).unwrap();
        let recv_end = result.last_end(OpKind::Recv).unwrap();
        assert!(recv_end >= SimTime::from_millis(5));
    }

    #[test]
    fn mismatched_barrier_deadlocks() {
        let mut s = ScriptSet::new(2);
        s.rank(0).barrier();
        // Rank 1 never reaches the barrier.
        s.rank(1).recv(0, 1);
        let mut w = world();
        let err = w.run(layout(2, 2), &s).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { waiting: 2 }));
    }

    #[test]
    fn read_after_remote_write_misses_cache() {
        let mut w = world();
        let mut s1 = ScriptSet::new(1);
        s1.rank(0)
            .open("/scratch/c", OpenMode::Write)
            .write("/scratch/c", 0, MIB)
            .close("/scratch/c");
        w.run(layout(1, 1), &s1).unwrap();

        // Same node re-reads: cache hit, fast.
        let mut s2 = ScriptSet::new(1);
        s2.rank(0)
            .open("/scratch/c", OpenMode::Read)
            .read("/scratch/c", 0, MIB)
            .close("/scratch/c");
        let hit = w.run(layout(1, 1), &s2).unwrap();
        assert!(hit
            .records
            .iter()
            .any(|r| r.kind == OpKind::Read && r.cache_hit));

        // A rank on another node reads: miss, slower.
        let mut s3 = ScriptSet::new(2);
        s3.rank(1)
            .open("/scratch/c", OpenMode::Read)
            .read("/scratch/c", 0, MIB)
            .close("/scratch/c");
        let miss = w.run(layout(2, 1), &s3).unwrap();
        let miss_read = miss
            .records
            .iter()
            .find(|r| r.kind == OpKind::Read)
            .unwrap();
        assert!(!miss_read.cache_hit);
        let hit_read = hit.records.iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert!(miss_read.duration() > hit_read.duration());
    }

    #[test]
    fn fault_slows_writes() {
        let run = |faults: FaultPlan| {
            let mut w = World::new(SystemConfig::test_small(), faults, 3);
            let mut s = ScriptSet::new(1);
            s.rank(0).open("/scratch/x", OpenMode::Write);
            for i in 0..4 {
                s.rank(0).write("/scratch/x", i * 4 * MIB, 4 * MIB);
            }
            s.rank(0).close("/scratch/x");
            w.run(layout(1, 1), &s).unwrap().span_secs(OpKind::Write)
        };
        let healthy = run(FaultPlan::none());
        let degraded =
            run(FaultPlan::none().with(crate::faults::Fault::permanent(FaultTarget::Fabric, 0.25)));
        assert!(
            degraded > healthy * 1.5,
            "degraded {degraded} vs healthy {healthy}"
        );
    }

    #[test]
    fn open_missing_for_read_errors() {
        let mut w = world();
        let mut s = ScriptSet::new(1);
        s.rank(0).open("/scratch/absent", OpenMode::Read);
        let err = w.run(layout(1, 1), &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Fs {
                op: OpKind::Open,
                ..
            }
        ));
    }

    #[test]
    fn layout_too_large_is_rejected() {
        let mut w = world();
        let s = ScriptSet::new(64);
        let err = w.run(layout(64, 1), &s).unwrap_err();
        assert!(matches!(err, SimError::LayoutTooLarge { .. }));
    }

    #[test]
    fn metadata_rate_bounded_by_mds() {
        // 200 creates on one MDS-bound workload: rate must not exceed the
        // configured aggregate MDS capability.
        let mut w = world();
        let mut s = ScriptSet::new(1);
        s.rank(0).mkdir("/scratch/md");
        for i in 0..200 {
            let path = format!("/scratch/md/f{i}");
            s.rank(0).open(&path, OpenMode::Write).close(&path);
        }
        let result = w.run(layout(1, 1), &s).unwrap();
        let rate = result.op_rate(OpKind::Open);
        let cap = w.system().pfs.mds_ops_per_sec * f64::from(w.system().pfs.metadata_servers);
        assert!(rate < cap, "open rate {rate} exceeds MDS capacity {cap}");
        assert!(rate > 500.0, "open rate {rate} implausibly low");
    }

    #[test]
    fn unaligned_shared_writes_slower_than_aligned() {
        let run_pattern = |offset_base: u64, xfer: u64| {
            let mut w = world();
            let mut setup = ScriptSet::new(2);
            for r in 0..2 {
                setup.rank(r).open("/scratch/shared", OpenMode::Write);
            }
            w.run(layout(2, 2), &setup).unwrap();
            let mut s = ScriptSet::new(2);
            for r in 0..2 {
                for i in 0..64 {
                    let off = offset_base + (u64::from(r) * 64 + i) * xfer;
                    s.rank(r).write("/scratch/shared", off, xfer);
                }
            }
            let res = w.run(layout(2, 2), &s).unwrap();
            res.bandwidth_mib(OpKind::Write)
        };
        // Aligned 512 KiB transfers vs ior-hard-style 47008-byte ones.
        let aligned = run_pattern(0, 512 * 1024);
        let unaligned = run_pattern(0, 47_008);
        assert!(
            unaligned < aligned * 0.6,
            "unaligned {unaligned} not sufficiently below aligned {aligned}"
        );
    }

    mod prop {
        use super::*;
        use iokc_util::units::MIB;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn runs_are_bit_reproducible(
                seed in any::<u64>(),
                np in 1u32..8,
                writes in 1u64..6,
                noise in 0.0f64..0.3,
            ) {
                let build = || {
                    let mut scripts = ScriptSet::new(np);
                    for rank in 0..np {
                        let path = format!("/scratch/p{rank}");
                        scripts.rank(rank).open(&path, OpenMode::Write);
                        for i in 0..writes {
                            scripts.rank(rank).write(&path, i * MIB, MIB);
                        }
                        scripts.rank(rank).close(&path).barrier();
                    }
                    scripts
                };
                let run = |seed: u64| {
                    let system = SystemConfig::test_small().with_noise(noise);
                    let mut world = World::new(system, FaultPlan::none(), seed);
                    let result = world
                        .run(JobLayout::new(np, np.min(4)), &build())
                        .unwrap();
                    let ends: Vec<u64> =
                        result.records.iter().map(|r| r.end.nanos()).collect();
                    (result.finished.nanos(), ends)
                };
                prop_assert_eq!(run(seed), run(seed));
            }

            /// Random (well-formed) scripts must always terminate: any
            /// mix of creates, writes, reads, stats and fsyncs on a
            /// rank's own file can neither deadlock nor panic.
            #[test]
            fn random_scripts_always_terminate(
                seed in any::<u64>(),
                np in 1u32..6,
                ops in proptest::collection::vec(0u8..6, 1..30),
            ) {
                let mut world =
                    World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
                let mut scripts = ScriptSet::new(np);
                for rank in 0..np {
                    let path = format!("/scratch/r{rank}");
                    scripts.rank(rank).open(&path, OpenMode::Write);
                    let mut extent = 0u64;
                    for op in &ops {
                        match op % 6 {
                            0 => {
                                scripts.rank(rank).write(&path, extent, 256 << 10);
                                extent += 256 << 10;
                            }
                            1 if extent > 0 => {
                                scripts.rank(rank).read(&path, 0, extent.min(256 << 10));
                            }
                            2 => {
                                scripts.rank(rank).stat(&path);
                            }
                            3 => {
                                scripts.rank(rank).fsync(&path);
                            }
                            4 => {
                                scripts
                                    .rank(rank)
                                    .compute(SimDuration::from_micros(50));
                            }
                            _ => {
                                scripts.rank(rank).barrier();
                            }
                        }
                    }
                    scripts.rank(rank).close(&path).barrier();
                }
                let result = world.run(JobLayout::new(np, np), &scripts).unwrap();
                prop_assert!(result.finished >= result.started);
                // Every rank's close completed.
                prop_assert_eq!(result.ops(OpKind::Close), u64::from(np));
            }

            #[test]
            fn conservation_all_bytes_written(
                np in 1u32..6,
                blocks in 1u64..5,
            ) {
                let mut world =
                    World::new(SystemConfig::test_small(), FaultPlan::none(), 3);
                let mut scripts = ScriptSet::new(np);
                for rank in 0..np {
                    let path = format!("/scratch/c{rank}");
                    scripts.rank(rank).open(&path, OpenMode::Write);
                    for i in 0..blocks {
                        scripts.rank(rank).write(&path, i * MIB, MIB);
                    }
                    scripts.rank(rank).close(&path);
                }
                let result = world.run(JobLayout::new(np, np), &scripts).unwrap();
                prop_assert_eq!(
                    result.bytes(OpKind::Write),
                    u64::from(np) * blocks * MIB
                );
                // Every file reached its expected size.
                for rank in 0..np {
                    let path = format!("/scratch/c{rank}");
                    prop_assert_eq!(
                        world.namespace().file(&path).unwrap().size,
                        blocks * MIB
                    );
                }
            }
        }
    }

    #[test]
    fn stripe_count_affects_single_writer() {
        let run_with = |stripe: u32| {
            let mut w = World::new(
                SystemConfig {
                    cluster: crate::config::ClusterConfig {
                        nic_bandwidth: 10.0e9, // not the bottleneck
                        fabric_bandwidth: 10.0e9,
                        ..crate::config::ClusterConfig::test_small()
                    },
                    pfs: crate::config::PfsConfig::test_small(),
                    noise_sigma: 0.0,
                    noise_interval_ns: 100_000_000,
                },
                FaultPlan::none(),
                5,
            );
            let mut s = ScriptSet::new(1);
            s.rank(0).open_hint(
                "/scratch/st",
                OpenMode::Write,
                StripeHint {
                    chunk_size: None,
                    stripe_count: Some(stripe),
                },
            );
            for i in 0..8 {
                s.rank(0).write("/scratch/st", i * 4 * MIB, 4 * MIB);
            }
            s.rank(0).close("/scratch/st");
            w.run(layout(1, 1), &s)
                .unwrap()
                .bandwidth_mib(OpKind::Write)
        };
        let one = run_with(1);
        let four = run_with(4);
        assert!(
            four > one * 1.5,
            "stripe 4 ({four}) should beat stripe 1 ({one})"
        );
    }
}
