//! Execution records and phase results.
//!
//! Every scripted op that executes produces an [`OpRecord`]; benchmark
//! drivers turn record streams into their native output formats, and the
//! Darshan writer turns them into characterization logs. The record is the
//! simulator's equivalent of "what actually happened on the system".

use crate::script::{OpKind, PathId, Rank};
use crate::time::{SimDuration, SimTime};

/// One completed operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRecord {
    /// Executing rank.
    pub rank: Rank,
    /// Operation class.
    pub kind: OpKind,
    /// Target path (meaningless for barriers/compute/send/recv).
    pub path: Option<PathId>,
    /// Byte offset for data ops.
    pub offset: u64,
    /// Byte count for data ops and messages.
    pub len: u64,
    /// When the rank issued the op.
    pub start: SimTime,
    /// When the op completed.
    pub end: SimTime,
    /// Whether a read was served from the client page cache.
    pub cache_hit: bool,
}

impl OpRecord {
    /// Duration of the op.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Result of executing one script set ("phase") against the world.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Completed op records, in completion order.
    pub records: Vec<OpRecord>,
    /// Simulated time when the phase started.
    pub started: SimTime,
    /// Simulated time when the last rank finished.
    pub finished: SimTime,
    /// Interned path names (index = `PathId`).
    pub paths: Vec<String>,
    /// Data ops skipped because the stonewall deadline expired.
    pub stonewalled_ops: u64,
}

impl PhaseResult {
    /// Wall time of the phase.
    #[must_use]
    pub fn wall(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Total bytes moved by ops of `kind` (write/read/send).
    #[must_use]
    pub fn bytes(&self, kind: OpKind) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.len)
            .sum()
    }

    /// Number of ops of `kind`.
    #[must_use]
    pub fn ops(&self, kind: OpKind) -> u64 {
        self.records.iter().filter(|r| r.kind == kind).count() as u64
    }

    /// First issue time among ops of `kind`, if any.
    #[must_use]
    pub fn first_start(&self, kind: OpKind) -> Option<SimTime> {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.start)
            .min()
    }

    /// Last completion among ops of `kind`, if any.
    #[must_use]
    pub fn last_end(&self, kind: OpKind) -> Option<SimTime> {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.end)
            .max()
    }

    /// Aggregate bandwidth of `kind` over the span from first issue to
    /// last completion, in MiB/s — the way IOR computes its bandwidth
    /// column.
    #[must_use]
    pub fn bandwidth_mib(&self, kind: OpKind) -> f64 {
        let (Some(first), Some(last)) = (self.first_start(kind), self.last_end(kind)) else {
            return 0.0;
        };
        iokc_util::units::mib_per_sec(self.bytes(kind), (last - first).nanos())
    }

    /// Aggregate op rate of `kind` over its active span, ops/s.
    #[must_use]
    pub fn op_rate(&self, kind: OpKind) -> f64 {
        let (Some(first), Some(last)) = (self.first_start(kind), self.last_end(kind)) else {
            return 0.0;
        };
        iokc_util::units::ops_per_sec(self.ops(kind), (last - first).nanos())
    }

    /// Per-op durations in seconds for `kind` (latency statistics).
    #[must_use]
    pub fn latencies_secs(&self, kind: OpKind) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.duration().as_secs_f64())
            .collect()
    }

    /// Summed time spent in ops of `kind` across ranks, seconds (IOR's
    /// per-phase open/close/wr-rd accounting uses max-over-ranks; that is
    /// [`PhaseResult::span_secs`]).
    #[must_use]
    pub fn total_op_secs(&self, kind: OpKind) -> f64 {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.duration().as_secs_f64())
            .sum()
    }

    /// First-issue to last-completion span for `kind`, seconds.
    #[must_use]
    pub fn span_secs(&self, kind: OpKind) -> f64 {
        match (self.first_start(kind), self.last_end(kind)) {
            (Some(a), Some(b)) => (b - a).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Records touching a specific path.
    pub fn records_for_path<'a>(
        &'a self,
        path: &'a str,
    ) -> impl Iterator<Item = &'a OpRecord> + 'a {
        let id = self.paths.iter().position(|p| p == path).map(|i| i as u32);
        self.records
            .iter()
            .filter(move |r| r.path.map(|p| Some(p.0) == id).unwrap_or(false))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::script::OpKind;
    use iokc_util::units::MIB;

    fn rec(kind: OpKind, len: u64, start_ms: u64, end_ms: u64) -> OpRecord {
        OpRecord {
            rank: 0,
            kind,
            path: Some(PathId(0)),
            offset: 0,
            len,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            cache_hit: false,
        }
    }

    fn phase(records: Vec<OpRecord>) -> PhaseResult {
        PhaseResult {
            records,
            started: SimTime::ZERO,
            finished: SimTime::from_secs(1),
            paths: vec!["/scratch/f".to_owned()],
            stonewalled_ops: 0,
        }
    }

    #[test]
    fn aggregates() {
        let p = phase(vec![
            rec(OpKind::Write, 100 * MIB, 0, 500),
            rec(OpKind::Write, 100 * MIB, 100, 1000),
            rec(OpKind::Read, 10 * MIB, 0, 100),
        ]);
        assert_eq!(p.bytes(OpKind::Write), 200 * MIB);
        assert_eq!(p.ops(OpKind::Write), 2);
        // 200 MiB over 1 s span = 200 MiB/s.
        assert!((p.bandwidth_mib(OpKind::Write) - 200.0).abs() < 1e-9);
        assert!((p.op_rate(OpKind::Write) - 2.0).abs() < 1e-9);
        assert_eq!(p.latencies_secs(OpKind::Write).len(), 2);
        assert!((p.total_op_secs(OpKind::Write) - 1.4).abs() < 1e-9);
        assert!((p.span_secs(OpKind::Write) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_kind_yields_zeros() {
        let p = phase(vec![]);
        assert_eq!(p.bandwidth_mib(OpKind::Read), 0.0);
        assert_eq!(p.op_rate(OpKind::Stat), 0.0);
        assert!(p.first_start(OpKind::Write).is_none());
    }

    #[test]
    fn wall_and_path_filter() {
        let p = phase(vec![rec(OpKind::Write, 1, 0, 1)]);
        assert_eq!(p.wall(), SimDuration::from_secs(1));
        assert_eq!(p.records_for_path("/scratch/f").count(), 1);
        assert_eq!(p.records_for_path("/other").count(), 0);
    }
}
