//! Cluster and parallel file system configuration.
//!
//! The default preset models FUCHS-CSC, the evaluation system of the paper
//! (§V-E): 198 nodes × 2× Intel Xeon E5-2670 v2 (20 cores/node), 128 GB
//! RAM per node, BeeGFS over InfiniBand FDR with ~27 GB/s aggregate
//! bandwidth.

use iokc_util::units::GIB;
#[cfg(test)]
use iokc_util::units::MIB;

/// Hardware description of the compute side of the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Human-readable system name (appears in knowledge objects).
    pub name: String,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// RAM per node, bytes.
    pub mem_per_node: u64,
    /// Per-node NIC bandwidth, bytes/s (FDR InfiniBand ≈ 6.8 GB/s usable).
    pub nic_bandwidth: f64,
    /// One-way network latency, nanoseconds.
    pub network_latency_ns: u64,
    /// Aggregate fabric bandwidth towards storage, bytes/s.
    pub fabric_bandwidth: f64,
    /// Memory bandwidth per node (page-cache hits), bytes/s.
    pub memory_bandwidth: f64,
    /// CPU model string reported in the simulated `/proc/cpuinfo`.
    pub cpu_model: String,
    /// Nominal CPU frequency in MHz.
    pub cpu_mhz: f64,
}

impl ClusterConfig {
    /// The FUCHS-CSC cluster at Goethe University Frankfurt, as described
    /// in §V-E of the paper.
    #[must_use]
    pub fn fuchs_csc() -> ClusterConfig {
        ClusterConfig {
            name: "FUCHS-CSC".to_owned(),
            nodes: 198,
            cores_per_node: 20,
            mem_per_node: 128 * GIB,
            nic_bandwidth: 6.8e9,
            network_latency_ns: 1_700,
            fabric_bandwidth: 27.0e9,
            memory_bandwidth: 50.0e9,
            cpu_model: "Intel(R) Xeon(R) CPU E5-2670 v2 @ 2.50GHz".to_owned(),
            cpu_mhz: 2500.0,
        }
    }

    /// A tiny test cluster for fast unit tests.
    #[must_use]
    pub fn test_small() -> ClusterConfig {
        ClusterConfig {
            name: "test-small".to_owned(),
            nodes: 4,
            cores_per_node: 4,
            mem_per_node: 8 * GIB,
            nic_bandwidth: 1.0e9,
            network_latency_ns: 2_000,
            fabric_bandwidth: 2.0e9,
            memory_bandwidth: 20.0e9,
            cpu_model: "TestCPU".to_owned(),
            cpu_mhz: 2000.0,
        }
    }

    /// Total core count.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }
}

/// RAID scheme of a storage pool, reported in the `filesystems` knowledge
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidScheme {
    /// Striping without redundancy.
    Raid0,
    /// Mirrored pairs.
    Raid10,
    /// Distributed parity.
    Raid6,
}

impl RaidScheme {
    /// Effective write amplification (fraction of raw bandwidth available
    /// for payload writes).
    #[must_use]
    pub fn write_efficiency(self) -> f64 {
        match self {
            RaidScheme::Raid0 => 1.0,
            RaidScheme::Raid10 => 0.5,
            RaidScheme::Raid6 => 0.7,
        }
    }

    /// Name as shown by storage tooling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RaidScheme::Raid0 => "RAID0",
            RaidScheme::Raid10 => "RAID10",
            RaidScheme::Raid6 => "RAID6",
        }
    }
}

/// BeeGFS-like parallel file system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PfsConfig {
    /// File system brand string (e.g. "BeeGFS") for knowledge objects.
    pub fs_type: String,
    /// Number of metadata servers.
    pub metadata_servers: u32,
    /// Metadata operation service rate per server, ops/s.
    pub mds_ops_per_sec: f64,
    /// Number of storage targets (OSTs).
    pub storage_targets: u32,
    /// Sequential write (disk) bandwidth per storage target, bytes/s.
    pub target_bandwidth: f64,
    /// Read-path bandwidth per storage target, bytes/s. Recently written
    /// data is served from server-side RAM on BeeGFS-like systems, so
    /// reads see a separate, stabler capacity than the disk write path
    /// (background noise is applied to the disk path only).
    pub target_read_bandwidth: f64,
    /// Fixed per-request overhead at a target, nanoseconds (seek + commit;
    /// bounds small-transfer IOPS).
    pub target_op_overhead_ns: u64,
    /// Default stripe chunk size in bytes (BeeGFS default: 512 KiB).
    pub default_chunk_size: u64,
    /// Default number of targets a file is striped across
    /// (BeeGFS default: 4).
    pub default_stripe_count: u32,
    /// RAID scheme backing each target.
    pub raid: RaidScheme,
    /// Name of the storage pool.
    pub storage_pool: String,
}

impl PfsConfig {
    /// BeeGFS as deployed on FUCHS-CSC. The compute fabric offers
    /// 27 GB/s aggregate, but the storage backend is far smaller — the
    /// paper's 80-rank IOR run measures ~2.85 GiB/s writes — so the
    /// targets, not the fabric, are the system bottleneck (six HDD-array
    /// targets at ~520 MB/s each).
    #[must_use]
    pub fn beegfs_fuchs() -> PfsConfig {
        PfsConfig {
            fs_type: "BeeGFS".to_owned(),
            metadata_servers: 4,
            mds_ops_per_sec: 22_000.0,
            storage_targets: 6,
            target_bandwidth: 5.2e8,
            target_read_bandwidth: 5.45e8,
            target_op_overhead_ns: 120_000,
            default_chunk_size: 512 * 1024,
            default_stripe_count: 4,
            raid: RaidScheme::Raid6,
            storage_pool: "Default".to_owned(),
        }
    }

    /// A small configuration for unit tests.
    #[must_use]
    pub fn test_small() -> PfsConfig {
        PfsConfig {
            fs_type: "BeeGFS".to_owned(),
            metadata_servers: 2,
            mds_ops_per_sec: 10_000.0,
            storage_targets: 4,
            target_bandwidth: 0.8e9,
            target_read_bandwidth: 0.9e9,
            target_op_overhead_ns: 100_000,
            default_chunk_size: 512 * 1024,
            default_stripe_count: 2,
            raid: RaidScheme::Raid0,
            storage_pool: "Default".to_owned(),
        }
    }

    /// Aggregate raw storage bandwidth across all targets, bytes/s.
    #[must_use]
    pub fn aggregate_target_bandwidth(&self) -> f64 {
        f64::from(self.storage_targets) * self.target_bandwidth
    }
}

/// Complete simulated system: compute plus storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Compute/cluster side.
    pub cluster: ClusterConfig,
    /// Storage side.
    pub pfs: PfsConfig,
    /// Multiplicative background-noise scale (sigma of the lognormal
    /// interference process; `0.0` disables noise entirely).
    pub noise_sigma: f64,
    /// Noise resampling interval, nanoseconds of simulated time.
    pub noise_interval_ns: u64,
}

impl SystemConfig {
    /// FUCHS-CSC with BeeGFS and mild background interference, the
    /// environment of the paper's experiments.
    #[must_use]
    pub fn fuchs_csc() -> SystemConfig {
        SystemConfig {
            cluster: ClusterConfig::fuchs_csc(),
            pfs: PfsConfig::beegfs_fuchs(),
            noise_sigma: 0.06,
            noise_interval_ns: 100_000_000,
        }
    }

    /// Small deterministic system for unit tests (noise disabled).
    #[must_use]
    pub fn test_small() -> SystemConfig {
        SystemConfig {
            cluster: ClusterConfig::test_small(),
            pfs: PfsConfig::test_small(),
            noise_sigma: 0.0,
            noise_interval_ns: 100_000_000,
        }
    }

    /// Builder-style override of the noise scale.
    #[must_use]
    pub fn with_noise(mut self, sigma: f64) -> SystemConfig {
        self.noise_sigma = sigma;
        self
    }

    /// Builder-style override of the noise resampling interval.
    #[must_use]
    pub fn with_noise_interval(mut self, nanos: u64) -> SystemConfig {
        self.noise_interval_ns = nanos.max(1_000_000);
        self
    }
}

/// How many bytes per 4 MiB block a file of this config stores on each of
/// its stripe targets — a helper used in capacity sanity checks.
#[must_use]
pub fn bytes_per_target(block: u64, chunk: u64, stripe: u32) -> u64 {
    if stripe == 0 {
        return 0;
    }
    let chunks = block / chunk;
    (chunks / u64::from(stripe)) * chunk + block % chunk
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fuchs_matches_paper() {
        let c = ClusterConfig::fuchs_csc();
        assert_eq!(c.nodes, 198);
        assert_eq!(c.cores_per_node, 20);
        assert_eq!(c.total_cores(), 3960);
        assert_eq!(c.mem_per_node, 128 * GIB);
        assert!((c.fabric_bandwidth - 27e9).abs() < 1.0);
    }

    #[test]
    fn beegfs_storage_is_the_bottleneck() {
        let s = SystemConfig::fuchs_csc();
        assert!(s.pfs.aggregate_target_bandwidth() < s.cluster.fabric_bandwidth);
        // ~3 GB/s raw storage, matching the paper's measured ~2.85 GiB/s.
        assert!((s.pfs.aggregate_target_bandwidth() - 3.12e9).abs() < 1e7);
        assert_eq!(s.pfs.default_chunk_size, 512 * 1024);
    }

    #[test]
    fn raid_efficiencies() {
        assert_eq!(RaidScheme::Raid0.write_efficiency(), 1.0);
        assert!(RaidScheme::Raid10.write_efficiency() < 1.0);
        assert_eq!(RaidScheme::Raid6.as_str(), "RAID6");
    }

    #[test]
    fn default_chunk_is_mib_fraction() {
        let p = PfsConfig::beegfs_fuchs();
        assert_eq!(MIB % p.default_chunk_size, 0);
    }

    #[test]
    fn with_noise_overrides() {
        let s = SystemConfig::test_small().with_noise(0.5);
        assert_eq!(s.noise_sigma, 0.5);
    }
}
