//! Max–min fair bandwidth sharing.
//!
//! The simulator models every in-flight data movement (a client writing a
//! stripe chunk to a storage target, an MPI shuffle message between two
//! nodes) as a *flow* traversing a set of capacitated *resources* (client
//! NIC, fabric, storage target). Between engine events rates are constant,
//! so the fluid model only needs the classic progressive-filling algorithm:
//! grow every flow's rate uniformly, freeze the flows crossing each
//! bottleneck as it saturates, and repeat. The result is the unique
//! max–min fair allocation — the same first-order behaviour as the
//! fair-share queueing of an InfiniBand fabric plus file-server request
//! schedulers.
//!
//! This module is pure (no engine state) so its invariants can be checked
//! by property tests: feasibility (no resource over capacity), work
//! conservation, and the bottleneck characterisation of max–min fairness.

/// Index of a resource in the capacity vector.
pub type ResourceId = u32;

/// A flow's static description: which resources it traverses.
///
/// Duplicate resource ids in one flow are allowed and count once (a flow
/// cannot congest itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPath {
    resources: Vec<ResourceId>,
}

impl FlowPath {
    /// Build a path; deduplicates resource ids.
    #[must_use]
    pub fn new(mut resources: Vec<ResourceId>) -> FlowPath {
        resources.sort_unstable();
        resources.dedup();
        FlowPath { resources }
    }

    /// Resources traversed.
    #[must_use]
    pub fn resources(&self) -> &[ResourceId] {
        &self.resources
    }
}

/// Compute the max–min fair rate for each flow.
///
/// * `capacities[r]` — current capacity of resource `r` in bytes/s
///   (values `<= 0` are treated as a tiny positive capacity so faulted
///   resources stall flows without dividing by zero).
/// * `flows[i]` — the path of flow `i`.
///
/// Returns one rate per flow, in bytes/s. Runs in
/// `O(bottlenecks × (flows + resources))`, with `bottlenecks ≤ resources`.
#[must_use]
pub fn solve_rates(capacities: &[f64], flows: &[FlowPath]) -> Vec<f64> {
    const MIN_CAPACITY: f64 = 1.0; // 1 byte/s floor for faulted resources

    let nres = capacities.len();
    let mut remaining: Vec<f64> = capacities
        .iter()
        .map(|c| if *c > MIN_CAPACITY { *c } else { MIN_CAPACITY })
        .collect();
    // Number of unfrozen flows crossing each resource.
    let mut load = vec![0u32; nres];
    for flow in flows {
        for &r in flow.resources() {
            load[r as usize] += 1;
        }
    }

    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut level = 0.0f64; // current uniform fill level of unfrozen flows
    let mut unfrozen = flows.iter().filter(|f| !f.resources().is_empty()).count();
    // Flows with no resources are unconstrained; they never freeze via a
    // bottleneck, so give them an effectively infinite rate up front.
    for (i, flow) in flows.iter().enumerate() {
        if flow.resources().is_empty() {
            rates[i] = f64::INFINITY;
            frozen[i] = true;
        }
    }

    while unfrozen > 0 {
        // Find the next bottleneck: the resource that saturates first as
        // the uniform level grows. Constraint per resource r:
        //   level ≤ remaining[r] / load[r]  (remaining excludes frozen usage)
        let mut bottleneck_level = f64::INFINITY;
        for r in 0..nres {
            if load[r] > 0 {
                let candidate = remaining[r] / f64::from(load[r]);
                if candidate < bottleneck_level {
                    bottleneck_level = candidate;
                }
            }
        }
        if !bottleneck_level.is_finite() {
            // No loaded resources left; remaining flows are unconstrained.
            for (i, f) in frozen.iter_mut().enumerate() {
                if !*f {
                    rates[i] = f64::INFINITY;
                    *f = true;
                }
            }
            break;
        }
        level = bottleneck_level.max(level);

        // Freeze every unfrozen flow that crosses a saturated resource.
        let mut froze_any = false;
        for (i, flow) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let saturated = flow.resources().iter().any(|&r| {
                let r = r as usize;
                load[r] > 0 && remaining[r] / f64::from(load[r]) <= level * (1.0 + 1e-9) + 1e-6
            });
            if saturated {
                rates[i] = level;
                frozen[i] = true;
                froze_any = true;
                unfrozen -= 1;
                for &r in flow.resources() {
                    let r = r as usize;
                    remaining[r] -= level;
                    load[r] -= 1;
                }
            }
        }
        debug_assert!(
            froze_any,
            "progressive filling must freeze at least one flow"
        );
        if !froze_any {
            // Numerical safety valve: freeze everything at the current level.
            for (i, f) in frozen.iter_mut().enumerate() {
                if !*f {
                    rates[i] = level;
                    *f = true;
                }
            }
            break;
        }
    }
    rates
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn path(resources: &[u32]) -> FlowPath {
        FlowPath::new(resources.to_vec())
    }

    #[test]
    fn single_flow_gets_min_capacity_on_path() {
        let caps = vec![10.0, 4.0, 8.0];
        let rates = solve_rates(&caps, &[path(&[0, 1, 2])]);
        assert!((rates[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn equal_flows_share_equally() {
        let caps = vec![9.0];
        let rates = solve_rates(&caps, &[path(&[0]), path(&[0]), path(&[0])]);
        for r in rates {
            assert!((r - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_maxmin_example() {
        // Link 0 cap 10 shared by flows A(0) and B(0,1); link 1 cap 3.
        // B is bottlenecked at 3 by link 1; A then gets the rest: 7.
        let caps = vec![10.0, 3.0];
        let rates = solve_rates(&caps, &[path(&[0]), path(&[0, 1])]);
        assert!((rates[1] - 3.0).abs() < 1e-9, "B = {}", rates[1]);
        assert!((rates[0] - 7.0).abs() < 1e-9, "A = {}", rates[0]);
    }

    #[test]
    fn three_link_chain() {
        // Flows: A(0,1), B(1,2), C(2). caps: 10, 4, 6.
        // Uniform fill: link1 saturates at level 2 → A=B=2.
        // C continues: link2 remaining 6-2=4 → C=4.
        let caps = vec![10.0, 4.0, 6.0];
        let rates = solve_rates(&caps, &[path(&[0, 1]), path(&[1, 2]), path(&[2])]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
        assert!((rates[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_resources_count_once() {
        let caps = vec![5.0];
        let rates = solve_rates(&caps, &[path(&[0, 0, 0])]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let caps = vec![5.0];
        let rates = solve_rates(&caps, &[path(&[]), path(&[0])]);
        assert!(rates[0].is_infinite());
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_is_floored_not_divided() {
        let caps = vec![0.0];
        let rates = solve_rates(&caps, &[path(&[0])]);
        assert!(rates[0] > 0.0 && rates[0] <= 1.0);
    }

    #[test]
    fn no_flows_is_fine() {
        assert!(solve_rates(&[1.0, 2.0], &[]).is_empty());
    }

    fn check_invariants(caps: &[f64], flows: &[FlowPath], rates: &[f64]) {
        // Feasibility: usage within capacity (+ tolerance).
        for (r, &cap) in caps.iter().enumerate() {
            let usage: f64 = flows
                .iter()
                .zip(rates)
                .filter(|(f, _)| f.resources().contains(&(r as u32)))
                .map(|(_, rate)| rate)
                .sum();
            let cap = cap.max(1.0);
            assert!(
                usage <= cap * (1.0 + 1e-6) + 1e-6,
                "resource {r} over capacity: {usage} > {cap}"
            );
        }
        // Max–min: every flow has a bottleneck resource that is saturated
        // and on which it has a maximal rate.
        for (i, flow) in flows.iter().enumerate() {
            if flow.resources().is_empty() {
                continue;
            }
            let has_bottleneck = flow.resources().iter().any(|&r| {
                let usage: f64 = flows
                    .iter()
                    .zip(rates)
                    .filter(|(f, _)| f.resources().contains(&r))
                    .map(|(_, rate)| rate)
                    .sum();
                let cap = caps[r as usize].max(1.0);
                let saturated = usage >= cap * (1.0 - 1e-6) - 1e-6;
                let maximal = flows
                    .iter()
                    .zip(rates)
                    .filter(|(f, _)| f.resources().contains(&r))
                    .all(|(_, rate)| *rate <= rates[i] * (1.0 + 1e-6) + 1e-6);
                saturated && maximal
            });
            assert!(has_bottleneck, "flow {i} has no bottleneck");
        }
    }

    #[test]
    fn invariants_on_dense_example() {
        let caps = vec![12.0, 7.0, 20.0, 3.0];
        let flows = vec![
            path(&[0, 1]),
            path(&[0, 2]),
            path(&[1, 3]),
            path(&[2]),
            path(&[0, 1, 2, 3]),
            path(&[3]),
        ];
        let rates = solve_rates(&caps, &flows);
        check_invariants(&caps, &flows, &rates);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn maxmin_invariants_hold(
                caps in proptest::collection::vec(1.0f64..1000.0, 1..8),
                flow_specs in proptest::collection::vec(
                    proptest::collection::vec(0u32..8, 1..5),
                    1..20
                ),
            ) {
                let nres = caps.len() as u32;
                let flows: Vec<FlowPath> = flow_specs
                    .into_iter()
                    .map(|spec| FlowPath::new(
                        spec.into_iter().map(|r| r % nres).collect()
                    ))
                    .collect();
                let rates = solve_rates(&caps, &flows);
                prop_assert_eq!(rates.len(), flows.len());
                check_invariants(&caps, &flows, &rates);
            }
        }
    }
}
