//! `iokc-sim` — a deterministic discrete-event simulator of an HPC
//! cluster with a BeeGFS-like parallel file system.
//!
//! This crate is the substitute for the paper's evaluation platform (the
//! FUCHS-CSC cluster, §V-E): benchmark drivers compile rank behaviour into
//! [`script::ScriptSet`]s, a [`engine::World`] executes them against a
//! configurable system model, and the resulting [`metrics::PhaseResult`]
//! carries per-operation records from which the benchmark reimplementations
//! produce their native output formats.
//!
//! # Model summary
//!
//! * **Data path** — every transfer is a flow across client NIC → fabric →
//!   storage target, sharing capacity max–min fairly ([`flow`]).
//! * **Metadata path** — FIFO service queues at the metadata servers, with
//!   per-op-class costs ([`engine`]).
//! * **Placement** — BeeGFS-style round-robin chunk striping ([`pfs`]).
//! * **Client effects** — per-node page caches (defeated by IOR `-C`),
//!   serialized per-request target overheads (IOPS limits), RAID write
//!   amplification, shared-file unaligned-access penalties.
//! * **Variance & anomalies** — a seeded lognormal interference process
//!   and explicit fault windows ([`faults`]).
//!
//! # Example
//!
//! ```
//! use iokc_sim::prelude::*;
//!
//! let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 42);
//! let mut scripts = ScriptSet::new(2);
//! for rank in 0..2 {
//!     let file = format!("/scratch/rank{rank}");
//!     scripts.rank(rank)
//!         .open(&file, OpenMode::Write)
//!         .write(&file, 0, 1 << 20)
//!         .close(&file)
//!         .barrier();
//! }
//! let result = world.run(JobLayout::new(2, 2), &scripts).unwrap();
//! assert_eq!(result.bytes(OpKind::Write), 2 << 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod api;
pub mod config;
pub mod engine;
pub mod faults;
pub mod flow;
pub mod metrics;
pub mod pfs;
pub mod rng;
pub mod script;
pub mod sysinfo;
pub mod time;

/// Convenient re-exports of the types almost every consumer needs.
pub mod prelude {
    pub use crate::api::IoApi;
    pub use crate::config::{ClusterConfig, PfsConfig, RaidScheme, SystemConfig};
    pub use crate::engine::{JobLayout, SimError, World};
    pub use crate::faults::{CrashSchedule, Fault, FaultPlan, FaultTarget};
    pub use crate::metrics::{OpRecord, PhaseResult};
    pub use crate::pfs::Namespace;
    pub use crate::rng::Rng;
    pub use crate::script::{Op, OpKind, OpenMode, Rank, ScriptSet, StripeHint};
    pub use crate::sysinfo::ProcSnapshot;
    pub use crate::time::{SimDuration, SimTime};
}
