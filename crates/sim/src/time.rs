//! Simulated time.
//!
//! The engine keeps time as integer nanoseconds. Integer keys make event
//! ordering exact and runs bit-reproducible — the knowledge cycle's
//! "verified environment" requirement (§III, Generation phase) is realised
//! here by determinism rather than by exclusive cluster reservations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from fractional seconds (saturating).
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime(iokc_util::units::secs_to_nanos(secs))
    }

    /// Construct from whole microseconds.
    #[must_use]
    pub fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// Construct from whole milliseconds.
    #[must_use]
    pub fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// Construct from whole seconds.
    #[must_use]
    pub fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// This instant as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    #[must_use]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from fractional seconds (saturating, non-negative).
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        SimDuration(iokc_util::units::secs_to_nanos(secs))
    }

    /// Construct from whole microseconds.
    #[must_use]
    pub fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// Construct from whole milliseconds.
    #[must_use]
    pub fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// Construct from whole seconds.
    #[must_use]
    pub fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// This span as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    #[must_use]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Scale by a non-negative factor, saturating.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor.max(0.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(500);
        assert_eq!(t.nanos(), 10_500_000);
        assert_eq!((t - SimTime::from_millis(10)).nanos(), 500_000);
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_secs(1),
            SimDuration::ZERO
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs_f64(2.5).nanos(), 2_500_000_000);
        assert!((SimDuration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(0.5),
            SimDuration::from_secs(1)
        );
        assert_eq!(SimDuration::from_secs(2).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_since() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(
            SimTime::from_secs(2).since(SimTime::from_secs(1)),
            SimDuration::from_secs(1)
        );
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
