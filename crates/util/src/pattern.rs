//! A scanf-style pattern matcher.
//!
//! JUBE extracts result metrics from benchmark output with user-declared
//! patterns. The original uses Python regular expressions; this workspace
//! uses a deliberately small pattern language that covers every pattern the
//! knowledge cycle needs while staying dependency-free and fast (a single
//! left-to-right pass, no backtracking blowup):
//!
//! * literal text matches itself (leading/trailing whitespace-insensitive
//!   runs: any whitespace in the pattern matches one-or-more whitespace
//!   characters in the input);
//! * `{name}` captures a whitespace-delimited token;
//! * `{name:f}` captures a floating point number;
//! * `{name:d}` captures a decimal integer;
//! * `{name:*}` captures lazily up to the next literal (like `(.*?)`);
//! * `{}` skips a token without capturing.
//!
//! Example: `"Max Write: {bw:f} MiB/sec"` applied to an IOR summary line.

use std::collections::BTreeMap;
use std::fmt;

/// A compiled pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    parts: Vec<Part>,
    anchored_start: bool,
    anchored_end: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    /// Literal text; whitespace inside matches one-or-more whitespace.
    Lit(Vec<LitAtom>),
    /// A capture group.
    Cap { name: Option<String>, kind: CapKind },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LitAtom {
    Text(String),
    Space,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CapKind {
    Token,
    Float,
    Int,
    Lazy,
}

/// Error compiling a pattern string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError(pub String);

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.0)
    }
}

impl std::error::Error for PatternError {}

/// Captured values from a successful match, keyed by capture name.
pub type Captures = BTreeMap<String, String>;

impl Pattern {
    /// Compile a pattern string. By default the pattern may match anywhere
    /// in a line (unanchored); prefix with `^` or suffix with `$` to anchor.
    pub fn compile(source: &str) -> Result<Pattern, PatternError> {
        let mut src = source;
        let anchored_start = src.starts_with('^');
        if anchored_start {
            src = &src[1..];
        }
        let anchored_end = src.ends_with('$') && !src.ends_with("\\$");
        if anchored_end {
            src = &src[..src.len() - 1];
        }
        let mut parts = Vec::new();
        let mut lit = Vec::new();
        let mut chars = src.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '{' => {
                    let mut spec = String::new();
                    let mut closed = false;
                    for c in chars.by_ref() {
                        if c == '}' {
                            closed = true;
                            break;
                        }
                        spec.push(c);
                    }
                    if !closed {
                        return Err(PatternError(format!("unclosed '{{' in `{source}`")));
                    }
                    flush_lit(&mut parts, &mut lit);
                    let (name, kind) = match spec.split_once(':') {
                        Some((name, "f")) => (name, CapKind::Float),
                        Some((name, "d")) => (name, CapKind::Int),
                        Some((name, "*")) => (name, CapKind::Lazy),
                        Some((_, other)) => {
                            return Err(PatternError(format!(
                                "unknown capture kind `{other}` in `{source}`"
                            )))
                        }
                        None => (spec.as_str(), CapKind::Token),
                    };
                    let name = if name.is_empty() {
                        None
                    } else {
                        Some(name.to_owned())
                    };
                    parts.push(Part::Cap { name, kind });
                }
                '\\' => {
                    let escaped = chars
                        .next()
                        .ok_or_else(|| PatternError(format!("dangling escape in `{source}`")))?;
                    push_text(&mut lit, escaped);
                }
                c if c.is_whitespace() => {
                    if !matches!(lit.last(), Some(LitAtom::Space)) {
                        lit.push(LitAtom::Space);
                    }
                }
                c => push_text(&mut lit, c),
            }
        }
        flush_lit(&mut parts, &mut lit);
        if parts.is_empty() {
            return Err(PatternError("empty pattern".into()));
        }
        Ok(Pattern {
            parts,
            anchored_start,
            anchored_end,
        })
    }

    /// Attempt to match this pattern against `input`, returning captures on
    /// success. For unanchored patterns the match may begin at any position.
    #[must_use]
    pub fn captures(&self, input: &str) -> Option<Captures> {
        if self.anchored_start {
            return self.match_at(input, 0);
        }
        // Try every start offset; patterns begin with literals in practice,
        // so use the first literal text (if any) to jump between candidates.
        let mut start = 0;
        loop {
            if let Some(caps) = self.match_at(input, start) {
                return Some(caps);
            }
            match next_start(input, start) {
                Some(next) => start = next,
                None => return None,
            }
        }
    }

    /// True if the pattern matches `input`.
    #[must_use]
    pub fn is_match(&self, input: &str) -> bool {
        self.captures(input).is_some()
    }

    /// Scan a multi-line text and return captures from the first matching line.
    #[must_use]
    pub fn first_match(&self, text: &str) -> Option<(usize, Captures)> {
        text.lines()
            .enumerate()
            .find_map(|(i, line)| self.captures(line).map(|c| (i, c)))
    }

    /// Scan a multi-line text and return captures from every matching line.
    #[must_use]
    pub fn all_matches(&self, text: &str) -> Vec<Captures> {
        text.lines()
            .filter_map(|line| self.captures(line))
            .collect()
    }

    fn match_at(&self, input: &str, start: usize) -> Option<Captures> {
        let mut caps = Captures::new();
        let mut pos = start;
        let bytes = input.as_bytes();
        let mut i = 0;
        while i < self.parts.len() {
            match &self.parts[i] {
                Part::Lit(atoms) => {
                    pos = match_lit(input, pos, atoms)?;
                }
                Part::Cap { name, kind } => {
                    let (value, end) = match kind {
                        CapKind::Token => {
                            let tok_start = skip_spaces(bytes, pos);
                            let mut end = tok_start;
                            while end < bytes.len() && !bytes[end].is_ascii_whitespace() {
                                end += 1;
                            }
                            if end == tok_start {
                                return None;
                            }
                            (&input[tok_start..end], end)
                        }
                        CapKind::Float => {
                            let num_start = skip_spaces(bytes, pos);
                            let end = scan_float(bytes, num_start)?;
                            (&input[num_start..end], end)
                        }
                        CapKind::Int => {
                            let num_start = skip_spaces(bytes, pos);
                            let end = scan_int(bytes, num_start)?;
                            (&input[num_start..end], end)
                        }
                        CapKind::Lazy => {
                            // Lazily match up to wherever the remainder of
                            // the pattern first succeeds.
                            let rest = Pattern {
                                parts: self.parts[i + 1..].to_vec(),
                                anchored_start: true,
                                anchored_end: self.anchored_end,
                            };
                            if rest.parts.is_empty() {
                                let end = input.len();
                                (&input[pos..end], end)
                            } else {
                                let mut cut = pos;
                                loop {
                                    if let Some(rest_caps) = rest.match_at(input, cut) {
                                        if let Some(name) = name {
                                            caps.insert(name.clone(), input[pos..cut].to_owned());
                                        }
                                        caps.extend(rest_caps);
                                        return Some(caps);
                                    }
                                    cut = next_char_boundary(input, cut)?;
                                }
                            }
                        }
                    };
                    if let Some(name) = name {
                        caps.insert(name.clone(), value.to_owned());
                    }
                    pos = end;
                }
            }
            i += 1;
        }
        if self.anchored_end && input[pos..].trim().is_empty() {
            Some(caps)
        } else if self.anchored_end {
            None
        } else {
            Some(caps)
        }
    }
}

fn push_text(lit: &mut Vec<LitAtom>, c: char) {
    if let Some(LitAtom::Text(text)) = lit.last_mut() {
        text.push(c);
    } else {
        lit.push(LitAtom::Text(c.to_string()));
    }
}

fn flush_lit(parts: &mut Vec<Part>, lit: &mut Vec<LitAtom>) {
    if !lit.is_empty() {
        parts.push(Part::Lit(std::mem::take(lit)));
    }
}

fn next_start(input: &str, start: usize) -> Option<usize> {
    next_char_boundary(input, start)
}

fn next_char_boundary(input: &str, pos: usize) -> Option<usize> {
    if pos >= input.len() {
        return None;
    }
    let mut next = pos + 1;
    while next < input.len() && !input.is_char_boundary(next) {
        next += 1;
    }
    Some(next)
}

fn skip_spaces(bytes: &[u8], mut pos: usize) -> usize {
    while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
        pos += 1;
    }
    pos
}

fn match_lit(input: &str, mut pos: usize, atoms: &[LitAtom]) -> Option<usize> {
    let bytes = input.as_bytes();
    for atom in atoms {
        match atom {
            LitAtom::Text(text) => {
                if input[pos..].starts_with(text.as_str()) {
                    pos += text.len();
                } else {
                    return None;
                }
            }
            LitAtom::Space => {
                let end = skip_spaces(bytes, pos);
                if end == pos {
                    return None;
                }
                pos = end;
            }
        }
    }
    Some(pos)
}

fn scan_float(bytes: &[u8], start: usize) -> Option<usize> {
    let mut pos = start;
    if pos < bytes.len() && (bytes[pos] == b'-' || bytes[pos] == b'+') {
        pos += 1;
    }
    let digits_start = pos;
    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos < bytes.len() && bytes[pos] == b'.' {
        pos += 1;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    if pos == digits_start {
        return None;
    }
    if pos < bytes.len() && (bytes[pos] == b'e' || bytes[pos] == b'E') {
        let mut exp = pos + 1;
        if exp < bytes.len() && (bytes[exp] == b'-' || bytes[exp] == b'+') {
            exp += 1;
        }
        let exp_digits = exp;
        while exp < bytes.len() && bytes[exp].is_ascii_digit() {
            exp += 1;
        }
        if exp > exp_digits {
            pos = exp;
        }
    }
    Some(pos)
}

fn scan_int(bytes: &[u8], start: usize) -> Option<usize> {
    let mut pos = start;
    if pos < bytes.len() && (bytes[pos] == b'-' || bytes[pos] == b'+') {
        pos += 1;
    }
    let digits_start = pos;
    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
        pos += 1;
    }
    (pos > digits_start).then_some(pos)
}

/// Convenience: compile and match in one call, returning the named capture
/// parsed as `f64`.
pub fn extract_f64(pattern: &str, text: &str, name: &str) -> Option<f64> {
    let compiled = Pattern::compile(pattern).ok()?;
    let (_, caps) = compiled.first_match(text)?;
    caps.get(name)?.parse().ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_float() {
        let p = Pattern::compile("Max Write: {bw:f} MiB/sec").unwrap();
        let caps = p
            .captures("Max Write: 2850.25 MiB/sec (2988.97 MB/sec)")
            .unwrap();
        assert_eq!(caps["bw"], "2850.25");
    }

    #[test]
    fn token_capture() {
        let p = Pattern::compile("api = {api}").unwrap();
        let caps = p.captures("  api = MPIIO ").unwrap();
        assert_eq!(caps["api"], "MPIIO");
    }

    #[test]
    fn int_capture_rejects_float_context() {
        let p = Pattern::compile("^iters: {n:d}$").unwrap();
        assert_eq!(p.captures("iters: 6").unwrap()["n"], "6");
        assert!(p.captures("iters: 6.5").is_none());
    }

    #[test]
    fn lazy_capture() {
        let p = Pattern::compile("Command line used: {cmd:*}$").unwrap();
        let caps = p.captures("Command line used: ior -a mpiio -b 4m").unwrap();
        assert_eq!(caps["cmd"], "ior -a mpiio -b 4m");
    }

    #[test]
    fn lazy_capture_with_tail() {
        let p = Pattern::compile("[{tag:*}] score = {s:f}").unwrap();
        let caps = p.captures("[RESULT] score = 1.25").unwrap();
        assert_eq!(caps["tag"], "RESULT");
        assert_eq!(caps["s"], "1.25");
    }

    #[test]
    fn whitespace_in_pattern_is_flexible() {
        let p = Pattern::compile("write {bw:f} {iops:f}").unwrap();
        let caps = p.captures("write     2850.12      1425.06").unwrap();
        assert_eq!(caps["bw"], "2850.12");
        assert_eq!(caps["iops"], "1425.06");
    }

    #[test]
    fn unanchored_matches_mid_line() {
        let p = Pattern::compile("bw={bw:f}").unwrap();
        assert_eq!(p.captures("result: bw=12.5 end").unwrap()["bw"], "12.5");
    }

    #[test]
    fn anchors_enforced() {
        let anchored = Pattern::compile("^hello {x:d}$").unwrap();
        assert!(anchored.captures("hello 5").is_some());
        assert!(anchored.captures("say hello 5").is_none());
        assert!(anchored.captures("hello 5 more").is_none());
    }

    #[test]
    fn skip_capture_unnamed() {
        let p = Pattern::compile("{} {} {third}").unwrap();
        let caps = p.captures("a b c").unwrap();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps["third"], "c");
    }

    #[test]
    fn escaped_brace() {
        let p = Pattern::compile(r"\{literal\}").unwrap();
        assert!(p.is_match("{literal}"));
    }

    #[test]
    fn compile_errors() {
        assert!(Pattern::compile("").is_err());
        assert!(Pattern::compile("{unclosed").is_err());
        assert!(Pattern::compile("{x:q}").is_err());
    }

    #[test]
    fn negative_and_scientific_floats() {
        let p = Pattern::compile("v={v:f}").unwrap();
        assert_eq!(p.captures("v=-3.5e-2").unwrap()["v"], "-3.5e-2");
        assert_eq!(p.captures("v=42").unwrap()["v"], "42");
    }

    #[test]
    fn all_matches_scans_lines() {
        let p = Pattern::compile("read {bw:f}").unwrap();
        let text = "read 1.0\nwrite 2.0\nread 3.0\n";
        let hits = p.all_matches(text);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[1]["bw"], "3.0");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn compile_never_panics(source in ".{0,40}") {
                let _ = Pattern::compile(&source);
            }

            #[test]
            fn matching_never_panics(
                source in "[a-zA-Z0-9 {}:*.$^-]{1,30}",
                input in ".{0,60}",
            ) {
                if let Ok(pattern) = Pattern::compile(&source) {
                    let _ = pattern.captures(&input);
                    let _ = pattern.all_matches(&input);
                }
            }

            #[test]
            fn float_captures_parse(value in -1e9f64..1e9) {
                let text = format!("bw = {value} MiB/s");
                let p = Pattern::compile("bw = {v:f} MiB/s").unwrap();
                let caps = p.captures(&text).unwrap();
                let parsed: f64 = caps["v"].parse().unwrap();
                prop_assert!((parsed - value).abs() <= value.abs() * 1e-12 + 1e-9);
            }

            #[test]
            fn token_capture_recovers_token(token in "[a-zA-Z0-9_/.-]{1,20}") {
                let text = format!("api = {token} trailing");
                let p = Pattern::compile("api = {t}").unwrap();
                let caps = p.captures(&text).unwrap();
                prop_assert_eq!(&caps["t"], &token);
            }
        }
    }

    #[test]
    fn extract_f64_helper() {
        assert_eq!(
            extract_f64(
                "Max Read: {bw:f} MiB/sec",
                "x\nMax Read:  99.5 MiB/sec",
                "bw"
            ),
            Some(99.5)
        );
    }
}
