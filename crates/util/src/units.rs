//! Byte-size and time-unit handling compatible with IOR's option grammar.
//!
//! IOR accepts sizes like `4m`, `2m`, `1g`, `512k` (binary multiples) for
//! `-b` (block size) and `-t` (transfer size); IO500 configuration files
//! use the same grammar. Bandwidths in benchmark output are reported in
//! MiB/s, metadata rates in ops/s (kIOPS in IO500 summaries).

use std::fmt;

/// Binary kibi multiplier.
pub const KIB: u64 = 1024;
/// Binary mebi multiplier.
pub const MIB: u64 = 1024 * 1024;
/// Binary gibi multiplier.
pub const GIB: u64 = 1024 * 1024 * 1024;
/// Binary tebi multiplier.
pub const TIB: u64 = 1024 * 1024 * 1024 * 1024;

/// Error parsing a byte-size expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeError(pub String);

impl fmt::Display for SizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid size: {}", self.0)
    }
}

impl std::error::Error for SizeError {}

/// Parse an IOR-style size expression (`4m`, `2M`, `1g`, `512k`, `38`,
/// `16MiB`) into bytes. Bare numbers are bytes. Suffixes are
/// case-insensitive binary multiples; an optional `b`/`ib` tail is
/// tolerated (`4mb`, `4mib`).
pub fn parse_size(text: &str) -> Result<u64, SizeError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(SizeError("empty size".into()));
    }
    let digits_end = trimmed
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(trimmed.len());
    if digits_end == 0 {
        return Err(SizeError(text.to_owned()));
    }
    let value: u64 = trimmed[..digits_end]
        .parse()
        .map_err(|_| SizeError(text.to_owned()))?;
    let suffix = trimmed[digits_end..].trim().to_ascii_lowercase();
    let multiplier = match suffix.as_str() {
        "" | "b" | "byte" | "bytes" => 1,
        "k" | "kb" | "kib" => KIB,
        "m" | "mb" | "mib" => MIB,
        "g" | "gb" | "gib" => GIB,
        "t" | "tb" | "tib" => TIB,
        _ => return Err(SizeError(text.to_owned())),
    };
    value
        .checked_mul(multiplier)
        .ok_or_else(|| SizeError(format!("size overflows u64: {text}")))
}

/// Format a byte count the way IOR prints block/transfer sizes
/// (e.g. `4 MiB`, `1024 KiB`, `38 bytes`).
#[must_use]
pub fn format_size(bytes: u64) -> String {
    if bytes >= TIB && bytes.is_multiple_of(TIB) {
        format!("{} TiB", bytes / TIB)
    } else if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{} GiB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{} MiB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{} KiB", bytes / KIB)
    } else {
        format!("{bytes} bytes")
    }
}

/// Format a byte count as a fractional MiB quantity (IOR summary columns
/// use MiB with two decimals).
#[must_use]
pub fn to_mib(bytes: u64) -> f64 {
    bytes as f64 / MIB as f64
}

/// Format a byte count as fractional GiB (IO500 reports GiB/s).
#[must_use]
pub fn to_gib(bytes: u64) -> f64 {
    bytes as f64 / GIB as f64
}

/// Bytes and a duration in nanoseconds → MiB/s.
#[must_use]
pub fn mib_per_sec(bytes: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        return 0.0;
    }
    to_mib(bytes) / (nanos as f64 / 1e9)
}

/// Bytes and a duration in nanoseconds → GiB/s.
#[must_use]
pub fn gib_per_sec(bytes: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        return 0.0;
    }
    to_gib(bytes) / (nanos as f64 / 1e9)
}

/// Operation count and a duration in nanoseconds → operations per second.
#[must_use]
pub fn ops_per_sec(ops: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        return 0.0;
    }
    ops as f64 / (nanos as f64 / 1e9)
}

/// Nanoseconds → fractional seconds (benchmark outputs report seconds).
#[must_use]
pub fn to_secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Fractional seconds → nanoseconds, saturating at `u64::MAX`.
#[must_use]
pub fn secs_to_nanos(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else if secs >= u64::MAX as f64 / 1e9 {
        u64::MAX
    } else {
        (secs * 1e9).round() as u64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_ior_sizes() {
        assert_eq!(parse_size("4m").unwrap(), 4 * MIB);
        assert_eq!(parse_size("2M").unwrap(), 2 * MIB);
        assert_eq!(parse_size("512k").unwrap(), 512 * KIB);
        assert_eq!(parse_size("1g").unwrap(), GIB);
        assert_eq!(parse_size("38").unwrap(), 38);
        assert_eq!(parse_size("16MiB").unwrap(), 16 * MIB);
        assert_eq!(parse_size(" 47008 b ").unwrap(), 47008);
        assert_eq!(parse_size("2t").unwrap(), 2 * TIB);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(parse_size("").is_err());
        assert!(parse_size("m4").is_err());
        assert!(parse_size("4x").is_err());
        assert!(parse_size("4.5m").is_err());
        assert!(parse_size("99999999999999999999g").is_err());
    }

    #[test]
    fn overflow_is_detected() {
        assert!(parse_size("18014398509481984g").is_err());
    }

    #[test]
    fn formats_round_sizes() {
        assert_eq!(format_size(4 * MIB), "4 MiB");
        assert_eq!(format_size(2 * MIB), "2 MiB");
        assert_eq!(format_size(GIB), "1 GiB");
        assert_eq!(format_size(38), "38 bytes");
        assert_eq!(format_size(1536), "1536 bytes");
        assert_eq!(format_size(3 * KIB), "3 KiB");
    }

    #[test]
    fn bandwidth_conversions() {
        // 160 MiB in 0.05 s = 3200 MiB/s.
        assert!((mib_per_sec(160 * MIB, 50_000_000) - 3200.0).abs() < 1e-9);
        assert!((gib_per_sec(GIB, 1_000_000_000) - 1.0).abs() < 1e-12);
        assert!((ops_per_sec(500, 250_000_000) - 2000.0).abs() < 1e-9);
        assert_eq!(mib_per_sec(123, 0), 0.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn parse_never_panics(text in ".{0,20}") {
                let _ = parse_size(&text);
            }

            #[test]
            fn format_parse_roundtrip(value in 1u64..1_000_000) {
                for unit in [1, KIB, MIB, GIB] {
                    let Some(bytes) = value.checked_mul(unit) else { continue };
                    let formatted = format_size(bytes).replace(' ', "");
                    prop_assert_eq!(parse_size(&formatted).unwrap(), bytes);
                }
            }

            #[test]
            fn rate_conversions_are_consistent(bytes in 1u64..1u64 << 40, nanos in 1u64..1u64 << 40) {
                let mib = mib_per_sec(bytes, nanos);
                let gib = gib_per_sec(bytes, nanos);
                prop_assert!((mib / 1024.0 - gib).abs() <= gib.abs() * 1e-9 + 1e-12);
            }
        }
    }

    #[test]
    fn seconds_roundtrip() {
        assert_eq!(secs_to_nanos(1.5), 1_500_000_000);
        assert_eq!(secs_to_nanos(-1.0), 0);
        assert!((to_secs(2_500_000_000) - 2.5).abs() < 1e-12);
    }
}
