//! Plain-text table rendering.
//!
//! The knowledge explorer's CLI views (single-run viewer, comparison view,
//! IO500 viewer) and the JUBE-like result tables render through this module.

/// A simple column-aligned text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given header cells.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the column count.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a `|`-separated, `-`-underlined header, e.g.
    ///
    /// ```text
    /// access | bw(MiB/s) | ops
    /// -------+-----------+-----
    /// write  | 2850.12   | 1425
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        render_row(&mut out, &self.header, &widths);
        // Separator line.
        for (i, width) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("-+-");
            }
            for _ in 0..*width {
                out.push('-');
            }
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row, &widths);
        }
        out
    }

    /// Render as CSV (RFC 4180-style quoting of cells containing commas,
    /// quotes or newlines). Used by the store's CSV export.
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        csv_row(&mut out, &self.header);
        for row in &self.rows {
            csv_row(&mut out, row);
        }
        out
    }
}

fn render_row(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, width) in widths.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        let cell = cells.get(i).map(String::as_str).unwrap_or("");
        out.push_str(cell);
        let pad = width.saturating_sub(cell.chars().count());
        // Don't pad the final column: keeps lines trim.
        if i + 1 < widths.len() {
            for _ in 0..pad {
                out.push(' ');
            }
        }
    }
    out.push('\n');
}

fn csv_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Parse a CSV document produced by [`TextTable::render_csv`] (or any
/// RFC 4180 CSV) back into rows of cells.
#[must_use]
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => cell.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                c => cell.push(c),
            }
        }
    }
    if saw_any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["access", "bw(MiB/s)"]);
        t.push_row(vec!["write", "2850.12"]);
        t.push_row(vec!["read", "3109.9"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "access | bw(MiB/s)");
        assert_eq!(lines[1], "-------+----------");
        assert_eq!(lines[2], "write  | 2850.12");
        assert_eq!(lines[3], "read   | 3109.9");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.push_row(vec!["1"]);
        let rendered = t.render();
        assert!(rendered.lines().nth(2).unwrap().starts_with("1 | "));
    }

    #[test]
    fn csv_quoting_roundtrip() {
        let mut t = TextTable::new(vec!["cmd", "note"]);
        t.push_row(vec!["ior -a mpiio, -b 4m", "say \"hi\"\nbye"]);
        let csv = t.render_csv();
        let rows = parse_csv(&csv);
        assert_eq!(rows[0], vec!["cmd", "note"]);
        assert_eq!(rows[1][0], "ior -a mpiio, -b 4m");
        assert_eq!(rows[1][1], "say \"hi\"\nbye");
    }

    #[test]
    fn parse_csv_handles_missing_trailing_newline() {
        let rows = parse_csv("a,b\n1,2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
        assert!(parse_csv("").is_empty());
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.push_row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}
