//! Shared utilities for the `iokc` workspace.
//!
//! This crate deliberately reimplements small pieces of infrastructure that
//! a Python prototype would pull from its standard library or PyPI:
//!
//! * [`json`] — a self-contained JSON value model, parser and writer, used
//!   for knowledge-object interchange and the store's export format.
//! * [`pattern`] — a scanf-style pattern matcher used by the JUBE-like
//!   sweep engine and the knowledge extractor to pull metrics out of
//!   benchmark output without a regex dependency.
//! * [`units`] — byte-size and rate parsing/formatting (`4m`, `2m`,
//!   `MiB/s`) compatible with IOR's option grammar.
//! * [`table`] — plain-text table rendering for CLI views of the
//!   knowledge explorer.
//! * [`stats`] — small numeric helpers shared by the simulator and the
//!   analysis crate (mean/geomean/percentiles on `f64` slices).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod json;
pub mod pattern;
pub mod stats;
pub mod table;
pub mod units;

/// Round a floating point value to `digits` decimal digits.
///
/// Used when emitting benchmark output in the fixed-precision textual
/// formats of IOR/IO500 so that parsing the output back reproduces the
/// stored values exactly.
#[must_use]
pub fn round_to(value: f64, digits: u32) -> f64 {
    let factor = 10f64.powi(digits as i32);
    (value * factor).round() / factor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_to_truncates_noise() {
        assert_eq!(round_to(2850.123456, 2), 2850.12);
        assert_eq!(round_to(0.006, 2), 0.01);
        assert_eq!(round_to(-1.2341, 3), -1.234);
    }

    #[test]
    fn round_to_zero_digits() {
        assert_eq!(round_to(2.6, 0), 3.0);
    }
}
