//! A self-contained JSON implementation.
//!
//! The knowledge cycle exchanges *knowledge objects* between phases and, in
//! the paper's prototype, between machines (generation on the cluster,
//! analysis on a workstation). JSON is the interchange format. Rather than
//! pulling in `serde`, this module implements the small subset of JSON the
//! workspace needs: a value model, a recursive-descent parser and a writer
//! with stable key ordering (so serialized knowledge is diffable and
//! reproducible).

use std::collections::BTreeMap;
use std::fmt;
use std::io;

/// A JSON value.
///
/// Objects use a [`BTreeMap`] so that serialization order is deterministic,
/// which keeps exported knowledge objects byte-stable across runs — a
/// property the paper's reproducibility goal depends on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number; stored as `f64` like the reference Python prototype.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Borrow the value at `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Borrow the element at `index` if this is an array of sufficient length.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The numeric payload, if this value is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this value is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this value is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        // Writing into a String cannot fail.
        let _ = self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        let _ = self.write(&mut out, Some(2), 0);
        out
    }

    /// Serialize compactly into any [`fmt::Write`] target.
    pub fn write_compact<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        self.write(out, None, 0)
    }

    /// Serialize compactly into any [`io::Write`] target without
    /// materializing the document as an intermediate `String` — the
    /// streaming entry point large responses are built on.
    pub fn write_compact_io<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        let mut adapter = FmtToIo {
            inner: out,
            error: None,
        };
        match self.write(&mut adapter, None, 0) {
            Ok(()) => Ok(()),
            Err(_) => Err(adapter
                .error
                .unwrap_or_else(|| io::Error::other("formatting failed"))),
        }
    }

    fn write<W: fmt::Write>(
        &self,
        out: &mut W,
        indent: Option<usize>,
        depth: usize,
    ) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null")?,
            Json::Bool(true) => out.write_str("true")?,
            Json::Bool(false) => out.write_str("false")?,
            Json::Num(n) => write_number(out, *n)?,
            Json::Str(s) => write_escaped(out, s)?,
            Json::Arr(items) => {
                if items.is_empty() {
                    return out.write_str("[]");
                }
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    newline_indent(out, indent, depth + 1)?;
                    item.write(out, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth)?;
                out.write_char(']')?;
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    return out.write_str("{}");
                }
                out.write_char('{')?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    newline_indent(out, indent, depth + 1)?;
                    write_escaped(out, key)?;
                    out.write_char(':')?;
                    if indent.is_some() {
                        out.write_char(' ')?;
                    }
                    value.write(out, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth)?;
                out.write_char('}')?;
            }
        }
        Ok(())
    }
}

/// Bridge [`fmt::Write`] onto an [`io::Write`], parking the first I/O
/// error so the caller can surface it instead of the opaque `fmt::Error`.
struct FmtToIo<'a, W: io::Write> {
    inner: &'a mut W,
    error: Option<io::Error>,
}

impl<W: io::Write> fmt::Write for FmtToIo<'_, W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            fmt::Error
        })
    }
}

/// An incremental JSON array serializer over an [`io::Write`].
///
/// `/api/runs`-style responses can hold thousands of elements; this
/// writer emits `[`, a comma-separated element per [`ArrayWriter::push`],
/// and `]` on [`ArrayWriter::finish`] — each element is serialized
/// straight into the sink, so the whole body never exists as one
/// `String` in memory.
#[derive(Debug)]
pub struct ArrayWriter<W: io::Write> {
    out: W,
    elements: usize,
}

impl<W: io::Write> ArrayWriter<W> {
    /// Open the array (writes `[`).
    pub fn new(mut out: W) -> io::Result<ArrayWriter<W>> {
        out.write_all(b"[")?;
        Ok(ArrayWriter { out, elements: 0 })
    }

    /// Append one element.
    pub fn push(&mut self, value: &Json) -> io::Result<()> {
        if self.elements > 0 {
            self.out.write_all(b",")?;
        }
        self.elements += 1;
        value.write_compact_io(&mut self.out)
    }

    /// Elements written so far.
    #[must_use]
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Close the array (writes `]`) and hand the sink back.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(b"]")?;
        Ok(self.out)
    }
}

fn newline_indent<W: fmt::Write>(out: &mut W, indent: Option<usize>, depth: usize) -> fmt::Result {
    if let Some(width) = indent {
        out.write_char('\n')?;
        for _ in 0..width * depth {
            out.write_char(' ')?;
        }
    }
    Ok(())
}

fn write_number<W: fmt::Write>(out: &mut W, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the knowledge model never produces them, but
        // be defensive instead of emitting invalid documents.
        out.write_str("null")
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        write!(out, "{}", n as i64)
    } else {
        write!(out, "{n}")
    }
}

fn write_escaped<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. The entire input must be consumed (trailing
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek();
        if byte.is_some() {
            self.pos += 1;
        }
        byte
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Handle surrogate pairs for completeness.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_nested() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().at(2).unwrap().get("b"),
            Some(&Json::Null)
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parse_unicode_escape() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn roundtrip_compact() {
        let doc = r#"{"bw":2850.12,"iters":[1,2,3],"name":"ior","ok":true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.to_compact(), doc);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = Json::obj(vec![
            ("metrics", Json::from(vec![1.5f64, 2.5])),
            ("name", Json::from("test")),
        ]);
        let pretty = v.to_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn object_keys_are_sorted() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(80.0).to_compact(), "80");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_json() -> impl Strategy<Value = Json> {
            let leaf = prop_oneof![
                Just(Json::Null),
                any::<bool>().prop_map(Json::Bool),
                (-1e12f64..1e12).prop_map(Json::Num),
                "[a-zA-Z0-9 _\\\"\n\té😀-]{0,12}".prop_map(Json::Str),
            ];
            leaf.prop_recursive(3, 24, 4, |inner| {
                prop_oneof![
                    proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
                    proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Json::Obj),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn arbitrary_values_roundtrip(value in arb_json()) {
                let compact = value.to_compact();
                prop_assert_eq!(&parse(&compact).unwrap(), &value);
                let pretty = value.to_pretty();
                prop_assert_eq!(&parse(&pretty).unwrap(), &value);
            }

            #[test]
            fn parser_never_panics(text in ".{0,80}") {
                let _ = parse(&text);
            }
        }
    }

    #[test]
    fn streaming_array_matches_batch_serialization() {
        let items = vec![
            Json::obj(vec![("id", Json::from(1u64)), ("bw", Json::from(2850.5))]),
            Json::obj(vec![("id", Json::from(2u64)), ("cmd", Json::from("ior"))]),
            Json::Null,
        ];
        let mut sink = Vec::new();
        let mut writer = ArrayWriter::new(&mut sink).unwrap();
        for item in &items {
            writer.push(item).unwrap();
        }
        assert_eq!(writer.elements(), 3);
        writer.finish().unwrap();
        let streamed = String::from_utf8(sink).unwrap();
        assert_eq!(streamed, Json::Arr(items).to_compact());

        let mut empty = Vec::new();
        ArrayWriter::new(&mut empty).unwrap().finish().unwrap();
        assert_eq!(empty, b"[]");
    }

    #[test]
    fn write_compact_io_matches_to_compact() {
        let v = parse(r#"{"a":[1,2.5,"x\ny"],"b":null,"c":true}"#).unwrap();
        let mut sink = Vec::new();
        v.write_compact_io(&mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), v.to_compact());
    }

    #[test]
    fn write_compact_io_surfaces_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = Json::from("payload")
            .write_compact_io(&mut Broken)
            .unwrap_err();
        assert_eq!(err.to_string(), "sink closed");
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\u{0001}b".into());
        assert_eq!(v.to_compact(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }
}
