//! A self-contained JSON implementation.
//!
//! The knowledge cycle exchanges *knowledge objects* between phases and, in
//! the paper's prototype, between machines (generation on the cluster,
//! analysis on a workstation). JSON is the interchange format. Rather than
//! pulling in `serde`, this module implements the small subset of JSON the
//! workspace needs: a value model, a recursive-descent parser and a writer
//! with stable key ordering (so serialized knowledge is diffable and
//! reproducible).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Objects use a [`BTreeMap`] so that serialization order is deterministic,
/// which keeps exported knowledge objects byte-stable across runs — a
/// property the paper's reproducibility goal depends on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number; stored as `f64` like the reference Python prototype.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Borrow the value at `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Borrow the element at `index` if this is an array of sufficient length.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The numeric payload, if this value is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this value is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this value is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the knowledge model never produces them, but
        // be defensive instead of emitting invalid documents.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. The entire input must be consumed (trailing
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek();
        if byte.is_some() {
            self.pos += 1;
        }
        byte
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Handle surrogate pairs for completeness.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_nested() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().at(2).unwrap().get("b"),
            Some(&Json::Null)
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parse_unicode_escape() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn roundtrip_compact() {
        let doc = r#"{"bw":2850.12,"iters":[1,2,3],"name":"ior","ok":true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.to_compact(), doc);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = Json::obj(vec![
            ("metrics", Json::from(vec![1.5f64, 2.5])),
            ("name", Json::from("test")),
        ]);
        let pretty = v.to_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn object_keys_are_sorted() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(80.0).to_compact(), "80");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_json() -> impl Strategy<Value = Json> {
            let leaf = prop_oneof![
                Just(Json::Null),
                any::<bool>().prop_map(Json::Bool),
                (-1e12f64..1e12).prop_map(Json::Num),
                "[a-zA-Z0-9 _\\\"\n\té😀-]{0,12}".prop_map(Json::Str),
            ];
            leaf.prop_recursive(3, 24, 4, |inner| {
                prop_oneof![
                    proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
                    proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Json::Obj),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn arbitrary_values_roundtrip(value in arb_json()) {
                let compact = value.to_compact();
                prop_assert_eq!(&parse(&compact).unwrap(), &value);
                let pretty = value.to_pretty();
                prop_assert_eq!(&parse(&pretty).unwrap(), &value);
            }

            #[test]
            fn parser_never_panics(text in ".{0,80}") {
                let _ = parse(&text);
            }
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\u{0001}b".into());
        assert_eq!(v.to_compact(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }
}
