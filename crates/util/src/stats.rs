//! Small numeric helpers shared across the workspace.
//!
//! The analysis crate builds richer descriptive statistics on top of these;
//! the benchmark drivers use [`geometric_mean`] for IO500 scoring and the
//! simulator uses [`mean`]/[`max`] when summarising per-rank timings.

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; `0.0` for fewer than two samples.
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Minimum; `0.0` for an empty slice.
#[must_use]
pub fn min(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min_finite()
}

/// Maximum; `0.0` for an empty slice.
#[must_use]
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max_finite()
}

trait Finite {
    fn min_finite(self) -> f64;
    fn max_finite(self) -> f64;
}

impl Finite for f64 {
    fn min_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Geometric mean of strictly positive values, as used by IO500 scoring.
/// Returns `0.0` if the slice is empty or contains a non-positive value
/// (matching IO500's treatment of invalid phases).
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Linear-interpolated percentile (`q` in `[0, 1]`) of an unsorted slice.
/// Returns `0.0` for an empty slice.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in metric values"));
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((stddev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn min_max() {
        let v = [3.0, -1.0, 7.5];
        assert_eq!(min(&v), -1.0);
        assert_eq!(max(&v), 7.5);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 0.25) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
