//! Small numeric helpers shared across the workspace.
//!
//! The analysis crate builds richer descriptive statistics on top of these;
//! the benchmark drivers use [`geometric_mean`] for IO500 scoring and the
//! simulator uses [`mean`]/[`max`] when summarising per-rank timings.

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; `0.0` for fewer than two samples.
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Minimum; `0.0` for an empty slice.
#[must_use]
pub fn min(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min_finite()
}

/// Maximum; `0.0` for an empty slice.
#[must_use]
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max_finite()
}

trait Finite {
    fn min_finite(self) -> f64;
    fn max_finite(self) -> f64;
}

impl Finite for f64 {
    fn min_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Geometric mean of strictly positive values, as used by IO500 scoring.
/// Returns `0.0` if the slice is empty or contains a non-positive value
/// (matching IO500's treatment of invalid phases).
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Sort a copy of `values` ascending (NaN-free metric values).
#[must_use]
pub fn sorted_copy(values: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted
}

/// The canonical linear-interpolated percentile over an
/// *already-sorted* ascending slice (`q` in `[0, 1]`, clamped). This is
/// the one implementation every percentile in the workspace lowers onto
/// — [`percentile`], [`percentiles`], the analysis box-plot summaries
/// and the store's aggregation engine — so "p50" means the same number
/// everywhere. Returns `0.0` for an empty slice.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// The nearest-rank percentile over an already-sorted ascending slice:
/// the smallest value with at least `⌈q·n⌉` samples at or below it (the
/// classic textbook definition, exact-sample rather than interpolated).
/// Returns `0.0` for an empty slice.
#[must_use]
pub fn nearest_rank_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Linear-interpolated percentile (`q` in `[0, 1]`) of an unsorted slice.
/// Returns `0.0` for an empty slice.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    percentile_sorted(&sorted_copy(values), q)
}

/// Several linear-interpolated percentiles of an unsorted slice with a
/// single sort — the multi-quantile form the box-plot and aggregation
/// paths use. Returns one value per requested `q`, in request order.
#[must_use]
pub fn percentiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    let sorted = sorted_copy(values);
    qs.iter().map(|q| percentile_sorted(&sorted, *q)).collect()
}

/// Median (50th percentile).
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((stddev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn min_max() {
        let v = [3.0, -1.0, 7.5];
        assert_eq!(min(&v), -1.0);
        assert_eq!(max(&v), 7.5);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 0.25) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn interpolated_percentiles_pin_exact_values() {
        // Regression pin: these exact values are what every consumer of
        // the canonical implementation (Describe::of, store::aggregate)
        // must reproduce. Unsorted on purpose.
        let v = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 0.25), 3.0);
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(percentile(&v, 0.75), 7.0);
        assert!((percentile(&v, 0.10) - 1.8) < 1e-12);
        assert!((percentile(&v, 0.90) - 8.2).abs() < 1e-12);
        assert!((percentile(&v, 0.99) - 8.92).abs() < 1e-12);
        // Multi-quantile form agrees with the one-shot form exactly.
        assert_eq!(
            percentiles(&v, &[0.1, 0.25, 0.5, 0.75, 0.9]),
            vec![
                percentile(&v, 0.1),
                percentile(&v, 0.25),
                percentile(&v, 0.5),
                percentile(&v, 0.75),
                percentile(&v, 0.9)
            ]
        );
        // Out-of-range quantiles clamp.
        assert_eq!(percentile(&v, -1.0), 1.0);
        assert_eq!(percentile(&v, 2.0), 9.0);
    }

    #[test]
    fn nearest_rank_pins_exact_samples() {
        let sorted = [15.0, 20.0, 35.0, 40.0, 50.0];
        // Classic textbook vector: p30 = 20, p40 = 20, p50 = 35, p100 = 50.
        assert_eq!(nearest_rank_sorted(&sorted, 0.30), 20.0);
        assert_eq!(nearest_rank_sorted(&sorted, 0.40), 20.0);
        assert_eq!(nearest_rank_sorted(&sorted, 0.50), 35.0);
        assert_eq!(nearest_rank_sorted(&sorted, 1.00), 50.0);
        assert_eq!(nearest_rank_sorted(&sorted, 0.0), 15.0);
        assert_eq!(nearest_rank_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn sorted_variant_matches_unsorted_entry_point() {
        let v = [4.0, 1.0, 3.0, 2.0];
        let sorted = sorted_copy(&v);
        for q in [0.0, 0.1, 0.33, 0.5, 0.66, 0.9, 1.0] {
            assert_eq!(percentile(&v, q), percentile_sorted(&sorted, q));
        }
    }
}
