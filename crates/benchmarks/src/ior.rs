//! A reimplementation of the IOR parallel I/O benchmark.
//!
//! Covers the option surface the paper's experiments use — §V-E1 runs
//! `ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o <file> -k` — plus the
//! pieces IO500 needs (POSIX API, unaligned transfers, shared files,
//! read-only/write-only phases). The driver compiles each iteration into
//! rank scripts for [`iokc_sim`], executes them, and reports per-iteration
//! results in IOR's native output format (see [`crate::ior_output`]).

use crate::ior_output::{render_output, IorSample};
use iokc_sim::api::{
    close_file, collective_xfer, independent_xfer, open_file, CollectiveRound, IoApi,
};
use iokc_sim::engine::{JobLayout, SimError, World};
use iokc_sim::metrics::PhaseResult;
use iokc_sim::rng::Rng;
use iokc_sim::script::{OpKind, OpenMode, ScriptSet, StripeHint};
use std::fmt;

/// Access direction of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Write phase.
    Write,
    /// Read phase.
    Read,
}

impl Access {
    /// Lowercase name used in output rows.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Access::Write => "write",
            Access::Read => "read",
        }
    }
}

/// Parsed IOR configuration (a subset of the real tool's ~80 options,
/// chosen to cover the paper and IO500).
#[derive(Debug, Clone, PartialEq)]
pub struct IorConfig {
    /// `-a`: I/O interface.
    pub api: IoApi,
    /// `-b`: per-task block size per segment, bytes.
    pub block_size: u64,
    /// `-t`: transfer size, bytes.
    pub transfer_size: u64,
    /// `-s`: number of segments.
    pub segments: u64,
    /// `-F`: one file per task.
    pub file_per_proc: bool,
    /// `-C`: reorder tasks: read data written by a different node.
    pub reorder_tasks: bool,
    /// `-e`: fsync after each write phase.
    pub fsync: bool,
    /// `-i`: repetition count.
    pub iterations: u32,
    /// `-o`: test file path.
    pub test_file: String,
    /// `-k`: keep the test files after the run.
    pub keep_file: bool,
    /// `-w`: write phase enabled (both default on when neither given).
    pub write: bool,
    /// `-r`: read phase enabled.
    pub read: bool,
    /// `-c`: collective (two-phase) MPI-IO transfers.
    pub collective: bool,
    /// `-z`: random (shuffled) intra-rank access ordering.
    pub random_offsets: bool,
    /// `-D`: stonewall deadline in seconds (0 = off). Ranks stop issuing
    /// transfers once a phase has run this long; IO500 runs IOR this way.
    pub deadline_secs: u32,
    /// Stripe hint passed at create time (IOR's `--posix.odirect`-style
    /// extras are out of scope; striping is the tunable the paper's
    /// recommendation module targets).
    pub stripe: StripeHint,
}

impl Default for IorConfig {
    fn default() -> IorConfig {
        IorConfig {
            api: IoApi::Posix,
            block_size: 1 << 20,
            transfer_size: 256 << 10,
            segments: 1,
            file_per_proc: false,
            reorder_tasks: false,
            fsync: false,
            iterations: 1,
            test_file: "/scratch/testFile".to_owned(),
            keep_file: false,
            write: true,
            read: true,
            collective: false,
            random_offsets: false,
            deadline_secs: 0,
            stripe: StripeHint::default(),
        }
    }
}

/// Error parsing an IOR command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IorParseError(pub String);

impl fmt::Display for IorParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ior command: {}", self.0)
    }
}

impl std::error::Error for IorParseError {}

impl IorConfig {
    /// Parse an `ior …` command line (the paper's §V-E1 syntax). The
    /// leading `ior` token is optional. Unicode en-dashes (as they appear
    /// in the paper's PDF text) are accepted as `-`.
    pub fn parse_command(command: &str) -> Result<IorConfig, IorParseError> {
        let normalized = command.replace('\u{2013}', "-").replace('\u{2014}', "--");
        let tokens: Vec<&str> = normalized.split_whitespace().collect();
        let mut cfg = IorConfig::default();
        let mut explicit_rw = false;
        let mut pending_write = false;
        let mut pending_read = false;
        let mut i = 0;
        if tokens.first().copied() == Some("ior") {
            i = 1;
        }
        let value = |i: &mut usize, flag: &str| -> Result<String, IorParseError> {
            *i += 1;
            tokens
                .get(*i)
                .map(|s| (*s).to_owned())
                .ok_or_else(|| IorParseError(format!("missing value for {flag}")))
        };
        while i < tokens.len() {
            match tokens[i] {
                "-a" => {
                    let v = value(&mut i, "-a")?;
                    cfg.api = IoApi::parse(&v)
                        .ok_or_else(|| IorParseError(format!("unknown api {v}")))?;
                }
                "-b" => {
                    let v = value(&mut i, "-b")?;
                    cfg.block_size = iokc_util::units::parse_size(&v)
                        .map_err(|e| IorParseError(e.to_string()))?;
                }
                "-t" => {
                    let v = value(&mut i, "-t")?;
                    cfg.transfer_size = iokc_util::units::parse_size(&v)
                        .map_err(|e| IorParseError(e.to_string()))?;
                }
                "-s" => {
                    let v = value(&mut i, "-s")?;
                    cfg.segments = v
                        .parse()
                        .map_err(|_| IorParseError(format!("bad segment count {v}")))?;
                }
                "-i" => {
                    let v = value(&mut i, "-i")?;
                    cfg.iterations = v
                        .parse()
                        .map_err(|_| IorParseError(format!("bad iteration count {v}")))?;
                }
                "-o" => {
                    cfg.test_file = value(&mut i, "-o")?;
                }
                "-D" => {
                    let v = value(&mut i, "-D")?;
                    cfg.deadline_secs = v
                        .parse()
                        .map_err(|_| IorParseError(format!("bad deadline {v}")))?;
                }
                "-F" => cfg.file_per_proc = true,
                "-C" => cfg.reorder_tasks = true,
                "-e" => cfg.fsync = true,
                "-k" => cfg.keep_file = true,
                "-c" => cfg.collective = true,
                "-z" => cfg.random_offsets = true,
                "-w" => {
                    explicit_rw = true;
                    pending_write = true;
                }
                "-r" => {
                    explicit_rw = true;
                    pending_read = true;
                }
                other => {
                    return Err(IorParseError(format!("unknown option {other}")));
                }
            }
            i += 1;
        }
        if explicit_rw {
            cfg.write = pending_write;
            cfg.read = pending_read;
        }
        if cfg.block_size == 0 || cfg.transfer_size == 0 {
            return Err(IorParseError(
                "block and transfer size must be non-zero".into(),
            ));
        }
        if cfg.block_size % cfg.transfer_size != 0 {
            return Err(IorParseError(format!(
                "block size {} not a multiple of transfer size {}",
                cfg.block_size, cfg.transfer_size
            )));
        }
        if cfg.iterations == 0 || cfg.segments == 0 {
            return Err(IorParseError(
                "iterations and segments must be non-zero".into(),
            ));
        }
        cfg.api = cfg.api.with_collective(cfg.collective);
        Ok(cfg)
    }

    /// Render the configuration back into a canonical command line (used
    /// by the usage phase's "create configuration" feature).
    #[must_use]
    pub fn to_command(&self) -> String {
        let mut out = format!(
            "ior -a {} -b {} -t {} -s {}",
            self.api.as_str().to_ascii_lowercase(),
            render_size(self.block_size),
            render_size(self.transfer_size),
            self.segments
        );
        if self.file_per_proc {
            out.push_str(" -F");
        }
        if self.reorder_tasks {
            out.push_str(" -C");
        }
        if self.fsync {
            out.push_str(" -e");
        }
        if self.collective {
            out.push_str(" -c");
        }
        if self.random_offsets {
            out.push_str(" -z");
        }
        if self.deadline_secs > 0 {
            out.push_str(&format!(" -D {}", self.deadline_secs));
        }
        out.push_str(&format!(" -i {}", self.iterations));
        out.push_str(&format!(" -o {}", self.test_file));
        if self.keep_file {
            out.push_str(" -k");
        }
        match (self.write, self.read) {
            (true, true) => {}
            (true, false) => out.push_str(" -w"),
            (false, true) => out.push_str(" -r"),
            (false, false) => {}
        }
        out
    }

    /// Per-rank bytes per iteration.
    #[must_use]
    pub fn bytes_per_rank(&self) -> u64 {
        self.block_size * self.segments
    }

    /// Aggregate bytes per iteration for `np` ranks.
    #[must_use]
    pub fn aggregate_bytes(&self, np: u32) -> u64 {
        self.bytes_per_rank() * u64::from(np)
    }

    /// The file a rank accesses (rank-suffixed under `-F`).
    #[must_use]
    pub fn file_for(&self, rank: u32) -> String {
        if self.file_per_proc {
            format!("{}.{:08}", self.test_file, rank)
        } else {
            self.test_file.clone()
        }
    }
}

fn render_size(bytes: u64) -> String {
    const MIB: u64 = 1 << 20;
    const KIB: u64 = 1 << 10;
    const GIB: u64 = 1 << 30;
    if bytes.is_multiple_of(GIB) {
        format!("{}g", bytes / GIB)
    } else if bytes.is_multiple_of(MIB) {
        format!("{}m", bytes / MIB)
    } else if bytes.is_multiple_of(KIB) {
        format!("{}k", bytes / KIB)
    } else {
        format!("{bytes}")
    }
}

/// Result of a full IOR run.
#[derive(Debug, Clone)]
pub struct IorRunResult {
    /// The configuration executed.
    pub config: IorConfig,
    /// Rank count.
    pub np: u32,
    /// Ranks per node.
    pub ppn: u32,
    /// One sample per (iteration, access) in execution order.
    pub samples: Vec<IorSample>,
    /// The raw phase results (for Darshan instrumentation).
    pub phases: Vec<(Access, u32, PhaseResult)>,
}

impl IorRunResult {
    /// Samples of one access direction.
    pub fn samples_of(&self, access: Access) -> impl Iterator<Item = &IorSample> + '_ {
        self.samples.iter().filter(move |s| s.access == access)
    }

    /// Max bandwidth over iterations for an access direction, MiB/s.
    #[must_use]
    pub fn max_bw(&self, access: Access) -> f64 {
        self.samples_of(access)
            .map(|s| s.bw_mib)
            .fold(0.0, f64::max)
    }

    /// Mean bandwidth over iterations for an access direction, MiB/s.
    #[must_use]
    pub fn mean_bw(&self, access: Access) -> f64 {
        let values: Vec<f64> = self.samples_of(access).map(|s| s.bw_mib).collect();
        iokc_util::stats::mean(&values)
    }

    /// Render the run in IOR's output format.
    #[must_use]
    pub fn render(&self) -> String {
        render_output(self)
    }
}

/// Execute an IOR configuration against a world.
///
/// `seed` feeds only benchmark-local randomness (`-z` shuffling); system
/// randomness comes from the world's own RNG.
pub fn run_ior(
    world: &mut World,
    layout: JobLayout,
    config: &IorConfig,
    seed: u64,
) -> Result<IorRunResult, SimError> {
    let mut rng = Rng::seed_from(seed ^ 0x1092_80ff);
    let mut samples = Vec::new();
    let mut phases = Vec::new();
    for iter in 0..config.iterations {
        if config.write {
            let scripts = build_phase(config, layout, Access::Write, &mut rng);
            let result = world.run(layout, &scripts)?;
            samples.push(sample_from(config, layout, Access::Write, iter, &result));
            phases.push((Access::Write, iter, result));
        }
        if config.read {
            let scripts = build_phase(config, layout, Access::Read, &mut rng);
            let result = world.run(layout, &scripts)?;
            samples.push(sample_from(config, layout, Access::Read, iter, &result));
            phases.push((Access::Read, iter, result));
        }
        if !config.keep_file && iter + 1 == config.iterations {
            // Remove test files at the end of the run (rank 0 cleans up).
            let mut cleanup = ScriptSet::new(layout.np);
            if config.file_per_proc {
                for rank in 0..layout.np {
                    let file = config.file_for(rank);
                    cleanup.rank(rank).unlink(&file);
                }
            } else {
                cleanup.rank(0).unlink(&config.test_file);
            }
            world.run(layout, &cleanup)?;
        }
    }
    Ok(IorRunResult {
        config: config.clone(),
        np: layout.np,
        ppn: layout.ppn,
        samples,
        phases,
    })
}

/// The rank whose data rank `r` accesses during a read phase.
fn read_peer(config: &IorConfig, layout: JobLayout, rank: u32) -> u32 {
    if config.reorder_tasks {
        // reorderTasksConstant: shift by one node's worth of tasks, so a
        // rank never reads what its own node cached.
        (rank + layout.ppn) % layout.np
    } else {
        rank
    }
}

/// Offset of (segment, transfer) for `rank` in its file.
fn xfer_offset(config: &IorConfig, np: u32, rank: u32, segment: u64, xfer: u64) -> u64 {
    let within_block = xfer * config.transfer_size;
    if config.file_per_proc {
        segment * config.block_size + within_block
    } else {
        // Segmented shared layout: segment s holds one block per rank.
        (segment * u64::from(np) + u64::from(rank)) * config.block_size + within_block
    }
}

fn build_phase(config: &IorConfig, layout: JobLayout, access: Access, rng: &mut Rng) -> ScriptSet {
    let np = layout.np;
    let mut set = ScriptSet::new(np);
    if config.deadline_secs > 0 {
        set.set_stonewall(iokc_sim::time::SimDuration::from_secs(u64::from(
            config.deadline_secs,
        )));
    }
    let xfers_per_block = config.block_size / config.transfer_size;
    let is_write = access == Access::Write;
    let mode = if is_write {
        OpenMode::Write
    } else {
        OpenMode::Read
    };

    // Open (collective APIs synchronize on open).
    for rank in 0..np {
        let data_rank = if is_write {
            rank
        } else {
            read_peer(config, layout, rank)
        };
        let file = config.file_for(data_rank);
        open_file(config.api, &mut set.rank(rank), &file, mode, config.stripe);
    }
    for rank in 0..np {
        set.rank(rank).barrier();
    }

    if config.api.is_collective() && !config.file_per_proc {
        // Two-phase collective rounds over the shared file: one round per
        // (segment, transfer) step; every rank contributes one piece.
        let mut tag = 1u32;
        for segment in 0..config.segments {
            for x in 0..xfers_per_block {
                let offsets: Vec<u64> = (0..np)
                    .map(|rank| {
                        let data_rank = if is_write {
                            rank
                        } else {
                            read_peer(config, layout, rank)
                        };
                        xfer_offset(config, np, data_rank, segment, x)
                    })
                    .collect();
                collective_xfer(
                    config.api,
                    &mut set,
                    &CollectiveRound {
                        path: &config.test_file,
                        offsets: &offsets,
                        len: config.transfer_size,
                        is_write,
                        ppn: layout.ppn,
                        tag: tag * (np + 1),
                    },
                );
                tag += 1;
            }
        }
    } else {
        for rank in 0..np {
            let data_rank = if is_write {
                rank
            } else {
                read_peer(config, layout, rank)
            };
            let file = config.file_for(data_rank);
            let mut accesses: Vec<u64> =
                Vec::with_capacity((config.segments * xfers_per_block) as usize);
            for segment in 0..config.segments {
                for x in 0..xfers_per_block {
                    accesses.push(xfer_offset(config, np, data_rank, segment, x));
                }
            }
            if config.random_offsets {
                rng.shuffle(&mut accesses);
            }
            let mut rs = set.rank(rank);
            for offset in accesses {
                independent_xfer(
                    config.api,
                    &mut rs,
                    &file,
                    offset,
                    config.transfer_size,
                    is_write,
                );
            }
        }
    }

    // fsync (write phases with -e), close, final barrier.
    for rank in 0..np {
        let data_rank = if is_write {
            rank
        } else {
            read_peer(config, layout, rank)
        };
        let file = config.file_for(data_rank);
        if is_write && config.fsync {
            set.rank(rank).fsync(&file);
        }
        close_file(config.api, &mut set.rank(rank), &file);
        set.rank(rank).barrier();
    }
    set
}

fn sample_from(
    config: &IorConfig,
    layout: JobLayout,
    access: Access,
    iter: u32,
    result: &PhaseResult,
) -> IorSample {
    let kind = match access {
        Access::Write => OpKind::Write,
        Access::Read => OpKind::Read,
    };
    let total_s = result.wall().as_secs_f64();
    // Under stonewalling fewer bytes move than configured; report what
    // actually happened (IOR prints the stonewalled byte count).
    let bytes = if result.stonewalled_ops > 0 {
        result.bytes(kind)
    } else {
        config.aggregate_bytes(layout.np)
    };
    let ops = result.ops(kind);
    let wrrd_s = result.span_secs(kind);
    let latencies = result.latencies_secs(kind);
    IorSample {
        access,
        bw_mib: if total_s > 0.0 {
            iokc_util::units::to_mib(bytes) / total_s
        } else {
            0.0
        },
        iops: if wrrd_s > 0.0 {
            ops as f64 / wrrd_s
        } else {
            0.0
        },
        latency_s: iokc_util::stats::mean(&latencies),
        block_kib: config.block_size / 1024,
        xfer_kib: config.transfer_size / 1024,
        open_s: result.span_secs(OpKind::Open),
        wrrd_s,
        close_s: result.span_secs(OpKind::Close),
        total_s,
        iter,
        ops,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::SystemConfig;
    use iokc_sim::faults::FaultPlan;
    use iokc_util::units::MIB;

    #[test]
    fn parses_the_papers_command() {
        let cfg = IorConfig::parse_command(
            "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k",
        )
        .unwrap();
        assert_eq!(cfg.api, IoApi::MpiIo { collective: false });
        assert_eq!(cfg.block_size, 4 * MIB);
        assert_eq!(cfg.transfer_size, 2 * MIB);
        assert_eq!(cfg.segments, 40);
        assert!(cfg.file_per_proc && cfg.reorder_tasks && cfg.fsync && cfg.keep_file);
        assert_eq!(cfg.iterations, 6);
        assert_eq!(cfg.test_file, "/scratch/fuchs/zhuz/test80");
        assert!(cfg.write && cfg.read, "neither -w nor -r means both");
    }

    #[test]
    fn parses_en_dashes_from_pdf_text() {
        let cfg =
            IorConfig::parse_command("ior \u{2013}a mpiio \u{2013}b 4m \u{2013}t 2m \u{2013}s 40")
                .unwrap();
        assert_eq!(cfg.segments, 40);
    }

    #[test]
    fn command_roundtrip() {
        let original = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/t -k";
        let cfg = IorConfig::parse_command(original).unwrap();
        let rendered = cfg.to_command();
        let reparsed = IorConfig::parse_command(&rendered).unwrap();
        assert_eq!(cfg, reparsed);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(IorConfig::parse_command("ior -a netcdf").is_err());
        assert!(IorConfig::parse_command("ior -b").is_err());
        assert!(IorConfig::parse_command("ior -b 3m -t 2m").is_err());
        assert!(IorConfig::parse_command("ior -q").is_err());
        assert!(IorConfig::parse_command("ior -i 0").is_err());
    }

    #[test]
    fn write_only_and_read_only() {
        let w = IorConfig::parse_command("ior -w -o /scratch/x").unwrap();
        assert!(w.write && !w.read);
        let r = IorConfig::parse_command("ior -r -o /scratch/x").unwrap();
        assert!(!r.write && r.read);
    }

    fn small_world() -> World {
        World::new(SystemConfig::test_small(), FaultPlan::none(), 11)
    }

    #[test]
    fn runs_file_per_process() {
        let mut world = small_world();
        let cfg =
            IorConfig::parse_command("ior -a posix -b 1m -t 256k -s 2 -F -i 2 -o /scratch/fp -k")
                .unwrap();
        let result = run_ior(&mut world, JobLayout::new(4, 2), &cfg, 1).unwrap();
        // 2 iterations × (write + read).
        assert_eq!(result.samples.len(), 4);
        for s in &result.samples {
            assert!(s.bw_mib > 0.0, "sample has zero bandwidth: {s:?}");
            assert_eq!(s.ops, 4 * 2 * 4); // np × segments × xfers/block
        }
        // Files kept: namespace still has them.
        assert!(world.namespace().file("/scratch/fp.00000000").is_some());
        assert!(world.namespace().file("/scratch/fp.00000003").is_some());
    }

    #[test]
    fn shared_file_without_keep_is_removed() {
        let mut world = small_world();
        let cfg =
            IorConfig::parse_command("ior -a posix -b 512k -t 256k -s 1 -i 1 -o /scratch/shared")
                .unwrap();
        run_ior(&mut world, JobLayout::new(2, 2), &cfg, 1).unwrap();
        assert!(world.namespace().file("/scratch/shared").is_none());
    }

    #[test]
    fn reorder_tasks_defeats_cache_on_read() {
        // Without -C the read phase is served from page cache and reports
        // (much) higher bandwidth than with -C.
        let run = |reorder: bool| {
            let mut world = small_world();
            let mut cfg = IorConfig::parse_command(
                "ior -a posix -b 1m -t 256k -s 2 -F -i 1 -o /scratch/cc -k",
            )
            .unwrap();
            cfg.reorder_tasks = reorder;
            let result = run_ior(&mut world, JobLayout::new(4, 2), &cfg, 1).unwrap();
            result.max_bw(Access::Read)
        };
        let cached = run(false);
        let reordered = run(true);
        assert!(
            cached > reordered * 2.0,
            "cached read {cached} should dwarf reordered {reordered}"
        );
    }

    #[test]
    fn collective_mode_executes_on_shared_file() {
        let mut world = small_world();
        let cfg = IorConfig::parse_command(
            "ior -a mpiio -c -b 512k -t 256k -s 2 -i 1 -o /scratch/coll -k",
        )
        .unwrap();
        let result = run_ior(&mut world, JobLayout::new(4, 2), &cfg, 1).unwrap();
        assert_eq!(result.samples.len(), 2);
        assert!(result.max_bw(Access::Write) > 0.0);
        // Aggregate file size is still np × block × segments.
        assert_eq!(
            world.namespace().file("/scratch/coll").unwrap().size,
            4 * 512 * 1024 * 2
        );
    }

    #[test]
    fn output_renders_and_contains_summary() {
        let mut world = small_world();
        let cfg =
            IorConfig::parse_command("ior -a posix -b 1m -t 512k -s 1 -F -i 2 -o /scratch/ro -k")
                .unwrap();
        let result = run_ior(&mut world, JobLayout::new(2, 2), &cfg, 1).unwrap();
        let text = result.render();
        assert!(text.contains("Max Write:"));
        assert!(text.contains("Max Read:"));
        assert!(text.contains("access"));
        assert!(text.contains("write"));
        assert_eq!(
            text.matches("\nwrite").count(),
            3,
            "2 iteration rows + summary row"
        );
    }

    #[test]
    fn random_offsets_shuffle_deterministically() {
        let build = |seed: u64| {
            let mut world = small_world();
            let mut cfg = IorConfig::parse_command(
                "ior -a posix -b 1m -t 256k -s 1 -F -i 1 -o /scratch/z -k",
            )
            .unwrap();
            cfg.random_offsets = true;
            run_ior(&mut world, JobLayout::new(2, 2), &cfg, seed)
                .unwrap()
                .samples[0]
                .bw_mib
        };
        assert_eq!(build(5), build(5));
    }

    #[test]
    fn stonewall_caps_phase_duration() {
        // A run that would take ~2 s through a narrow fabric is
        // stonewalled after 1 s: fewer ops complete and the phase span
        // shrinks accordingly.
        let sys = {
            let mut s = SystemConfig::test_small();
            s.cluster.fabric_bandwidth = 0.2e9;
            s
        };
        let unlimited = {
            let mut world = World::new(sys.clone(), FaultPlan::none(), 19);
            let cfg = IorConfig::parse_command(
                "ior -a posix -b 32m -t 1m -s 3 -F -i 1 -o /scratch/sw -k -w",
            )
            .unwrap();
            run_ior(&mut world, JobLayout::new(4, 2), &cfg, 1).unwrap()
        };
        let walled = {
            let mut world = World::new(sys, FaultPlan::none(), 19);
            let cfg = IorConfig::parse_command(
                "ior -a posix -b 32m -t 1m -s 3 -F -i 1 -D 1 -o /scratch/sw -k -w",
            )
            .unwrap();
            run_ior(&mut world, JobLayout::new(4, 2), &cfg, 1).unwrap()
        };
        let full = unlimited.samples_of(Access::Write).next().unwrap();
        let capped = walled.samples_of(Access::Write).next().unwrap();
        assert!(
            full.total_s > 1.5,
            "uncapped run too fast: {}",
            full.total_s
        );
        assert!(
            capped.total_s < full.total_s * 0.8,
            "stonewall must shorten the phase: {} vs {}",
            capped.total_s,
            full.total_s
        );
        assert!(capped.ops < full.ops, "{} vs {}", capped.ops, full.ops);
        // Round trip of the flag.
        let cfg = IorConfig::parse_command("ior -D 30 -o /scratch/x").unwrap();
        assert_eq!(cfg.deadline_secs, 30);
        assert!(cfg.to_command().contains("-D 30"));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn config_command_roundtrip(
                api in prop_oneof![Just("posix"), Just("mpiio"), Just("hdf5")],
                block_pow in 18u32..24,
                xfer_pow in 16u32..20,
                segments in 1u64..50,
                iterations in 1u32..8,
                deadline in 0u32..100,
                flags in proptest::collection::vec(any::<bool>(), 7),
            ) {
                let mut config = IorConfig::parse_command(&format!(
                    "ior -a {api} -o /scratch/prop"
                ))
                .unwrap();
                config.block_size = 1 << block_pow.max(xfer_pow);
                config.transfer_size = 1 << xfer_pow;
                config.segments = segments;
                config.iterations = iterations;
                config.deadline_secs = deadline;
                config.file_per_proc = flags[0];
                config.reorder_tasks = flags[1];
                config.fsync = flags[2];
                config.keep_file = flags[3];
                config.collective = flags[4] && api != "posix";
                config.api = config.api.with_collective(config.collective);
                config.random_offsets = flags[5];
                config.write = true;
                config.read = flags[6];
                let reparsed = IorConfig::parse_command(&config.to_command()).unwrap();
                prop_assert_eq!(reparsed, config);
            }

            #[test]
            fn parse_never_panics(command in ".{0,80}") {
                let _ = IorConfig::parse_command(&command);
            }
        }
    }

    #[test]
    fn more_segments_move_more_bytes() {
        let cfg = IorConfig::parse_command("ior -b 4m -t 2m -s 40 -o /scratch/x").unwrap();
        assert_eq!(cfg.bytes_per_rank(), 160 * MIB);
        assert_eq!(cfg.aggregate_bytes(80), 80 * 160 * MIB);
    }
}
