//! Darshan instrumentation of simulated runs.
//!
//! On a real system Darshan interposes on I/O calls at runtime; here the
//! equivalent is adapting the simulator's op records into a
//! [`iokc_darshan::LogBuilder`]. The paper uses Darshan as an additional
//! knowledge-generation source (§V-A) and extracts its logs with
//! PyDarshan (§V-B); this adapter closes that loop for simulated jobs.

use iokc_darshan::{DarshanLog, LogBuilder, MetaKind, Module, MpiioTransfer};
use iokc_sim::api::IoApi;
use iokc_sim::metrics::PhaseResult;
use iokc_sim::script::OpKind;

/// Options for log synthesis.
#[derive(Debug, Clone)]
pub struct InstrumentOptions {
    /// Job id recorded in the header.
    pub job_id: u64,
    /// Rank count.
    pub nprocs: u32,
    /// Executable name.
    pub exe: String,
    /// Enable DXT segment tracing.
    pub dxt: bool,
    /// The API the job used (adds the MPI-IO module layer when MPI-IO).
    pub api: IoApi,
    /// Job start, Unix seconds (header field).
    pub start_unix: u64,
}

impl Default for InstrumentOptions {
    fn default() -> InstrumentOptions {
        InstrumentOptions {
            job_id: 1,
            nprocs: 1,
            exe: "ior".to_owned(),
            dxt: false,
            api: IoApi::Posix,
            start_unix: 1_656_590_400, // 2022-06-30, the paper's era
        }
    }
}

/// Build a Darshan-style log from one or more executed phases.
///
/// Timestamps in the log are seconds relative to the first phase's start,
/// exactly as Darshan reports times relative to `MPI_Init`.
#[must_use]
pub fn darshan_from_phases(phases: &[&PhaseResult], opts: &InstrumentOptions) -> DarshanLog {
    let mut builder = LogBuilder::new(opts.job_id, opts.nprocs, &opts.exe, opts.dxt);
    let epoch = phases
        .iter()
        .map(|p| p.started)
        .min()
        .unwrap_or(iokc_sim::time::SimTime::ZERO);
    let mut last_end = 0.0f64;
    let mpiio = matches!(opts.api, IoApi::MpiIo { .. } | IoApi::Hdf5 { .. });
    let collective = opts.api.is_collective();
    for phase in phases {
        for rec in &phase.records {
            let Some(path_id) = rec.path else { continue };
            let path = &phase.paths[path_id.0 as usize];
            let rank = rec.rank as i32;
            let start = (rec.start - epoch).as_secs_f64();
            let end = (rec.end - epoch).as_secs_f64();
            last_end = last_end.max(end);
            match rec.kind {
                OpKind::Open => {
                    builder.open(Module::Posix, path, rank, start, end);
                    if mpiio {
                        if collective {
                            builder.coll_open(path, rank, start, end);
                        } else {
                            builder.open(Module::Mpiio, path, rank, start, end);
                        }
                    }
                }
                OpKind::Close => {
                    builder.close(Module::Posix, path, rank, start, end);
                    if mpiio {
                        builder.close(Module::Mpiio, path, rank, start, end);
                    }
                }
                OpKind::Write | OpKind::Read => {
                    builder.transfer(
                        path,
                        rank,
                        rec.kind == OpKind::Write,
                        rec.offset,
                        rec.len,
                        start,
                        end,
                        mpiio.then_some(MpiioTransfer { collective }),
                    );
                }
                OpKind::Stat => builder.meta(path, rank, MetaKind::Stat, start, end),
                OpKind::Fsync => builder.meta(path, rank, MetaKind::Fsync, start, end),
                _ => {}
            }
        }
    }
    builder.set_times(opts.start_unix, opts.start_unix + last_end.ceil() as u64);
    builder.finish()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::SystemConfig;
    use iokc_sim::engine::{JobLayout, World};
    use iokc_sim::faults::FaultPlan;
    use iokc_sim::script::{OpenMode, ScriptSet};
    use iokc_util::units::MIB;

    fn run_simple() -> PhaseResult {
        let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 17);
        let mut set = ScriptSet::new(2);
        for rank in 0..2 {
            let path = format!("/scratch/dlog{rank}");
            set.rank(rank)
                .open(&path, OpenMode::Write)
                .write(&path, 0, MIB)
                .write(&path, MIB, MIB)
                .fsync(&path)
                .close(&path);
        }
        world.run(JobLayout::new(2, 2), &set).unwrap()
    }

    #[test]
    fn counters_match_simulated_ops() {
        let phase = run_simple();
        let log = darshan_from_phases(
            &[&phase],
            &InstrumentOptions {
                nprocs: 2,
                dxt: true,
                ..InstrumentOptions::default()
            },
        );
        assert_eq!(log.total_counter(Module::Posix, "POSIX_OPENS"), 2);
        assert_eq!(log.total_counter(Module::Posix, "POSIX_WRITES"), 4);
        assert_eq!(
            log.total_counter(Module::Posix, "POSIX_BYTES_WRITTEN"),
            4 * MIB as i64
        );
        assert_eq!(log.total_counter(Module::Posix, "POSIX_FSYNCS"), 2);
        // Both writes per rank are consecutive.
        assert_eq!(log.total_counter(Module::Posix, "POSIX_CONSEC_WRITES"), 2);
        // DXT captured every transfer.
        assert_eq!(log.dxt.len(), 4);
    }

    #[test]
    fn mpiio_option_adds_layer_records() {
        let phase = run_simple();
        let opts = InstrumentOptions {
            nprocs: 2,
            api: IoApi::MpiIo { collective: false },
            ..InstrumentOptions::default()
        };
        let log = darshan_from_phases(&[&phase], &opts);
        assert_eq!(log.total_counter(Module::Mpiio, "MPIIO_INDEP_OPENS"), 2);
        assert_eq!(log.total_counter(Module::Mpiio, "MPIIO_INDEP_WRITES"), 4);
        assert_eq!(
            log.total_counter(Module::Mpiio, "MPIIO_BYTES_WRITTEN"),
            4 * MIB as i64
        );
    }

    #[test]
    fn header_times_span_the_run() {
        let phase = run_simple();
        let log = darshan_from_phases(&[&phase], &InstrumentOptions::default());
        assert!(log.job.end_time > log.job.start_time);
    }

    #[test]
    fn roundtrips_through_binary_format() {
        let phase = run_simple();
        let log = darshan_from_phases(
            &[&phase],
            &InstrumentOptions {
                nprocs: 2,
                dxt: true,
                ..InstrumentOptions::default()
            },
        );
        let decoded = iokc_darshan::decode(&iokc_darshan::encode(&log)).unwrap();
        assert_eq!(decoded, log);
    }
}
