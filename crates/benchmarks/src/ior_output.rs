//! IOR-format output rendering.
//!
//! Reproduces the structure of IOR 3.x stdout — the options block, the
//! per-iteration results table, `Max Write:`/`Max Read:` lines, and the
//! `Summary of all tests:` table — because the knowledge extractor
//! (§V-B of the paper) parses exactly this text.

use crate::ior::{Access, IorRunResult};
use iokc_util::stats;

/// One row of the per-iteration results table.
#[derive(Debug, Clone, PartialEq)]
pub struct IorSample {
    /// Write or read.
    pub access: Access,
    /// Aggregate bandwidth over the phase's total time, MiB/s.
    pub bw_mib: f64,
    /// Transfer operations per second over the data span.
    pub iops: f64,
    /// Mean per-op latency, seconds.
    pub latency_s: f64,
    /// Block size, KiB (output column).
    pub block_kib: u64,
    /// Transfer size, KiB (output column).
    pub xfer_kib: u64,
    /// Open span, seconds.
    pub open_s: f64,
    /// Data-transfer span, seconds.
    pub wrrd_s: f64,
    /// Close span, seconds.
    pub close_s: f64,
    /// Total phase time, seconds.
    pub total_s: f64,
    /// Iteration index.
    pub iter: u32,
    /// Number of transfer operations.
    pub ops: u64,
}

/// Render a complete IOR output document.
#[must_use]
pub fn render_output(run: &IorRunResult) -> String {
    let cfg = &run.config;
    let mut out = String::new();
    out.push_str("IOR-3.3.0 (iokc reimplementation): MPI Coordinated Test of Parallel I/O\n");
    out.push_str(&format!("Command line        : {}\n", cfg.to_command()));
    out.push_str("Machine             : Linux fuchs-csc\n");
    out.push_str(&format!("Path                : {}\n", cfg.test_file));
    out.push('\n');
    out.push_str("Options:\n");
    out.push_str(&format!("api                 : {}\n", cfg.api.as_str()));
    out.push_str(&format!("test filename       : {}\n", cfg.test_file));
    out.push_str(&format!(
        "access              : {}\n",
        if cfg.file_per_proc {
            "file-per-process"
        } else {
            "single-shared-file"
        }
    ));
    out.push_str(&format!(
        "type                : {}\n",
        if cfg.collective {
            "collective"
        } else {
            "independent"
        }
    ));
    out.push_str(&format!("segments            : {}\n", cfg.segments));
    out.push_str("ordering in a file  : sequential\n");
    out.push_str(&format!(
        "ordering inter file : {}\n",
        if cfg.reorder_tasks {
            "constant task offset"
        } else {
            "no tasks offsets"
        }
    ));
    out.push_str(&format!(
        "nodes               : {}\n",
        run.np.div_ceil(run.ppn)
    ));
    out.push_str(&format!("tasks               : {}\n", run.np));
    out.push_str(&format!("clients per node    : {}\n", run.ppn));
    out.push_str(&format!("repetitions         : {}\n", cfg.iterations));
    out.push_str(&format!(
        "xfersize            : {}\n",
        iokc_util::units::format_size(cfg.transfer_size)
    ));
    out.push_str(&format!(
        "blocksize           : {}\n",
        iokc_util::units::format_size(cfg.block_size)
    ));
    out.push_str(&format!(
        "aggregate filesize  : {:.2} GiB\n",
        iokc_util::units::to_gib(cfg.aggregate_bytes(run.np))
    ));
    out.push('\n');
    out.push_str("Results:\n\n");
    out.push_str(
        "access    bw(MiB/s)  IOPS       Latency(s)  block(KiB) xfer(KiB)  open(s)    wr/rd(s)   close(s)   total(s)   iter\n",
    );
    out.push_str(
        "------    ---------  ----       ----------  ---------- ---------  --------   --------   --------   --------   ----\n",
    );
    for s in &run.samples {
        out.push_str(&format!(
            "{:<9} {:<10.2} {:<10.2} {:<11.6} {:<10} {:<10} {:<10.6} {:<10.6} {:<10.6} {:<10.6} {}\n",
            s.access.as_str(),
            s.bw_mib,
            s.iops,
            s.latency_s,
            s.block_kib,
            s.xfer_kib,
            s.open_s,
            s.wrrd_s,
            s.close_s,
            s.total_s,
            s.iter
        ));
    }
    out.push('\n');
    for access in [Access::Write, Access::Read] {
        let bws: Vec<f64> = run.samples_of(access).map(|s| s.bw_mib).collect();
        if bws.is_empty() {
            continue;
        }
        let label = match access {
            Access::Write => "Max Write:",
            Access::Read => "Max Read: ",
        };
        let max = stats::max(&bws);
        out.push_str(&format!(
            "{label} {max:.2} MiB/sec ({:.2} MB/sec)\n",
            max * 1.048_576
        ));
    }
    out.push('\n');
    out.push_str("Summary of all tests:\n");
    out.push_str(
        "Operation   Max(MiB)   Min(MiB)  Mean(MiB)     StdDev   Max(OPs)   Min(OPs)  Mean(OPs)     StdDev    Mean(s) Test# #Tasks tPN reps fPP reord segcnt blksiz xsize aggs(MiB) API\n",
    );
    for access in [Access::Write, Access::Read] {
        let samples: Vec<&IorSample> = run.samples_of(access).collect();
        if samples.is_empty() {
            continue;
        }
        let bws: Vec<f64> = samples.iter().map(|s| s.bw_mib).collect();
        let opss: Vec<f64> = samples.iter().map(|s| s.iops).collect();
        let times: Vec<f64> = samples.iter().map(|s| s.total_s).collect();
        out.push_str(&format!(
            "{:<11} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.5} {:>5} {:>6} {:>3} {:>4} {:>3} {:>5} {:>6} {:>6} {:>5} {:>9.1} {}\n",
            access.as_str(),
            stats::max(&bws),
            stats::min(&bws),
            stats::mean(&bws),
            stats::stddev(&bws),
            stats::max(&opss),
            stats::min(&opss),
            stats::mean(&opss),
            stats::stddev(&opss),
            stats::mean(&times),
            0,
            run.np,
            run.ppn,
            run.config.iterations,
            u8::from(run.config.file_per_proc),
            u8::from(run.config.reorder_tasks),
            run.config.segments,
            run.config.block_size,
            run.config.transfer_size,
            iokc_util::units::to_mib(run.config.aggregate_bytes(run.np)),
            run.config.api.as_str()
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ior::IorConfig;

    fn fake_run() -> IorRunResult {
        let config = IorConfig::parse_command(
            "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 2 -o /scratch/t -k",
        )
        .unwrap();
        let mk = |access, bw: f64, iter| IorSample {
            access,
            bw_mib: bw,
            iops: bw / 2.0,
            latency_s: 0.0007,
            block_kib: 4096,
            xfer_kib: 2048,
            open_s: 0.002,
            wrrd_s: 4.4,
            close_s: 0.001,
            total_s: 4.5,
            iter,
            ops: 6400,
        };
        IorRunResult {
            config,
            np: 80,
            ppn: 20,
            samples: vec![
                mk(Access::Write, 2850.12, 0),
                mk(Access::Read, 3109.90, 0),
                mk(Access::Write, 1251.00, 1),
                mk(Access::Read, 3095.10, 1),
            ],
            phases: Vec::new(),
        }
    }

    #[test]
    fn output_structure_matches_ior() {
        let text = render_output(&fake_run());
        assert!(text.contains("api                 : MPIIO"));
        assert!(text.contains("access              : file-per-process"));
        assert!(text.contains("tasks               : 80"));
        assert!(text.contains("clients per node    : 20"));
        assert!(text.contains("xfersize            : 2 MiB"));
        assert!(text.contains("blocksize           : 4 MiB"));
        assert!(text.contains("aggregate filesize  : 12.50 GiB"));
        assert!(text.contains("Max Write: 2850.12 MiB/sec"));
        assert!(text.contains("Max Read:  3109.90 MiB/sec"));
        assert!(text.contains("Summary of all tests:"));
    }

    #[test]
    fn iteration_rows_carry_iter_index() {
        let text = render_output(&fake_run());
        let rows: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("write") || l.starts_with("read"))
            .collect();
        // 4 iteration rows + 2 summary rows.
        assert_eq!(rows.len(), 6);
        assert!(rows[0].trim_end().ends_with('0'));
        assert!(rows[2].trim_end().ends_with('1'));
    }

    #[test]
    fn max_and_mean_helpers() {
        let run = fake_run();
        assert_eq!(run.max_bw(Access::Write), 2850.12);
        assert!((run.mean_bw(Access::Write) - 2050.56).abs() < 1e-9);
    }
}
